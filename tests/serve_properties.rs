//! Property-based contracts of the `moccml-serve` service layer
//! (ISSUE 7):
//!
//! * **the LRU cache matches a reference model** — random access
//!   sequences over random spec pools, replayed against a brute-force
//!   recency list: every hit/miss verdict, the entry bound and each
//!   eviction victim must agree, and the counters must add up;
//! * **canonical keys unify formatting variants** — a spec accessed
//!   through random comment/whitespace mutilations of its
//!   `SpecAst::to_text` form always hits the entry its canonical form
//!   created, and the shared compiled program is the same `Arc`;
//! * **cancellation never invents a verdict** — a job cancelled at a
//!   random point either reports `cancelled` (and then no `result`
//!   ever arrives for its id) or completed first with the one correct
//!   verdict; either way the service stays healthy and answers a
//!   fresh request correctly afterwards.
//!
//! Runs on the deterministic in-repo `moccml-testkit` harness;
//! failures report a replayable case seed.

mod common;

use common::random_spec;
use moccml::serve::json::Json;
use moccml::serve::{Service, ServiceConfig, SpecCache};
use moccml_testkit::{cases, prop_assert, prop_assert_eq, TestRng};

/// A brute-force LRU reference: canonical keys in recency order,
/// most-recent last.
struct ModelLru {
    capacity: usize,
    keys: Vec<String>,
}

impl ModelLru {
    /// Replays one access; returns `(hit, evicted_key)`.
    fn access(&mut self, key: &str) -> (bool, Option<String>) {
        if let Some(i) = self.keys.iter().position(|k| k == key) {
            let key = self.keys.remove(i);
            self.keys.push(key);
            return (true, None);
        }
        if self.capacity == 0 {
            return (false, None);
        }
        let evicted = if self.keys.len() >= self.capacity {
            Some(self.keys.remove(0))
        } else {
            None
        };
        self.keys.push(key.to_owned());
        (false, evicted)
    }
}

/// Injects lexically-irrelevant noise (comments, whitespace, blank
/// lines) into a canonical spec text without changing its parse.
fn mutilate(canonical: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    if rng.bool() {
        out.push_str("// leading comment\n\n");
    }
    for line in canonical.lines() {
        match rng.u8_in(0..4) {
            0 => {
                out.push_str("  ");
                out.push_str(line);
            }
            1 => {
                out.push_str(line);
                out.push_str("   // trailing");
            }
            2 => {
                out.push_str(line);
                out.push('\n');
            }
            _ => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

#[test]
fn lru_cache_matches_the_reference_model() {
    cases(48).run("lru_cache_matches_the_reference_model", |rng| {
        // a pool of random specs, addressed by canonical key
        let pool: Vec<String> = (0..rng.usize_in(2..7))
            .map(|_| random_spec(rng).to_text())
            .collect();
        let capacity = rng.usize_in(0..4);
        let mut cache = SpecCache::new(capacity);
        let mut model = ModelLru {
            capacity,
            keys: Vec::new(),
        };
        let (mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64);
        for _ in 0..rng.usize_in(1..40) {
            let source = &pool[rng.usize_in(0..pool.len())];
            let canonical = moccml::lang::parse_spec(source)
                .map_err(|e| format!("pool spec fails to parse: {e}"))?
                .to_text();
            let (model_hit, model_evicted) = model.access(&canonical);
            let (_, hit) = cache
                .get_or_compile(source)
                .map_err(|e| format!("pool spec fails to compile: {e}\n{source}"))?;
            prop_assert_eq!(hit, model_hit, "hit/miss verdict diverged from the model");
            if hit {
                hits += 1;
            } else {
                misses += 1;
            }
            if let Some(victim) = model_evicted {
                evictions += 1;
                prop_assert!(
                    !cache.peek(&victim).map_err(|e| e.to_string())?,
                    "the model's eviction victim is still cached"
                );
            }
            // everything the model keeps must be present
            for kept in &model.keys {
                prop_assert!(
                    cache.peek(kept).map_err(|e| e.to_string())?,
                    "a model-resident key is missing from the cache"
                );
            }
            let stats = cache.stats();
            prop_assert_eq!(stats.entries, model.keys.len(), "entry count diverged");
            prop_assert!(stats.entries <= capacity, "capacity bound violated");
            prop_assert_eq!(stats.hits, hits, "hit counter diverged");
            prop_assert_eq!(stats.misses, misses, "miss counter diverged");
            prop_assert_eq!(stats.evictions, evictions, "eviction counter diverged");
        }
        Ok(())
    });
}

#[test]
fn canonical_keys_unify_formatting_variants() {
    cases(48).run("canonical_keys_unify_formatting_variants", |rng| {
        let canonical = random_spec(rng).to_text();
        let mut cache = SpecCache::new(4);
        let (first, hit) = cache
            .get_or_compile(&canonical)
            .map_err(|e| format!("canonical form fails: {e}\n{canonical}"))?;
        prop_assert!(!hit, "first access is a miss");
        for _ in 0..rng.usize_in(1..4) {
            let noisy = mutilate(&canonical, rng);
            let (variant, hit) = cache
                .get_or_compile(&noisy)
                .map_err(|e| format!("mutilated form fails: {e}\n{noisy}"))?;
            prop_assert!(hit, "a formatting variant missed the canonical entry");
            prop_assert!(
                std::sync::Arc::ptr_eq(&first.program, &variant.program),
                "variants must share the compiled program"
            );
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.entries, 1, "variants created extra entries");
        prop_assert_eq!(stats.misses, 1, "variants recompiled");
        Ok(())
    });
}

#[test]
fn cancellation_never_invents_a_verdict() {
    // fewer cases: each spins up a real worker pool
    cases(12).run("cancellation_never_invents_a_verdict", |rng| {
        let service = Service::new(ServiceConfig {
            workers: 1,
            progress_interval_ms: 0,
            ..ServiceConfig::default()
        });
        // an unbounded two-chain space (astronomical, deadlock-free by
        // construction: `a` is always enabled), so the check can never
        // find a violation — only cancel, a bound or the deadline ends
        // it
        let big = "spec big {\n  events a, b, c;\n  constraint c1 = precedes(a, b);\n  constraint c2 = precedes(b, c);\n  assert deadlock-free;\n}\n";
        let sink = std::sync::Arc::new(moccml::serve::CollectingSink::default());
        let dyn_sink: std::sync::Arc<dyn moccml::serve::EventSink> =
            std::sync::Arc::clone(&sink) as _;
        let line = Json::obj([
            ("id", Json::str("job")),
            ("method", Json::str(if rng.bool() { "check" } else { "explore" })),
            ("spec", Json::str(big)),
            ("max_states", Json::Int(2_000_000)),
            ("timeout_ms", Json::Int(300_000)),
        ])
        .to_line();
        let _ = service.handle_line(&line, &dyn_sink);
        // cancel after a random (possibly zero) number of progress
        // events — racing submit, pickup and mid-exploration states
        let awaited = rng.usize_in(0..3);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        while sink
            .events()
            .iter()
            .filter(|e| e.get("event").and_then(Json::as_str) == Some("progress"))
            .count()
            < awaited
        {
            prop_assert!(
                std::time::Instant::now() < deadline,
                "job never streamed progress"
            );
            std::thread::yield_now();
        }
        let _ = service.call(r#"{"id":"kill","method":"cancel","target":"job"}"#);
        let events = sink.wait_terminal("job", std::time::Duration::from_secs(60));
        let terminals: Vec<&Json> = events
            .iter()
            .filter(|e| {
                e.get("id").and_then(Json::as_str) == Some("job")
                    && matches!(
                        e.get("event").and_then(Json::as_str),
                        Some("result" | "error" | "cancelled")
                    )
            })
            .collect();
        prop_assert_eq!(terminals.len(), 1, "exactly one terminal event");
        match terminals[0].get("event").and_then(Json::as_str) {
            Some("cancelled") => {
                prop_assert!(
                    terminals[0].get("result").is_none(),
                    "cancelled events carry no verdict"
                );
            }
            Some("result") => {
                // the job won the race: its verdict must be the real
                // one (the property holds on the truncated space —
                // undetermined — or the space was bounded)
                let payload = terminals[0].get("result").expect("payload");
                prop_assert!(
                    payload.get("violated").and_then(Json::as_bool) != Some(true),
                    "a never-violated property cannot report violated"
                );
            }
            other => return Err(format!("unexpected terminal: {other:?}")),
        }
        // the pool survives: a fresh request gets the correct verdict
        let alt = "spec alt {\n  events a, b;\n  constraint alt = alternates(a, b);\n  assert never((a && b));\n}\n";
        let after = service.call(
            &Json::obj([
                ("id", Json::str("after")),
                ("method", Json::str("check")),
                ("spec", Json::str(alt)),
            ])
            .to_line(),
        );
        let result = after
            .iter()
            .find(|e| e.get("event").and_then(Json::as_str) == Some("result"))
            .ok_or("the service is unhealthy after cancellation")?;
        prop_assert_eq!(
            result
                .get("result")
                .and_then(|r| r.get("violated"))
                .and_then(Json::as_bool),
            Some(false),
            "post-cancel verdict is correct"
        );
        Ok(())
    });
}
