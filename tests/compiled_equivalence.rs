//! Property-based equivalence of the compiled path against the legacy
//! recompile-per-query solver, over randomly generated CCSL constraint
//! sets — the correctness side of the `CompiledSpec` redesign: caching
//! per-constraint lowered formulas must change *no* step semantics.
//!
//! Runs ≥64 cases per property on the deterministic in-repo
//! `moccml-testkit` harness; failures report a replayable case seed.
//!
//! The legacy free function is deprecated; this suite is its one
//! sanctioned caller (it *is* the differential baseline).
#![allow(deprecated)]

use moccml_ccsl::{Alternation, Coincidence, Exclusion, Precedence, SubClock, Union};
use moccml_engine::{acceptable_steps, CompiledSpec, SolverOptions};
use moccml_kernel::{Constraint, EventId, Specification, Universe};
use moccml_testkit::{cases, prop_assert, prop_assert_eq, TestRng};

const CASES: usize = 96; // ISSUE 2 requires ≥ 64

/// A recipe for one random constraint over a small event universe.
#[derive(Debug, Clone)]
enum Recipe {
    Sub(u8, u8),
    Excl(u8, u8, u8),
    Coinc(u8, u8),
    Prec(u8, u8, u8),
    Union(u8, u8, u8),
    Alt(u8, u8),
}

fn random_recipe(rng: &mut TestRng) -> Recipe {
    match rng.u8_in(0..6) {
        0 => Recipe::Sub(rng.u8_in(0..6), rng.u8_in(0..6)),
        1 => Recipe::Excl(rng.u8_in(0..6), rng.u8_in(0..6), rng.u8_in(0..6)),
        2 => Recipe::Coinc(rng.u8_in(0..6), rng.u8_in(0..6)),
        3 => Recipe::Prec(rng.u8_in(0..6), rng.u8_in(0..6), rng.u8_in(1..4)),
        4 => Recipe::Union(rng.u8_in(0..6), rng.u8_in(0..6), rng.u8_in(0..6)),
        _ => Recipe::Alt(rng.u8_in(0..6), rng.u8_in(0..6)),
    }
}

fn build(recipes: &[Recipe]) -> Specification {
    let mut u = Universe::new();
    let events: Vec<EventId> = (0..6).map(|i| u.event(&format!("e{i}"))).collect();
    let mut spec = Specification::new("random", u);
    for (i, r) in recipes.iter().enumerate() {
        let name = format!("c{i}");
        let c: Option<Box<dyn Constraint>> = match *r {
            Recipe::Sub(a, b) if a != b => Some(Box::new(SubClock::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            Recipe::Excl(a, b, c2) if a != b && b != c2 && a != c2 => {
                Some(Box::new(Exclusion::new(
                    &name,
                    [events[a as usize], events[b as usize], events[c2 as usize]],
                )))
            }
            Recipe::Coinc(a, b) if a != b => Some(Box::new(Coincidence::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            Recipe::Prec(a, b, k) if a != b => Some(Box::new(
                Precedence::strict(&name, events[a as usize], events[b as usize])
                    .with_bound(u64::from(k)),
            )),
            Recipe::Union(a, b, c2) if a != b && a != c2 => Some(Box::new(Union::new(
                &name,
                events[a as usize],
                [events[b as usize], events[c2 as usize]],
            ))),
            Recipe::Alt(a, b) if a != b => Some(Box::new(Alternation::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            _ => None, // degenerate draws are skipped
        };
        if let Some(c) = c {
            spec.add_constraint(c);
        }
    }
    spec
}

fn solver_variants() -> [SolverOptions; 3] {
    [
        SolverOptions::default(),
        SolverOptions::naive(),
        SolverOptions::default().with_empty(true),
    ]
}

/// In the initial state, the compiled path yields step sets
/// byte-identical to the legacy recompile-per-query enumeration, for
/// every solver configuration.
#[test]
fn compiled_equals_legacy_initially() {
    cases(CASES).run("compiled_equals_legacy_initially", |rng| {
        let recipes = rng.vec_of(1..6, random_recipe);
        let spec = build(&recipes);
        let compiled = CompiledSpec::compile(&spec);
        for options in solver_variants() {
            prop_assert_eq!(
                compiled.acceptable_steps(&options),
                acceptable_steps(&spec, &options),
                "options {options:?}, recipes {recipes:?}"
            );
        }
        Ok(())
    });
}

/// The agreement holds along random runs: both sides fire the same
/// (randomly chosen) acceptable step and must keep identical answers —
/// this exercises the incremental slot refresh after `fire`.
#[test]
fn compiled_equals_legacy_along_runs() {
    cases(CASES).run("compiled_equals_legacy_along_runs", |rng| {
        let recipes = rng.vec_of(1..5, random_recipe);
        let mut spec = build(&recipes);
        let mut compiled = CompiledSpec::compile(&spec);
        let options = SolverOptions::default();
        for _ in 0..8 {
            let fast = compiled.acceptable_steps(&options);
            let slow = acceptable_steps(&spec, &options);
            prop_assert_eq!(&fast, &slow, "recipes {recipes:?}");
            if fast.is_empty() {
                break;
            }
            let step = fast[rng.usize_in(0..fast.len())].clone();
            compiled.fire(&step).map_err(|e| e.to_string())?;
            spec.fire(&step).map_err(|e| e.to_string())?;
        }
        Ok(())
    });
}

/// `restore` re-syncs the cached formulas exactly: winding a compiled
/// spec back to a snapshot yields the answers the legacy path computed
/// there — this exercises the memo-hit path exploration depends on.
#[test]
fn compiled_restore_matches_legacy_snapshots() {
    cases(CASES).run("compiled_restore_matches_legacy_snapshots", |rng| {
        let recipes = rng.vec_of(1..5, random_recipe);
        let mut spec = build(&recipes);
        let mut compiled = CompiledSpec::compile(&spec);
        let options = SolverOptions::default();
        let mut snapshots = vec![(compiled.state_key(), acceptable_steps(&spec, &options))];
        for _ in 0..6 {
            let steps = compiled.acceptable_steps(&options);
            if steps.is_empty() {
                break;
            }
            let step = steps[rng.usize_in(0..steps.len())].clone();
            compiled.fire(&step).map_err(|e| e.to_string())?;
            spec.fire(&step).map_err(|e| e.to_string())?;
            snapshots.push((compiled.state_key(), acceptable_steps(&spec, &options)));
        }
        // revisit the snapshots in random order
        for _ in 0..snapshots.len() {
            let (key, expected) = &snapshots[rng.usize_in(0..snapshots.len())];
            compiled.restore(key).map_err(|e| e.to_string())?;
            prop_assert_eq!(
                &compiled.acceptable_steps(&options),
                expected,
                "recipes {recipes:?}"
            );
        }
        Ok(())
    });
}

/// Every step the compiled path enumerates is genuinely accepted by the
/// specification, and `CompiledSpec::accepts` agrees with the
/// enumeration.
#[test]
fn compiled_steps_are_accepted() {
    cases(CASES).run("compiled_steps_are_accepted", |rng| {
        let recipes = rng.vec_of(1..6, random_recipe);
        let spec = build(&recipes);
        let compiled = CompiledSpec::compile(&spec);
        for step in compiled.acceptable_steps(&SolverOptions::default()) {
            prop_assert!(spec.accepts(&step));
            prop_assert!(compiled.accepts(&step));
        }
        Ok(())
    });
}
