//! Property-based tests on the CCSL declarative constraints: every
//! schedule produced by the engine satisfies the defining invariant of
//! each relation, for arbitrary seeds and parameters.
//!
//! Ported from `proptest` (48 cases per property) to the deterministic
//! in-repo `moccml-testkit` harness at 64 cases per property; failures
//! report a replayable case seed.

use moccml_ccsl::{Alternation, Delay, Exclusion, Periodic, Precedence, SubClock, Union};
use moccml_engine::{Random, Simulator};
use moccml_kernel::{EventId, Schedule, Specification, Universe};
use moccml_testkit::{cases, prop_assert, prop_assert_eq};

const CASES: usize = 64; // seed suite ran 48

fn three_event_spec() -> (Universe, EventId, EventId, EventId) {
    let mut u = Universe::new();
    let a = u.event("a");
    let b = u.event("b");
    let c = u.event("c");
    (u, a, b, c)
}

fn run(spec: Specification, seed: u64, steps: usize) -> Schedule {
    Simulator::new(spec, Random::new(seed)).run(steps).schedule
}

/// Sub-clock: every step containing `a` also contains `b`.
#[test]
fn subclock_invariant() {
    cases(CASES).run("subclock_invariant", |rng| {
        let seed = rng.any_u64();
        let (u, a, b, _) = three_event_spec();
        let mut spec = Specification::new("t", u);
        spec.add_constraint(Box::new(SubClock::new("s", a, b)));
        for step in run(spec, seed, 30).iter() {
            prop_assert!(!step.contains(a) || step.contains(b));
        }
        Ok(())
    });
}

/// Exclusion: no step contains two of the excluded events.
#[test]
fn exclusion_invariant() {
    cases(CASES).run("exclusion_invariant", |rng| {
        let seed = rng.any_u64();
        let (u, a, b, c) = three_event_spec();
        let mut spec = Specification::new("t", u);
        spec.add_constraint(Box::new(Exclusion::new("x", [a, b, c])));
        for step in run(spec, seed, 30).iter() {
            let hits = [a, b, c].iter().filter(|e| step.contains(**e)).count();
            prop_assert!(hits <= 1);
        }
        Ok(())
    });
}

/// Strict precedence: the cause count strictly dominates; with a
/// bound, the drift never exceeds it.
#[test]
fn bounded_precedence_invariant() {
    cases(CASES).run("bounded_precedence_invariant", |rng| {
        let seed = rng.any_u64();
        let bound = rng.u64_in(1..4);
        let (u, a, b, _) = three_event_spec();
        let mut spec = Specification::new("t", u);
        spec.add_constraint(Box::new(Precedence::strict("p", a, b).with_bound(bound)));
        let schedule = run(spec, seed, 40);
        let mut ca = 0i64;
        let mut cb = 0i64;
        for step in schedule.iter() {
            // within a step the new cause is counted before the effect
            if step.contains(a) {
                ca += 1;
            }
            if step.contains(b) {
                cb += 1;
            }
            prop_assert!(cb <= ca, "effect ahead of cause");
            prop_assert!(ca - cb <= bound as i64, "drift exceeds bound");
        }
        Ok(())
    });
}

/// Alternation: occurrences of `a` and `b` strictly interleave.
#[test]
fn alternation_invariant() {
    cases(CASES).run("alternation_invariant", |rng| {
        let seed = rng.any_u64();
        let (u, a, b, _) = three_event_spec();
        let mut spec = Specification::new("t", u);
        spec.add_constraint(Box::new(Alternation::new("alt", a, b)));
        let mut expect_a = true;
        for step in run(spec, seed, 30).iter() {
            prop_assert!(!(step.contains(a) && step.contains(b)));
            if step.contains(a) {
                prop_assert!(expect_a);
                expect_a = false;
            }
            if step.contains(b) {
                prop_assert!(!expect_a);
                expect_a = true;
            }
        }
        Ok(())
    });
}

/// Union: the result ticks exactly when an operand ticks.
#[test]
fn union_invariant() {
    cases(CASES).run("union_invariant", |rng| {
        let seed = rng.any_u64();
        let (u, a, b, r) = three_event_spec();
        let mut spec = Specification::new("t", u);
        spec.add_constraint(Box::new(Union::new("u", r, [a, b])));
        for step in run(spec, seed, 30).iter() {
            prop_assert_eq!(step.contains(r), step.contains(a) || step.contains(b));
        }
        Ok(())
    });
}

/// Delay: the result's k-th tick coincides with the base's
/// (k+delay)-th tick.
#[test]
fn delay_invariant() {
    cases(CASES).run("delay_invariant", |rng| {
        let seed = rng.any_u64();
        let delay = rng.u64_in(0..4);
        let (u, base, _, r) = three_event_spec();
        let mut spec = Specification::new("t", u);
        spec.add_constraint(Box::new(Delay::new("d", r, base, delay)));
        let mut base_count = 0u64;
        for step in run(spec, seed, 40).iter() {
            if step.contains(base) {
                base_count += 1;
            }
            if step.contains(r) {
                prop_assert!(step.contains(base), "result only with base");
                prop_assert!(base_count > delay, "result before the delay elapsed");
            } else if step.contains(base) {
                prop_assert!(base_count <= delay, "result missed a due tick");
            }
        }
        Ok(())
    });
}

/// Periodic: the result selects exactly the occurrences of the base
/// whose index matches the period.
#[test]
fn periodic_invariant() {
    cases(CASES).run("periodic_invariant", |rng| {
        let seed = rng.any_u64();
        let period = rng.u64_in(1..5);
        let (u, base, _, r) = three_event_spec();
        let mut spec = Specification::new("t", u);
        spec.add_constraint(Box::new(Periodic::every("p", r, base, period)));
        let mut k = 0u64;
        for step in run(spec, seed, 40).iter() {
            if step.contains(base) {
                prop_assert_eq!(step.contains(r), k.is_multiple_of(period));
                k += 1;
            } else {
                prop_assert!(!step.contains(r));
            }
        }
        Ok(())
    });
}

/// State snapshots round-trip at every instant of a random run.
#[test]
fn state_keys_round_trip_along_runs() {
    cases(CASES).run("state_keys_round_trip_along_runs", |rng| {
        let seed = rng.any_u64();
        let (u, a, b, _) = three_event_spec();
        let mut spec = Specification::new("t", u);
        spec.add_constraint(Box::new(Precedence::strict("p", a, b).with_bound(3)));
        spec.add_constraint(Box::new(Alternation::new("alt", a, b)));
        let mut sim = Simulator::new(spec.clone(), Random::new(seed));
        for _ in 0..20 {
            if sim.step().is_none() {
                break;
            }
            let key = sim.specification().state_key();
            let mut copy = spec.clone();
            copy.restore(&key).expect("restores");
            prop_assert_eq!(copy.state_key(), key);
        }
        Ok(())
    });
}
