//! Property-based contracts of the `moccml-analyze` lint engine
//! (ISSUE 6):
//!
//! * **seeded defects are found** — the defect-seeding generator
//!   (`tests/common/mod.rs`) plants known defects in otherwise-random
//!   specs and returns the lint codes they guarantee; the analyzer must
//!   report a superset of them on the pretty-printed source;
//! * **A013 agrees with the exploration oracle** — every event the
//!   may-fire abstraction declares statically dead is also dead in the
//!   fully-explored conjunction state-space
//!   (`engine::dead_events`), i.e. the abstraction is sound;
//! * **hostile inputs never panic** — empty `library` blocks,
//!   exclusion cycles and self-referential automaton instantiations
//!   lint (or error) gracefully, with 1-based positions on every
//!   diagnostic and error.
//!
//! Runs on the deterministic in-repo `moccml-testkit` harness;
//! failures report a replayable case seed.

mod common;

use common::{random_spec, random_spec_with_defects};
use moccml::analyze::{analyze_str, Severity};
use moccml::engine::{dead_events, ExploreOptions};
use moccml::lang::compile;
use moccml_testkit::{cases, prop_assert, TestRng};

const CASES: usize = 48;

#[test]
fn seeded_defects_are_always_flagged() {
    cases(CASES).run("seeded_defects_are_always_flagged", |rng| {
        let (ast, expected) = random_spec_with_defects(rng);
        let printed = ast.to_text();
        let diags =
            analyze_str(&printed).map_err(|e| format!("seeded spec fails: {e}\n{printed}"))?;
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        for lint in &expected {
            prop_assert!(
                codes.contains(lint),
                "seeded {} not reported (got {:?}):\n{}",
                lint,
                codes,
                printed
            );
        }
        Ok(())
    });
}

#[test]
fn a013_is_sound_against_the_exploration_oracle() {
    cases(CASES).run(
        "a013_is_sound_against_the_exploration_oracle",
        |rng: &mut TestRng| {
            let ast = random_spec(rng);
            let printed = ast.to_text();
            let compiled = compile(&ast).map_err(|e| format!("compile fails: {e}"))?;
            let space = compiled
                .program
                .explore(&ExploreOptions::default().with_max_states(4096));
            if space.truncated() {
                return Ok(()); // the oracle needs the full space
            }
            let universe = compiled.universe();
            let oracle: Vec<String> = dead_events(&space, universe)
                .into_iter()
                .map(|e| universe.name(e).to_owned())
                .collect();
            let diags = analyze_str(&printed).map_err(|e| format!("lint fails: {e}"))?;
            for d in diags.iter().filter(|d| d.code == "A013") {
                // "event `x` can never fire: …" — the claimed-dead event
                let event = d.message.split('`').nth(1).unwrap_or_default().to_owned();
                prop_assert!(
                    oracle.contains(&event),
                    "A013 flagged `{}` but the full space fires it:\n{}",
                    event,
                    printed
                );
            }
            Ok(())
        },
    );
}

#[test]
fn hostile_inputs_lint_without_panicking() {
    // empty library block: an info, never an error
    let diags = analyze_str("spec s {\n  events a;\n  library Hollow { }\n}").expect("compiles");
    assert!(diags.iter().any(|d| d.code == "A005"), "{diags:?}");
    assert!(
        diags.iter().all(|d| d.severity != Severity::Error),
        "{diags:?}"
    );

    // an exclusion cycle: pairwise footprints overlap without subset
    // relations, so no A011/A012 — and definitely no panic
    let diags = analyze_str(
        "spec cycle {\n\
           events a, b, c;\n\
           constraint ab = exclusion(a, b);\n\
           constraint bc = exclusion(b, c);\n\
           constraint ca = exclusion(c, a);\n\
           assert never((a && b));\n\
         }",
    )
    .expect("compiles");
    assert!(
        !diags.iter().any(|d| d.code == "A011" || d.code == "A012"),
        "a cycle is not redundancy: {diags:?}"
    );

    // self-referential instantiation: both parameters bound to the
    // same event makes every transition's when/forbid collide at run
    // time; the linter must stay graceful whatever it decides
    let result = analyze_str(
        "spec selfref {\n\
           events a;\n\
           library SDF {\n\
             constraint Place(write: event, read: event)\n\
             automaton PlaceDef implements Place {\n\
               var size: int = 0;\n\
               initial state S0; final state S0;\n\
               from S0 to S0 when {write} forbid {read} guard [size < 1] do size += 1;\n\
               from S0 to S0 when {read} forbid {write} guard [size >= 1] do size -= 1;\n\
             }\n\
           }\n\
           constraint p = Place(a, a);\n\
         }",
    );
    match result {
        Ok(diags) => {
            for d in &diags {
                assert!(d.line >= 1 && d.column >= 1, "degenerate span: {d:?}");
            }
        }
        Err(e) => {
            let (line, column) = e.position();
            assert!(line >= 1 && column >= 1, "degenerate span: {e}");
        }
    }

    // every diagnostic of a defect-ridden spec carries a 1-based span
    let diags = analyze_str(
        "spec spans {\n\
           events a, b, orphan;\n\
           constraint c = alternates(a, b);\n\
           assert eventually<=0(a);\n\
         }",
    )
    .expect("compiles");
    assert!(!diags.is_empty());
    for d in &diags {
        assert!(d.line >= 1 && d.column >= 1, "degenerate span: {d:?}");
    }
}
