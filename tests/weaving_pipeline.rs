//! Property-based check of the paper's central separation claim: for
//! random SDF graphs, the execution model produced by the metamodel +
//! ECL-style mapping pipeline is step-for-step equivalent to the
//! hand-wired one.

use moccml_engine::{acceptable_steps, SolverOptions};
use moccml_kernel::{Specification, Step};
use moccml_sdf::mocc::{build_specification_with, MoccVariant};
use moccml_sdf::model_bridge::weave_specification;
use moccml_sdf::SdfGraph;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A random small acyclic chain-with-optional-fork SDF graph.
fn graph_strategy() -> impl Strategy<Value = SdfGraph> {
    (
        2usize..5,                                  // number of agents
        proptest::collection::vec(1u32..3, 0..8),   // rate pool
        proptest::collection::vec(0u32..2, 0..8),   // delay pool
        proptest::collection::vec(0u32..3, 4),      // cycles pool
    )
        .prop_map(|(agents, rates, delays, cycles)| {
            let mut g = SdfGraph::new("random");
            for i in 0..agents {
                let n = cycles.get(i).copied().unwrap_or(0);
                g.add_agent(&format!("a{i}"), n).expect("fresh names");
            }
            for i in 0..agents - 1 {
                let push = rates.get(2 * i).copied().unwrap_or(1);
                let pop = rates.get(2 * i + 1).copied().unwrap_or(1);
                let delay = delays.get(i).copied().unwrap_or(0);
                let capacity = (push.max(pop) * 2).max(delay);
                g.connect(
                    &format!("a{i}"),
                    &format!("a{}", i + 1),
                    push,
                    pop,
                    capacity,
                    delay,
                )
                .expect("capacity covers rates and delay");
            }
            g
        })
}

fn step_names(spec: &Specification, step: &Step) -> BTreeSet<String> {
    step.iter()
        .map(|e| spec.universe().name(e).to_owned())
        .collect()
}

fn acceptable_names(spec: &Specification) -> BTreeSet<BTreeSet<String>> {
    acceptable_steps(spec, &SolverOptions::default())
        .iter()
        .map(|s| step_names(spec, s))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Native and woven execution models accept the same named steps
    /// along a deterministic run.
    #[test]
    fn woven_equals_native_along_runs(graph in graph_strategy()) {
        let mut native =
            build_specification_with(&graph, MoccVariant::Standard).expect("native builds");
        let mut woven =
            weave_specification(&graph, MoccVariant::Standard).expect("pipeline weaves");
        prop_assert_eq!(native.constraint_count(), woven.constraint_count());
        for _ in 0..6 {
            let native_steps = acceptable_steps(&native, &SolverOptions::default());
            prop_assert_eq!(
                acceptable_names(&native),
                acceptable_names(&woven),
                "step sets diverge"
            );
            let Some(chosen) = native_steps.first() else { break };
            let names = step_names(&native, chosen);
            let replay: Step = names
                .iter()
                .map(|n| woven.universe().lookup(n).expect("event names align"))
                .collect();
            native.fire(chosen).expect("native fires its own step");
            woven.fire(&replay).expect("woven fires the same step");
        }
    }

    /// Both pipelines also agree on the multiport variant.
    #[test]
    fn woven_equals_native_multiport(graph in graph_strategy()) {
        let native =
            build_specification_with(&graph, MoccVariant::Multiport).expect("native builds");
        let woven =
            weave_specification(&graph, MoccVariant::Multiport).expect("pipeline weaves");
        prop_assert_eq!(acceptable_names(&native), acceptable_names(&woven));
    }
}
