//! Property-based check of the paper's central separation claim: for
//! random SDF graphs, the execution model produced by the metamodel +
//! ECL-style mapping pipeline is step-for-step equivalent to the
//! hand-wired one.
//!
//! Ported from `proptest` (24 cases per property) to the deterministic
//! in-repo `moccml-testkit` harness at 32 cases per property; failures
//! report a replayable case seed.

use moccml_engine::{Program, SolverOptions};
use moccml_kernel::{Specification, Step};
use moccml_sdf::mocc::{build_specification_with, MoccVariant};
use moccml_sdf::model_bridge::weave_specification;
use moccml_sdf::SdfGraph;
use moccml_testkit::{cases, prop_assert_eq, TestRng};
use std::collections::BTreeSet;

const CASES: usize = 32; // seed suite ran 24

/// A random small acyclic chain-with-optional-fork SDF graph.
fn random_graph(rng: &mut TestRng) -> SdfGraph {
    let agents = rng.usize_in(2..5);
    let rates = rng.vec_of(0..8, |r| r.u32_in(1..3));
    let delays = rng.vec_of(0..8, |r| r.u32_in(0..2));
    let cycles = rng.vec_exact(4, |r| r.u32_in(0..3));
    let mut g = SdfGraph::new("random");
    for i in 0..agents {
        let n = cycles.get(i).copied().unwrap_or(0);
        g.add_agent(&format!("a{i}"), n).expect("fresh names");
    }
    for i in 0..agents - 1 {
        let push = rates.get(2 * i).copied().unwrap_or(1);
        let pop = rates.get(2 * i + 1).copied().unwrap_or(1);
        let delay = delays.get(i).copied().unwrap_or(0);
        let capacity = (push.max(pop) * 2).max(delay);
        g.connect(
            &format!("a{i}"),
            &format!("a{}", i + 1),
            push,
            pop,
            capacity,
            delay,
        )
        .expect("capacity covers rates and delay");
    }
    g
}

fn step_names(spec: &Specification, step: &Step) -> BTreeSet<String> {
    step.iter()
        .map(|e| spec.universe().name(e).to_owned())
        .collect()
}

fn acceptable_names(spec: &Specification) -> BTreeSet<BTreeSet<String>> {
    Program::compile(spec)
        .cursor()
        .acceptable_steps(&SolverOptions::default())
        .iter()
        .map(|s| step_names(spec, s))
        .collect()
}

/// Native and woven execution models accept the same named steps
/// along a deterministic run.
#[test]
fn woven_equals_native_along_runs() {
    cases(CASES).run("woven_equals_native_along_runs", |rng| {
        let graph = random_graph(rng);
        let mut native =
            build_specification_with(&graph, MoccVariant::Standard).expect("native builds");
        let mut woven =
            weave_specification(&graph, MoccVariant::Standard).expect("pipeline weaves");
        prop_assert_eq!(native.constraint_count(), woven.constraint_count());
        for _ in 0..6 {
            let native_steps = Program::compile(&native)
                .cursor()
                .acceptable_steps(&SolverOptions::default());
            prop_assert_eq!(
                acceptable_names(&native),
                acceptable_names(&woven),
                "step sets diverge"
            );
            let Some(chosen) = native_steps.first() else {
                break;
            };
            let names = step_names(&native, chosen);
            let replay: Step = names
                .iter()
                .map(|n| woven.universe().lookup(n).expect("event names align"))
                .collect();
            native.fire(chosen).expect("native fires its own step");
            woven.fire(&replay).expect("woven fires the same step");
        }
        Ok(())
    });
}

/// Both pipelines also agree on the multiport variant.
#[test]
fn woven_equals_native_multiport() {
    cases(CASES).run("woven_equals_native_multiport", |rng| {
        let graph = random_graph(rng);
        let native =
            build_specification_with(&graph, MoccVariant::Multiport).expect("native builds");
        let woven = weave_specification(&graph, MoccVariant::Multiport).expect("pipeline weaves");
        prop_assert_eq!(acceptable_names(&native), acceptable_names(&woven));
        Ok(())
    });
}
