//! Property-based contracts of counterexample minimization (ISSUE 5):
//!
//! * every minimized witness still **re-validates** — it replays via
//!   `Cursor::fire` from the initial state and still exhibits the
//!   violation (`is_witness`);
//! * minimization is **locally minimal**: dropping any single step, or
//!   removing any single event from any step, yields a non-witness;
//! * minimization is **idempotent** and never grows the schedule;
//! * deliberately padded witnesses (checker counterexamples extended
//!   with further acceptable steps) shrink back to at most the
//!   checker's shortest length — on safety properties, where padding
//!   preserves witness-hood.
//!
//! Runs on the deterministic in-repo `moccml-testkit` harness over the
//! shared random CCSL specification generator; failures report a
//! replayable case seed.

use moccml::engine::{ExploreOptions, Program, SolverOptions};
use moccml::kernel::{EventId, Schedule, StepPred};
use moccml::verify::{check_props, is_witness, minimize_witness, Prop, PropStatus};
use moccml_testkit::{cases, prop_assert, prop_assert_eq, TestRng};

mod common;
use common::{build, random_recipe};

const CASES: usize = 48;

fn random_pred(rng: &mut TestRng) -> StepPred {
    let e = |rng: &mut TestRng| EventId::from_index(rng.usize_in(0..5));
    match rng.u8_in(0..5) {
        0 => StepPred::fired(e(rng)),
        1 => StepPred::excludes(e(rng), e(rng)),
        2 => StepPred::implies(e(rng), e(rng)),
        3 => StepPred::negate(StepPred::fired(e(rng))),
        _ => StepPred::or(StepPred::fired(e(rng)), StepPred::fired(e(rng))),
    }
}

fn random_prop(rng: &mut TestRng) -> Prop {
    match rng.u8_in(0..6) {
        0 | 1 => Prop::Never(random_pred(rng)),
        2 => Prop::Always(random_pred(rng)),
        3 => Prop::EventuallyWithin(random_pred(rng), rng.usize_in(1..6)),
        _ => Prop::DeadlockFree,
    }
}

/// Asserts the local-minimality contract: every single-step drop and
/// every single-event removal invalidates the witness.
fn assert_locally_minimal(
    program: &Program,
    prop: &Prop,
    minimal: &Schedule,
) -> Result<(), String> {
    for i in 0..minimal.len() {
        let mut dropped: Vec<_> = minimal.steps().to_vec();
        dropped.remove(i);
        let dropped: Schedule = dropped.into_iter().collect();
        prop_assert!(
            !is_witness(program, prop, &dropped),
            "dropping step {} must invalidate the witness {}",
            i,
            minimal
        );
    }
    for i in 0..minimal.len() {
        for event in minimal.steps()[i].iter() {
            let mut steps: Vec<_> = minimal.steps().to_vec();
            steps[i].remove(event);
            let thinned: Schedule = steps.into_iter().collect();
            prop_assert!(
                !is_witness(program, prop, &thinned),
                "removing {} from step {} must invalidate the witness {}",
                event,
                i,
                minimal
            );
        }
    }
    Ok(())
}

#[test]
fn minimized_witnesses_revalidate_and_are_locally_minimal() {
    cases(CASES).run(
        "minimized_witnesses_revalidate_and_are_locally_minimal",
        |rng| {
            let recipes = rng.vec_of(1..5, random_recipe);
            let spec = build(&recipes);
            let program = Program::compile(&spec);
            let prop = random_prop(rng);
            let options = ExploreOptions::default().with_max_states(300);
            let report = check_props(&program, std::slice::from_ref(&prop), &options);
            let PropStatus::Violated(ce) = &report.statuses[0] else {
                return Ok(()); // nothing to minimize this case
            };
            prop_assert!(
                is_witness(&program, &prop, &ce.schedule),
                "checker counterexamples are witnesses"
            );
            let minimal = minimize_witness(&program, &prop, &ce.schedule);
            prop_assert!(
                is_witness(&program, &prop, &minimal),
                "minimization preserves witness-hood"
            );
            prop_assert!(
                minimal.len() <= ce.schedule.len(),
                "minimization never grows the schedule"
            );
            prop_assert_eq!(
                minimize_witness(&program, &prop, &minimal),
                minimal.clone(),
                "minimization is idempotent"
            );
            assert_locally_minimal(&program, &prop, &minimal)?;
            Ok(())
        },
    );
}

#[test]
fn padded_safety_witnesses_shrink_back() {
    cases(CASES).run("padded_safety_witnesses_shrink_back", |rng| {
        let recipes = rng.vec_of(1..5, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        let prop = match rng.u8_in(0..2) {
            0 => Prop::Never(random_pred(rng)),
            _ => Prop::Always(random_pred(rng)),
        };
        let options = ExploreOptions::default().with_max_states(300);
        let report = check_props(&program, std::slice::from_ref(&prop), &options);
        let PropStatus::Violated(ce) = &report.statuses[0] else {
            return Ok(());
        };
        // pad the witness with further acceptable steps — safety
        // violations survive any suffix
        let mut cursor = program.cursor();
        for step in &ce.schedule {
            cursor.fire(step).map_err(|e| e.to_string())?;
        }
        let mut padded: Vec<_> = ce.schedule.steps().to_vec();
        let solver = SolverOptions::default().with_empty(false);
        for _ in 0..rng.usize_in(1..4) {
            let Some(step) = cursor.acceptable_steps(&solver).first().cloned() else {
                break;
            };
            cursor.fire(&step).map_err(|e| e.to_string())?;
            padded.push(step);
        }
        let padded: Schedule = padded.into_iter().collect();
        prop_assert!(
            is_witness(&program, &prop, &padded),
            "padded safety witnesses stay witnesses"
        );
        let minimal = minimize_witness(&program, &prop, &padded);
        prop_assert!(is_witness(&program, &prop, &minimal));
        prop_assert!(
            minimal.len() <= ce.schedule.len(),
            "padding must shrink back to at most the checker's shortest \
             length ({} > {})",
            minimal.len(),
            ce.schedule.len()
        );
        assert_locally_minimal(&program, &prop, &minimal)?;
        Ok(())
    });
}
