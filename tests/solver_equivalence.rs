//! Property-based equivalence of the pruned step solver against the
//! naive `2^n` enumeration, over randomly generated constraint sets —
//! the correctness side of the B3 ablation.

use moccml_ccsl::{Coincidence, Exclusion, Precedence, SubClock, Union};
use moccml_engine::{acceptable_steps, Policy, Simulator, SolverOptions};
use moccml_kernel::{Constraint, EventId, Specification, Universe};
use proptest::prelude::*;

/// A recipe for one random constraint over a small event universe.
#[derive(Debug, Clone)]
enum Recipe {
    Sub(u8, u8),
    Excl(u8, u8, u8),
    Coinc(u8, u8),
    Prec(u8, u8, u8),
    Union(u8, u8, u8),
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    prop_oneof![
        (0u8..6, 0u8..6).prop_map(|(a, b)| Recipe::Sub(a, b)),
        (0u8..6, 0u8..6, 0u8..6).prop_map(|(a, b, c)| Recipe::Excl(a, b, c)),
        (0u8..6, 0u8..6).prop_map(|(a, b)| Recipe::Coinc(a, b)),
        (0u8..6, 0u8..6, 1u8..4).prop_map(|(a, b, k)| Recipe::Prec(a, b, k)),
        (0u8..6, 0u8..6, 0u8..6).prop_map(|(a, b, c)| Recipe::Union(a, b, c)),
    ]
}

fn build(recipes: &[Recipe]) -> Specification {
    let mut u = Universe::new();
    let events: Vec<EventId> = (0..6).map(|i| u.event(&format!("e{i}"))).collect();
    let mut spec = Specification::new("random", u);
    for (i, r) in recipes.iter().enumerate() {
        let name = format!("c{i}");
        let c: Option<Box<dyn Constraint>> = match *r {
            Recipe::Sub(a, b) if a != b => Some(Box::new(SubClock::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            Recipe::Excl(a, b, c2) if a != b && b != c2 && a != c2 => Some(Box::new(
                Exclusion::new(&name, [events[a as usize], events[b as usize], events[c2 as usize]]),
            )),
            Recipe::Coinc(a, b) if a != b => Some(Box::new(Coincidence::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            Recipe::Prec(a, b, k) if a != b => Some(Box::new(
                Precedence::strict(&name, events[a as usize], events[b as usize])
                    .with_bound(u64::from(k)),
            )),
            Recipe::Union(a, b, c2) if a != b && a != c2 => Some(Box::new(Union::new(
                &name,
                events[a as usize],
                [events[b as usize], events[c2 as usize]],
            ))),
            _ => None, // degenerate draws are skipped
        };
        if let Some(c) = c {
            spec.add_constraint(c);
        }
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pruned and naive enumerations agree on arbitrary constraint sets
    /// in the initial state.
    #[test]
    fn pruned_equals_naive_initially(recipes in proptest::collection::vec(recipe_strategy(), 1..6)) {
        let spec = build(&recipes);
        let pruned = acceptable_steps(&spec, &SolverOptions::default());
        let naive = acceptable_steps(&spec, &SolverOptions::naive());
        prop_assert_eq!(pruned, naive);
    }

    /// They also agree after advancing the state along a random run.
    #[test]
    fn pruned_equals_naive_along_runs(
        recipes in proptest::collection::vec(recipe_strategy(), 1..5),
        seed in any::<u64>(),
    ) {
        let spec = build(&recipes);
        let mut sim = Simulator::new(spec, Policy::Random { seed });
        for _ in 0..6 {
            if sim.step().is_none() {
                break;
            }
            let spec = sim.specification();
            let pruned = acceptable_steps(spec, &SolverOptions::default());
            let naive = acceptable_steps(spec, &SolverOptions::naive());
            prop_assert_eq!(pruned, naive);
        }
    }

    /// Every enumerated step really satisfies the conjunction, and the
    /// specification's `accepts` agrees.
    #[test]
    fn enumerated_steps_are_accepted(recipes in proptest::collection::vec(recipe_strategy(), 1..6)) {
        let spec = build(&recipes);
        let formula = spec.conjunction();
        for step in acceptable_steps(&spec, &SolverOptions::default()) {
            prop_assert!(formula.eval(&step));
            prop_assert!(spec.accepts(&step));
        }
    }
}
