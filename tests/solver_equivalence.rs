//! Property-based equivalence of the pruned step solver against the
//! naive `2^n` enumeration, over randomly generated constraint sets —
//! the correctness side of the B3 ablation.
//!
//! Ported from `proptest` (64 cases per property) to the deterministic
//! in-repo `moccml-testkit` harness at 96 cases per property; failures
//! report a replayable case seed.

use moccml_ccsl::{Coincidence, Exclusion, Precedence, SubClock, Union};
use moccml_engine::{Program, Random, Simulator, SolverOptions};
use moccml_kernel::{Constraint, EventId, Specification, Universe};
use moccml_testkit::{cases, prop_assert, prop_assert_eq, TestRng};

const CASES: usize = 96; // seed suite ran 64

/// A recipe for one random constraint over a small event universe.
#[derive(Debug, Clone)]
enum Recipe {
    Sub(u8, u8),
    Excl(u8, u8, u8),
    Coinc(u8, u8),
    Prec(u8, u8, u8),
    Union(u8, u8, u8),
}

fn random_recipe(rng: &mut TestRng) -> Recipe {
    match rng.u8_in(0..5) {
        0 => Recipe::Sub(rng.u8_in(0..6), rng.u8_in(0..6)),
        1 => Recipe::Excl(rng.u8_in(0..6), rng.u8_in(0..6), rng.u8_in(0..6)),
        2 => Recipe::Coinc(rng.u8_in(0..6), rng.u8_in(0..6)),
        3 => Recipe::Prec(rng.u8_in(0..6), rng.u8_in(0..6), rng.u8_in(1..4)),
        _ => Recipe::Union(rng.u8_in(0..6), rng.u8_in(0..6), rng.u8_in(0..6)),
    }
}

fn build(recipes: &[Recipe]) -> Specification {
    let mut u = Universe::new();
    let events: Vec<EventId> = (0..6).map(|i| u.event(&format!("e{i}"))).collect();
    let mut spec = Specification::new("random", u);
    for (i, r) in recipes.iter().enumerate() {
        let name = format!("c{i}");
        let c: Option<Box<dyn Constraint>> = match *r {
            Recipe::Sub(a, b) if a != b => Some(Box::new(SubClock::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            Recipe::Excl(a, b, c2) if a != b && b != c2 && a != c2 => {
                Some(Box::new(Exclusion::new(
                    &name,
                    [events[a as usize], events[b as usize], events[c2 as usize]],
                )))
            }
            Recipe::Coinc(a, b) if a != b => Some(Box::new(Coincidence::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            Recipe::Prec(a, b, k) if a != b => Some(Box::new(
                Precedence::strict(&name, events[a as usize], events[b as usize])
                    .with_bound(u64::from(k)),
            )),
            Recipe::Union(a, b, c2) if a != b && a != c2 => Some(Box::new(Union::new(
                &name,
                events[a as usize],
                [events[b as usize], events[c2 as usize]],
            ))),
            _ => None, // degenerate draws are skipped
        };
        if let Some(c) = c {
            spec.add_constraint(c);
        }
    }
    spec
}

/// Pruned and naive enumerations agree on arbitrary constraint sets
/// in the initial state.
#[test]
fn pruned_equals_naive_initially() {
    cases(CASES).run("pruned_equals_naive_initially", |rng| {
        let recipes = rng.vec_of(1..6, random_recipe);
        let compiled = Program::new(build(&recipes)).cursor();
        let pruned = compiled.acceptable_steps(&SolverOptions::default());
        let naive = compiled.acceptable_steps(&SolverOptions::naive());
        prop_assert_eq!(pruned, naive, "recipes: {recipes:?}");
        Ok(())
    });
}

/// They also agree after advancing the state along a random run.
#[test]
fn pruned_equals_naive_along_runs() {
    cases(CASES).run("pruned_equals_naive_along_runs", |rng| {
        let recipes = rng.vec_of(1..5, random_recipe);
        let seed = rng.any_u64();
        let spec = build(&recipes);
        let mut sim = Simulator::new(spec, Random::new(seed));
        for _ in 0..6 {
            if sim.step().is_none() {
                break;
            }
            let compiled = sim.engine().cursor();
            let pruned = compiled.acceptable_steps(&SolverOptions::default());
            let naive = compiled.acceptable_steps(&SolverOptions::naive());
            prop_assert_eq!(pruned, naive, "recipes: {recipes:?}");
        }
        Ok(())
    });
}

/// Every enumerated step really satisfies the conjunction, and the
/// specification's `accepts` agrees.
#[test]
fn enumerated_steps_are_accepted() {
    cases(CASES).run("enumerated_steps_are_accepted", |rng| {
        let recipes = rng.vec_of(1..6, random_recipe);
        let spec = build(&recipes);
        let formula = spec.conjunction();
        for step in Program::compile(&spec)
            .cursor()
            .acceptable_steps(&SolverOptions::default())
        {
            prop_assert!(formula.eval(&step));
            prop_assert!(spec.accepts(&step));
        }
        Ok(())
    });
}
