//! Property coverage for the post-hoc analysis queries (ISSUE 4
//! satellites):
//!
//! * every `Witness` returned by `shortest_path_to` and
//!   `deadlock_witness` **replays** via `Cursor::fire` from the initial
//!   state and lands exactly on the reported state;
//! * `deadlock_witness` schedules end in genuinely wedged states and
//!   are shortest (length = BFS depth of the nearest deadlock);
//! * the memoised `live_events` agrees event-by-event with the
//!   original per-event `is_event_live` reachability scan.
//!
//! Runs on the deterministic in-repo `moccml-testkit` harness.

use moccml_engine::{
    deadlock_witness, is_event_live, live_events, shortest_path_to, ExploreOptions, Program,
    SolverOptions, StateSpace,
};
use moccml_testkit::{cases, prop_assert, prop_assert_eq};
use std::sync::Arc;

mod common;
use common::{build, random_recipe};

const CASES: usize = 56;

/// Replays a witness schedule via `Cursor::fire` from the initial
/// state; returns the reached state key.
fn replay(
    program: &Arc<Program>,
    witness: &moccml_engine::Witness,
) -> Result<moccml_kernel::StateKey, String> {
    let mut cursor = program.cursor();
    for (i, step) in witness.schedule.iter().enumerate() {
        if !cursor.accepts(step) {
            return Err(format!("witness step {i} ({step}) rejected"));
        }
        cursor.fire(step).map_err(|e| format!("step {i}: {e}"))?;
    }
    Ok(cursor.state_key())
}

#[test]
fn shortest_path_witnesses_replay_to_their_target() {
    cases(CASES).run("shortest_path_witnesses_replay_to_their_target", |rng| {
        let recipes = rng.vec_of(1..5, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        let space: StateSpace = program.explore(&ExploreOptions::default().with_max_states(2_000));
        if space.state_count() == 0 {
            return Ok(());
        }
        // target a random reachable state
        let target = rng.usize_in(0..space.state_count());
        let witness = shortest_path_to(&space, |s| s == target)
            .ok_or_else(|| format!("state {target} was interned but is unreachable"))?;
        prop_assert_eq!(witness.state, target, "recipes {:?}", recipes);
        let reached =
            replay(&program, &witness).map_err(|e| format!("{e} (recipes {recipes:?})"))?;
        prop_assert_eq!(
            &reached,
            &space.states()[target],
            "witness must land on the target key (recipes {:?})",
            recipes
        );
        Ok(())
    });
}

#[test]
fn deadlock_witnesses_replay_into_wedged_states() {
    cases(CASES).run("deadlock_witnesses_replay_into_wedged_states", |rng| {
        let recipes = rng.vec_of(2..6, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        let space = program.explore(&ExploreOptions::default().with_max_states(2_000));
        match deadlock_witness(&space) {
            None => {
                prop_assert!(
                    space.deadlocks().is_empty() || space.truncated(),
                    "no witness only without (reachable) deadlocks: {recipes:?}"
                );
            }
            Some(witness) => {
                prop_assert!(
                    space.deadlocks().contains(&witness.state),
                    "witness state is a deadlock (recipes {recipes:?})"
                );
                // replay lands on the deadlock key, and the state is
                // genuinely wedged for a fresh cursor
                let mut cursor = program.cursor();
                for (i, step) in witness.schedule.iter().enumerate() {
                    prop_assert!(
                        cursor.accepts(step),
                        "witness step {i} rejected (recipes {recipes:?})"
                    );
                    cursor.fire(step).map_err(|e| e.to_string())?;
                }
                prop_assert_eq!(
                    &cursor.state_key(),
                    &space.states()[witness.state],
                    "recipes {:?}",
                    recipes
                );
                prop_assert!(
                    cursor
                        .acceptable_steps(&SolverOptions::default())
                        .is_empty(),
                    "deadlock state must admit no non-empty step (recipes {recipes:?})"
                );
                // shortest: no deadlock at a strictly smaller BFS depth
                let shorter = shortest_path_to(&space, |s| space.deadlocks().contains(&s))
                    .expect("same target set");
                prop_assert_eq!(
                    shorter.schedule.len(),
                    witness.schedule.len(),
                    "deadlock_witness must be shortest (recipes {:?})",
                    recipes
                );
            }
        }
        Ok(())
    });
}

#[test]
fn live_events_matches_the_per_event_scan() {
    cases(CASES).run("live_events_matches_the_per_event_scan", |rng| {
        let recipes = rng.vec_of(1..6, random_recipe);
        let spec = build(&recipes);
        let universe = spec.universe().clone();
        let space =
            Program::compile(&spec).explore(&ExploreOptions::default().with_max_states(2_000));
        let live = live_events(&space, &universe);
        for e in universe.iter() {
            prop_assert_eq!(
                live.contains(&e),
                is_event_live(&space, e),
                "event {} (recipes {:?})",
                e,
                recipes
            );
        }
        // the memoised result is sorted in universe order by construction
        let mut sorted = live.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&live, &sorted, "live_events order");
        Ok(())
    });
}
