//! End-to-end integration: SDF graph → execution model → engine,
//! checking global SDF invariants along whole runs.

use moccml_engine::{
    ExploreOptions, Lexicographic, MaxParallel, MinSerial, Policy, Program, Random,
    SafeMaxParallel, Simulator,
};
use moccml_sdf::analysis::repetition_vector;
use moccml_sdf::mocc::{build_specification, build_specification_with, MoccVariant};
use moccml_sdf::SdfGraph;

fn multirate() -> SdfGraph {
    let mut g = SdfGraph::new("mr");
    g.add_agent("a", 0).expect("fresh");
    g.add_agent("b", 0).expect("fresh");
    g.add_agent("c", 0).expect("fresh");
    g.connect("a", "b", 2, 3, 6, 0).expect("valid");
    g.connect("b", "c", 1, 2, 4, 0).expect("valid");
    g
}

/// Token counts in every place stay within [0, capacity] along any
/// simulated schedule, for several policies.
#[test]
fn place_occupancy_is_invariant_under_all_policies() {
    let g = multirate();
    let policies: Vec<Box<dyn Policy>> = vec![
        Box::new(Lexicographic),
        Box::new(MaxParallel),
        Box::new(MinSerial),
        Box::new(SafeMaxParallel),
        Box::new(Random::new(11)),
        Box::new(Random::new(99)),
    ];
    for policy in policies {
        let policy_name = policy.name().to_owned();
        let spec = build_specification(&g).expect("builds");
        let mut sim = Simulator::with_boxed_policy(spec, policy);
        let report = sim.run(40);
        let u = sim.specification().universe();
        for place in g.places() {
            let w = u
                .lookup(&format!("{}.write", g.ports()[place.output_port].name))
                .expect("event");
            let r = u
                .lookup(&format!("{}.read", g.ports()[place.input_port].name))
                .expect("event");
            let push = i64::from(g.ports()[place.output_port].rate);
            let pop = i64::from(g.ports()[place.input_port].rate);
            let mut size = i64::from(place.delay);
            for step in report.schedule.iter() {
                if step.contains(w) {
                    size += push;
                }
                if step.contains(r) {
                    size -= pop;
                }
                assert!(
                    size >= 0 && size <= i64::from(place.capacity),
                    "policy {policy_name}: occupancy {size} out of bounds"
                );
            }
        }
    }
}

/// Along any schedule, activation counts of connected agents respect
/// the repetition-vector ratio within the buffering slack.
#[test]
fn activation_ratios_follow_repetition_vector() {
    let g = multirate();
    let r = repetition_vector(&g).expect("consistent");
    assert_eq!(r, vec![3, 2, 1]);
    let spec = build_specification(&g).expect("builds");
    let mut sim = Simulator::new(spec, SafeMaxParallel);
    let report = sim.run(60);
    assert!(!report.deadlocked);
    let u = sim.specification().universe();
    let counts: Vec<i64> = ["a", "b", "c"]
        .iter()
        .map(|n| {
            report
                .schedule
                .occurrences(u.lookup(&format!("{n}.start")).expect("event")) as i64
        })
        .collect();
    // each agent fired at least one full iteration's worth
    for (i, &c) in counts.iter().enumerate() {
        assert!(c >= r[i] as i64, "agent {i}: {c} < {}", r[i]);
    }
    // bounded divergence: |count_a * r_b - count_b * r_a| stays small
    let slack = 12;
    assert!((counts[0] * r[1] as i64 - counts[1] * r[0] as i64).abs() <= slack);
    assert!((counts[1] * r[2] as i64 - counts[2] * r[1] as i64).abs() <= slack);
}

/// The start/stop/read/write coincidences of the SDF abstraction
/// (N = 0) hold in every step of every acceptable schedule.
#[test]
fn sdf_abstraction_coincidences_hold() {
    let g = multirate();
    let spec = build_specification(&g).expect("builds");
    let mut sim = Simulator::new(spec, Random::new(4));
    let report = sim.run(40);
    let u = sim.specification().universe();
    for (idx, agent) in g.agents().iter().enumerate() {
        let start = u.lookup(&format!("{}.start", agent.name)).expect("event");
        let stop = u.lookup(&format!("{}.stop", agent.name)).expect("event");
        for step in report.schedule.iter() {
            assert_eq!(step.contains(start), step.contains(stop), "N=0 atomicity");
        }
        for p in g.input_ports(idx) {
            let read = u
                .lookup(&format!("{}.read", g.ports()[p].name))
                .expect("event");
            for step in report.schedule.iter() {
                assert_eq!(step.contains(read), step.contains(start), "read=start");
            }
        }
        for p in g.output_ports(idx) {
            let write = u
                .lookup(&format!("{}.write", g.ports()[p].name))
                .expect("event");
            for step in report.schedule.iter() {
                assert_eq!(step.contains(write), step.contains(stop), "write=stop");
            }
        }
    }
}

/// Exploration of the standard variant is a subgraph of the multiport
/// variant's exploration (E4 at full state-space granularity).
#[test]
fn multiport_exploration_contains_standard() {
    let mut g = SdfGraph::new("pc");
    g.add_agent("p", 0).expect("fresh");
    g.add_agent("c", 0).expect("fresh");
    g.connect("p", "c", 1, 1, 2, 1).expect("valid");
    let std_spec = build_specification_with(&g, MoccVariant::Standard).expect("builds");
    let mp_spec = build_specification_with(&g, MoccVariant::Multiport).expect("builds");
    let std_space = Program::new(std_spec).explore(&ExploreOptions::default());
    let mp_space = Program::new(mp_spec).explore(&ExploreOptions::default());
    assert!(mp_space.transition_count() > std_space.transition_count());
    assert!(mp_space.count_schedules(5) > std_space.count_schedules(5));
    assert_eq!(std_space.deadlocks().len(), 0);
    assert_eq!(mp_space.deadlocks().len(), 0);
}

/// A long simulation of a timed graph (N > 0) preserves the activation
/// protocol: start < exec… < stop, never nested.
#[test]
fn timed_agents_never_nest_activations() {
    let mut g = SdfGraph::new("timed");
    g.add_agent("x", 3).expect("fresh");
    g.add_agent("y", 2).expect("fresh");
    g.connect("x", "y", 1, 1, 2, 0).expect("valid");
    let spec = build_specification(&g).expect("builds");
    let mut sim = Simulator::new(spec, Random::new(21));
    let report = sim.run(60);
    let u = sim.specification().universe();
    for agent in ["x", "y"] {
        let start = u.lookup(&format!("{agent}.start")).expect("event");
        let stop = u.lookup(&format!("{agent}.stop")).expect("event");
        let exec = u.lookup(&format!("{agent}.isExecuting")).expect("event");
        let mut executing = false;
        let mut cycles = 0usize;
        for step in report.schedule.iter() {
            if step.contains(start) {
                assert!(!executing, "{agent}: nested start");
                executing = true;
                cycles = 0;
            }
            if step.contains(exec) {
                assert!(executing, "{agent}: isExecuting outside activation");
                cycles += 1;
            }
            if step.contains(stop) {
                assert!(executing, "{agent}: stop without start");
                let n = if agent == "x" { 3 } else { 2 };
                assert_eq!(cycles, n, "{agent}: stop at the N-th isExecuting");
                executing = false;
            }
        }
    }
}
