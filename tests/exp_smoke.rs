//! Smoke tests: every `exp_e*` binary's workload builder constructs a
//! valid artefact at tiny size and survives a short engine run — so a
//! broken experiment shows up in `cargo test`, not at paper-regeneration
//! time.

use moccml_bench::experiments::{
    e1_place, e2_spec, e3_graph, e4_graph, e5_graph, e6_configs, e7_conformance_trace,
    e7_violating_pam,
};
use moccml_bench::harness::measure;
use moccml_engine::{Program, SafeMaxParallel, Simulator, SolverOptions};
use moccml_kernel::{Constraint, Step};
use moccml_sdf::analysis::repetition_vector;
use moccml_sdf::mocc::{build_specification, build_specification_with, MoccVariant};

#[test]
fn e1_place_blocks_read_when_empty_and_write_when_full() {
    let (mut place, w, r) = e1_place(1, 0);
    let f = place.current_formula();
    assert!(f.eval(&Step::from_events([w])), "room for one token");
    assert!(!f.eval(&Step::from_events([r])), "no token to read");
    place.fire(&Step::from_events([w])).expect("room");
    let f = place.current_formula();
    assert!(!f.eval(&Step::from_events([w])), "full place blocks write");
    assert!(f.eval(&Step::from_events([r])), "token available");
}

#[test]
fn e2_spec_starts_unconstrained() {
    let (spec, events) = e2_spec(3);
    assert_eq!(events.len(), 3);
    assert_eq!(spec.constraint_count(), 0);
    assert_eq!(spec.free_events().len(), 3);
}

#[test]
fn e3_graph_is_consistent_and_runs() {
    let g = e3_graph();
    assert_eq!(repetition_vector(&g).expect("consistent"), vec![3, 2, 2]);
    let spec = build_specification(&g).expect("builds");
    let report = Simulator::new(spec, SafeMaxParallel).run(8);
    assert!(!report.deadlocked);
}

#[test]
fn e4_graph_admits_both_variants() {
    let g = e4_graph();
    for variant in [MoccVariant::Standard, MoccVariant::Multiport] {
        let spec = build_specification_with(&g, variant).expect("builds");
        assert!(
            !Program::new(spec)
                .cursor()
                .acceptable_steps(&SolverOptions::default())
                .is_empty(),
            "{variant:?} must offer at least one step"
        );
    }
}

#[test]
fn e5_graph_respects_execution_time_at_tiny_n() {
    for n in [0u32, 1] {
        let spec = build_specification(&e5_graph(n)).expect("builds");
        let report = Simulator::new(spec, SafeMaxParallel).run(10);
        assert!(!report.deadlocked, "N={n} must not deadlock");
    }
}

#[test]
fn e6_configs_build_and_simulate() {
    let configs = e6_configs();
    assert_eq!(configs.len(), 4, "infinite + three deployments");
    for (name, spec) in &configs {
        let report = Simulator::new(spec.clone(), SafeMaxParallel).run(3);
        assert!(!report.deadlocked, "{name}: safe policy must not wedge");
    }
}

#[test]
fn e7_seeded_property_is_violated_with_early_stop() {
    let (spec, prop) = e7_violating_pam();
    let program = Program::compile(&spec);
    let options = moccml_engine::ExploreOptions::default();
    let report = moccml_verify::check_props(&program, std::slice::from_ref(&prop), &options);
    let (_, ce) = report.first_violation().expect("detector does start");
    assert!(ce.replays_on(&program));
    // the BENCH_verify claim, kept under test: early stop beats the
    // full exploration on the seeded workload
    let full = program.explore(&options).state_count();
    assert!(
        report.states_visited < full,
        "early stop ({}) vs full ({full})",
        report.states_visited
    );
}

#[test]
fn e7_conformance_trace_conforms() {
    let (spec, trace) = e7_conformance_trace(6);
    assert_eq!(trace.len(), 6);
    let program = Program::compile(&spec);
    assert!(moccml_verify::conformance(&program, &trace).conforms());
    // and round-trips through the text format
    let text = trace.to_lines(spec.universe()).expect("plain names");
    let parsed = moccml_kernel::Schedule::parse_lines(&text, spec.universe()).expect("parses");
    assert_eq!(parsed, trace);
}

#[test]
fn harness_measures_an_engine_workload() {
    // the bench harness itself is part of the experiment path: one
    // tiny end-to-end measurement through the shared reporting types.
    let (spec, _) = e2_spec(2);
    let compiled = Program::new(spec).cursor();
    let record = measure("smoke", 1, 3, || {
        compiled.acceptable_steps(&SolverOptions::default().with_empty(true))
    });
    assert_eq!(record.iters, 3);
    assert!(record.min_ns <= record.p95_ns);
}
