//! Smoke tests: every `exp_e*` binary's workload builder constructs a
//! valid artefact at tiny size and survives a short engine run — so a
//! broken experiment shows up in `cargo test`, not at paper-regeneration
//! time.

use moccml_bench::experiments::{e1_place, e2_spec, e3_graph, e4_graph, e5_graph, e6_configs};
use moccml_bench::harness::measure;
use moccml_engine::{Program, SafeMaxParallel, Simulator, SolverOptions};
use moccml_kernel::{Constraint, Step};
use moccml_sdf::analysis::repetition_vector;
use moccml_sdf::mocc::{build_specification, build_specification_with, MoccVariant};

#[test]
fn e1_place_blocks_read_when_empty_and_write_when_full() {
    let (mut place, w, r) = e1_place(1, 0);
    let f = place.current_formula();
    assert!(f.eval(&Step::from_events([w])), "room for one token");
    assert!(!f.eval(&Step::from_events([r])), "no token to read");
    place.fire(&Step::from_events([w])).expect("room");
    let f = place.current_formula();
    assert!(!f.eval(&Step::from_events([w])), "full place blocks write");
    assert!(f.eval(&Step::from_events([r])), "token available");
}

#[test]
fn e2_spec_starts_unconstrained() {
    let (spec, events) = e2_spec(3);
    assert_eq!(events.len(), 3);
    assert_eq!(spec.constraint_count(), 0);
    assert_eq!(spec.free_events().len(), 3);
}

#[test]
fn e3_graph_is_consistent_and_runs() {
    let g = e3_graph();
    assert_eq!(repetition_vector(&g).expect("consistent"), vec![3, 2, 2]);
    let spec = build_specification(&g).expect("builds");
    let report = Simulator::new(spec, SafeMaxParallel).run(8);
    assert!(!report.deadlocked);
}

#[test]
fn e4_graph_admits_both_variants() {
    let g = e4_graph();
    for variant in [MoccVariant::Standard, MoccVariant::Multiport] {
        let spec = build_specification_with(&g, variant).expect("builds");
        assert!(
            !Program::new(spec)
                .cursor()
                .acceptable_steps(&SolverOptions::default())
                .is_empty(),
            "{variant:?} must offer at least one step"
        );
    }
}

#[test]
fn e5_graph_respects_execution_time_at_tiny_n() {
    for n in [0u32, 1] {
        let spec = build_specification(&e5_graph(n)).expect("builds");
        let report = Simulator::new(spec, SafeMaxParallel).run(10);
        assert!(!report.deadlocked, "N={n} must not deadlock");
    }
}

#[test]
fn e6_configs_build_and_simulate() {
    let configs = e6_configs();
    assert_eq!(configs.len(), 4, "infinite + three deployments");
    for (name, spec) in &configs {
        let report = Simulator::new(spec.clone(), SafeMaxParallel).run(3);
        assert!(!report.deadlocked, "{name}: safe policy must not wedge");
    }
}

#[test]
fn harness_measures_an_engine_workload() {
    // the bench harness itself is part of the experiment path: one
    // tiny end-to-end measurement through the shared reporting types.
    let (spec, _) = e2_spec(2);
    let compiled = Program::new(spec).cursor();
    let record = measure("smoke", 1, 3, || {
        compiled.acceptable_steps(&SolverOptions::default().with_empty(true))
    });
    assert_eq!(record.iters, 3);
    assert!(record.min_ns <= record.p95_ns);
}
