//! Property-based contracts of the `moccml-verify` layer (ISSUE 4):
//!
//! * on-the-fly checking returns **byte-identical** reports — statuses,
//!   `Counterexample` schedules, visited-state counts — for `workers`
//!   ∈ {1, 2, 8}, on random CCSL specifications and random properties
//!   (≥ 48 cases);
//! * every returned counterexample **re-validates** step by step
//!   through a fresh `Cursor` from the initial state, and actually
//!   witnesses its violation (a refuted last step, a wedged state, a
//!   pred-free prefix of exact bound length);
//! * conformance agrees with direct cursor replay, on accepted and
//!   corrupted traces alike;
//! * `Schedule::to_lines` / `parse_lines` round-trip every explored
//!   schedule;
//! * a specification strengthened with one extra constraint always
//!   *refines* the original.
//!
//! Runs on the deterministic in-repo `moccml-testkit` harness;
//! failures report a replayable case seed.

use moccml_engine::{ExploreOptions, Program, SolverOptions};
use moccml_kernel::{EventId, Schedule, Step, StepPred};
use moccml_testkit::{cases, prop_assert, prop_assert_eq, TestRng};
use moccml_verify::{
    check_props, check_refinement, conformance, is_witness, CheckReport, Prop, PropStatus, Verdict,
};
use std::sync::Arc;

mod common;
use common::{build, random_recipe};

const CASES: usize = 56; // ISSUE 4 requires ≥ 48
const WORKERS: [usize; 3] = [1, 2, 8];

fn random_pred(rng: &mut TestRng) -> StepPred {
    let e = |rng: &mut TestRng| EventId::from_index(rng.usize_in(0..5));
    match rng.u8_in(0..5) {
        0 => StepPred::fired(e(rng)),
        1 => StepPred::excludes(e(rng), e(rng)),
        2 => StepPred::implies(e(rng), e(rng)),
        3 => StepPred::negate(StepPred::fired(e(rng))),
        _ => StepPred::or(StepPred::fired(e(rng)), StepPred::fired(e(rng))),
    }
}

fn random_prop(rng: &mut TestRng) -> Prop {
    match rng.u8_in(0..8) {
        0 | 1 => Prop::Never(random_pred(rng)),
        2 => Prop::Always(random_pred(rng)),
        3 => Prop::EventuallyWithin(random_pred(rng), rng.usize_in(1..6)),
        4 => Prop::UntilWithin(random_pred(rng), random_pred(rng), rng.usize_in(1..6)),
        5 => Prop::ReleaseWithin(random_pred(rng), random_pred(rng), rng.usize_in(1..6)),
        _ => Prop::DeadlockFree,
    }
}

/// Replays `schedule` through a fresh cursor via `Cursor::fire`,
/// returning the cursor on success — the re-validation contract.
fn replay(program: &Arc<Program>, schedule: &Schedule) -> Result<moccml_engine::Cursor, String> {
    let mut cursor = program.cursor();
    for (i, step) in schedule.iter().enumerate() {
        if !cursor.accepts(step) {
            return Err(format!("step {i} ({step}) rejected"));
        }
        cursor.fire(step).map_err(|e| format!("step {i}: {e}"))?;
    }
    Ok(cursor)
}

/// Checks that a violated prop's counterexample genuinely witnesses
/// the violation after replay.
fn assert_witnesses(
    program: &Arc<Program>,
    prop: &Prop,
    ce: &moccml_verify::Counterexample,
) -> Result<(), String> {
    let cursor = replay(program, &ce.schedule)?;
    match prop {
        Prop::Always(p) => {
            let last = ce.schedule.steps().last().ok_or("empty Always witness")?;
            prop_assert!(!p.eval(last), "last step must refute the predicate");
        }
        Prop::Never(p) => {
            let last = ce.schedule.steps().last().ok_or("empty Never witness")?;
            prop_assert!(p.eval(last), "last step must satisfy the predicate");
        }
        Prop::DeadlockFree => {
            prop_assert!(
                cursor
                    .acceptable_steps(&SolverOptions::default())
                    .is_empty(),
                "deadlock witness must end in a wedged state"
            );
        }
        Prop::EventuallyWithin(p, k) => {
            prop_assert!(
                ce.schedule.iter().all(|s| !p.eval(s)),
                "liveness witness must be predicate-free"
            );
            prop_assert!(ce.schedule.len() <= *k, "witness no longer than the bound");
            if ce.schedule.len() < *k {
                // shorter than the bound ⇒ the run is wedged
                prop_assert!(
                    cursor
                        .acceptable_steps(&SolverOptions::default())
                        .is_empty(),
                    "short liveness witness must end in a wedged state"
                );
            }
        }
        Prop::UntilWithin(..) | Prop::ReleaseWithin(..) => {
            // the bounded binary forms delegate to the shared trace
            // monitor; `is_witness` replays through the same
            // `TraceEvaluator` the checkers use
            prop_assert!(
                is_witness(program, prop, &ce.schedule),
                "bounded-until/release witness must re-validate through the monitor"
            );
        }
    }
    Ok(())
}

/// The acceptance property: byte-identical reports for every worker
/// count, every counterexample replayable and witnessing.
#[test]
fn onthefly_reports_are_identical_across_worker_counts() {
    cases(CASES).run(
        "onthefly_reports_are_identical_across_worker_counts",
        |rng| {
            let recipes = rng.vec_of(1..5, random_recipe);
            let spec = build(&recipes);
            let program = Program::compile(&spec);
            let props: Vec<Prop> = rng.vec_of(1..4, random_prop);
            let base = ExploreOptions::default().with_max_states(2_000);
            let mut reference: Option<CheckReport> = None;
            for &workers in &WORKERS {
                let report = check_props(&program, &props, &base.clone().with_workers(workers));
                match &reference {
                    None => reference = Some(report),
                    Some(r) => prop_assert_eq!(
                        r,
                        &report,
                        "workers={}, recipes {:?}, props {:?}",
                        workers,
                        recipes,
                        props
                    ),
                }
            }
            let report = reference.expect("three runs");
            for (prop, status) in props.iter().zip(&report.statuses) {
                if let PropStatus::Violated(ce) = status {
                    assert_witnesses(&program, prop, ce)
                        .map_err(|e| format!("{e} (prop {prop}, recipes {recipes:?})"))?;
                }
            }
            Ok(())
        },
    );
}

/// Conformance agrees with direct cursor replay: explored schedules
/// conform; corrupting one step makes the verdict point at it.
#[test]
fn conformance_agrees_with_cursor_replay() {
    cases(CASES).run("conformance_agrees_with_cursor_replay", |rng| {
        let recipes = rng.vec_of(1..5, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        // random acceptable walk
        let mut cursor = program.cursor();
        let mut schedule = Schedule::new();
        for _ in 0..rng.usize_in(1..8) {
            let steps = cursor.acceptable_steps(&SolverOptions::default());
            if steps.is_empty() {
                break;
            }
            let step = rng.choice(&steps).clone();
            cursor.fire(&step).expect("acceptable");
            schedule.push(step);
        }
        prop_assert!(
            conformance(&program, &schedule).conforms(),
            "an explored walk must conform (recipes {recipes:?})"
        );
        // corrupt one position with a rejected step, if one exists
        if schedule.is_empty() {
            return Ok(());
        }
        let position = rng.usize_in(0..schedule.len());
        let mut replayer = program.cursor();
        for step in schedule.steps().iter().take(position) {
            replayer.fire(step).expect("prefix replays");
        }
        let all: Vec<EventId> = (0..5).map(EventId::from_index).collect();
        let bad = (1u32..32)
            .map(|mask| {
                Step::from_events(
                    all.iter()
                        .enumerate()
                        .filter(|(i, _)| mask & (1 << *i) != 0)
                        .map(|(_, e)| *e),
                )
            })
            .find(|s| !replayer.accepts(s));
        let Some(bad) = bad else {
            return Ok(()); // everything acceptable here: nothing to corrupt
        };
        let corrupted: Schedule = schedule
            .steps()
            .iter()
            .take(position)
            .cloned()
            .chain([bad.clone()])
            .collect();
        match conformance(&program, &corrupted) {
            Verdict::Violation { step, violated } => {
                prop_assert_eq!(step, position, "first violating index");
                prop_assert!(!violated.is_empty(), "at least one constraint named");
            }
            Verdict::Conforms => {
                return Err(format!(
                    "corrupted schedule conforms (bad step {bad}, recipes {recipes:?})"
                ))
            }
        }
        Ok(())
    });
}

/// Every schedule produced by a random walk round-trips through the
/// text format.
#[test]
fn schedules_round_trip_through_text() {
    cases(CASES).run("schedules_round_trip_through_text", |rng| {
        let recipes = rng.vec_of(1..5, random_recipe);
        let spec = build(&recipes);
        let universe = spec.universe().clone();
        let program = Program::compile(&spec);
        let mut cursor = program.cursor();
        let mut schedule = Schedule::new();
        for _ in 0..rng.usize_in(0..10) {
            let steps = cursor.acceptable_steps(&SolverOptions::default());
            if steps.is_empty() {
                break;
            }
            let step = rng.choice(&steps).clone();
            cursor.fire(&step).expect("acceptable");
            schedule.push(step);
            if rng.bool() {
                schedule.push(Step::new()); // interleave stuttering
                cursor.fire(&Step::new()).expect("stuttering is acceptable");
            }
        }
        let text = schedule.to_lines(&universe).map_err(|e| e.to_string())?;
        let parsed = Schedule::parse_lines(&text, &universe).map_err(|e| e.to_string())?;
        prop_assert_eq!(&parsed, &schedule, "round trip (recipes {:?})", recipes);
        Ok(())
    });
}

/// Adding a constraint can only remove behaviour: the strengthened
/// specification refines the original.
#[test]
fn strengthening_a_spec_refines_it() {
    cases(CASES).run("strengthening_a_spec_refines_it", |rng| {
        let recipes = rng.vec_of(1..4, random_recipe);
        let base_spec = build(&recipes);
        let extra = rng.vec_of(1..3, random_recipe);
        let mut strong_spec = build(&recipes);
        for r in &extra {
            // reuse the builder: lift the extra recipe's constraint out
            // of a throwaway spec over the same 5-event universe
            let tmp = build(std::slice::from_ref(r));
            if let Some(c) = tmp.constraints().first() {
                strong_spec.add_constraint(c.clone());
            }
        }
        let base = Program::new(base_spec);
        let strong = Program::new(strong_spec);
        let verdict = check_refinement(
            &strong,
            &base,
            &moccml_verify::EquivOptions::default().with_max_states(2_000),
        )
        .map_err(|e| e.to_string())?;
        prop_assert!(
            !matches!(verdict, moccml_verify::EquivalenceVerdict::Distinguished(_)),
            "strengthened spec must refine the base (recipes {recipes:?}, extra {extra:?})"
        );
        Ok(())
    });
}

/// The equivalence/refinement product runs through the parallel
/// explorer (ISSUE 5): on random specification pairs over one
/// universe, the verdict — `Equivalent` pair counts, `Unknown`
/// bounds and `Distinguished` schedules/steps/sides alike — is
/// identical for workers ∈ {1, 2, 8}.
#[test]
fn equivalence_verdicts_are_identical_across_worker_counts() {
    cases(CASES).run(
        "equivalence_verdicts_are_identical_across_worker_counts",
        |rng| {
            let left_recipes = rng.vec_of(1..4, random_recipe);
            let right_recipes = rng.vec_of(1..4, random_recipe);
            let left = Program::new(build(&left_recipes));
            let right = Program::new(build(&right_recipes));
            let base = moccml_verify::EquivOptions::default().with_max_states(500);
            let mut reference = None;
            for &workers in &WORKERS {
                let equivalence = moccml_verify::check_equivalence(
                    &left,
                    &right,
                    &base.clone().with_workers(workers),
                )
                .map_err(|e| e.to_string())?;
                let refinement = moccml_verify::check_refinement(
                    &left,
                    &right,
                    &base.clone().with_workers(workers),
                )
                .map_err(|e| e.to_string())?;
                match &reference {
                    None => {
                        // a distinguishing schedule must replay on both
                        // sides, and the step on exactly the named one
                        if let moccml_verify::EquivalenceVerdict::Distinguished(d) = &equivalence {
                            prop_assert!(
                                conformance(&left, &d.schedule).conforms()
                                    && conformance(&right, &d.schedule).conforms(),
                                "the common prefix replays on both sides \
                                 (left {left_recipes:?}, right {right_recipes:?})"
                            );
                            let mut extended = d.schedule.clone();
                            extended.push(d.step.clone());
                            let (accepting, rejecting) = match d.only_accepted_by {
                                moccml_verify::Side::Left => (&left, &right),
                                moccml_verify::Side::Right => (&right, &left),
                            };
                            prop_assert!(
                                conformance(accepting, &extended).conforms(),
                                "the named side accepts the distinguishing step"
                            );
                            prop_assert!(
                                !conformance(rejecting, &extended).conforms(),
                                "the other side rejects the distinguishing step"
                            );
                        }
                        reference = Some((equivalence, refinement));
                    }
                    Some((e0, r0)) => {
                        prop_assert_eq!(
                            e0,
                            &equivalence,
                            "equivalence workers={} (left {:?}, right {:?})",
                            workers,
                            left_recipes,
                            right_recipes
                        );
                        prop_assert_eq!(r0, &refinement, "refinement workers={}", workers);
                    }
                }
            }
            Ok(())
        },
    );
}
