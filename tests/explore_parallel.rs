//! Property-based determinism of the parallel state-space explorer:
//! `explore` with workers ∈ {1, 2, 8} must build **identical**
//! `StateSpace`s — same interned states in the same order, same
//! transitions, same deadlocks, same truncation flag — on random CCSL
//! specifications, including runs truncated by `max_states`.
//!
//! This is the contract the canonicalization pass of the explorer
//! promises: worker threads only change *who expands* a frontier
//! state, never the order in which discoveries are absorbed.
//!
//! Runs ≥64 cases per property on the deterministic in-repo
//! `moccml-testkit` harness; failures report a replayable case seed.

use moccml_engine::{ExploreOptions, Program, StateSpace};
use moccml_testkit::{cases, prop_assert, prop_assert_eq};

mod common;
use common::{build, random_recipe};

const CASES: usize = 72; // ISSUE 3 requires ≥ 64
const WORKERS: [usize; 3] = [1, 2, 8];

/// Field-by-field identity check with readable failure messages (the
/// `PartialEq` on `StateSpace` covers the same surface; spelling the
/// fields out pinpoints *what* diverged on a failing seed).
fn assert_identical(serial: &StateSpace, parallel: &StateSpace, ctx: &str) -> Result<(), String> {
    prop_assert_eq!(serial.states(), parallel.states(), "states: {ctx}");
    prop_assert_eq!(
        serial.transitions(),
        parallel.transitions(),
        "transitions: {ctx}"
    );
    prop_assert_eq!(serial.deadlocks(), parallel.deadlocks(), "deadlocks: {ctx}");
    prop_assert_eq!(serial.initial(), parallel.initial(), "initial: {ctx}");
    prop_assert_eq!(serial.truncated(), parallel.truncated(), "truncated: {ctx}");
    prop_assert!(serial == parallel, "PartialEq must agree: {ctx}");
    Ok(())
}

/// Full (untruncated-where-finite) exploration is identical for every
/// worker count.
#[test]
fn worker_counts_build_identical_spaces() {
    cases(CASES).run("worker_counts_build_identical_spaces", |rng| {
        let recipes = rng.vec_of(1..5, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        // bounded so that pathological draws stay fast; most cases
        // finish untruncated
        let base = ExploreOptions::default().with_max_states(3_000);
        let serial = program.explore(&base.clone().with_workers(WORKERS[0]));
        for &workers in &WORKERS[1..] {
            let parallel = program.explore(&base.clone().with_workers(workers));
            assert_identical(
                &serial,
                &parallel,
                &format!("workers={workers}, recipes {recipes:?}"),
            )?;
        }
        Ok(())
    });
}

/// `max_states`-truncated exploration — where *which* states get
/// interned depends on the exact discovery order — is also identical
/// for every worker count.
#[test]
fn worker_counts_agree_under_max_states_truncation() {
    cases(CASES).run("worker_counts_agree_under_max_states_truncation", |rng| {
        let recipes = rng.vec_of(2..6, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        // a tight random bound forces truncation on any non-trivial
        // space, right where interning order matters most
        let max_states = rng.usize_in(1..25);
        let base = ExploreOptions::default().with_max_states(max_states);
        let serial = program.explore(&base.clone().with_workers(WORKERS[0]));
        prop_assert!(serial.state_count() <= max_states);
        for &workers in &WORKERS[1..] {
            let parallel = program.explore(&base.clone().with_workers(workers));
            assert_identical(
                &serial,
                &parallel,
                &format!("workers={workers}, max_states={max_states}, recipes {recipes:?}"),
            )?;
        }
        Ok(())
    });
}

/// Depth-bounded exploration agrees too (the other truncation path).
#[test]
fn worker_counts_agree_under_depth_truncation() {
    cases(CASES).run("worker_counts_agree_under_depth_truncation", |rng| {
        let recipes = rng.vec_of(2..6, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        let max_depth = rng.usize_in(0..6);
        let base = ExploreOptions::default()
            .with_max_states(3_000)
            .with_max_depth(max_depth);
        let serial = program.explore(&base.clone().with_workers(WORKERS[0]));
        for &workers in &WORKERS[1..] {
            let parallel = program.explore(&base.clone().with_workers(workers));
            assert_identical(
                &serial,
                &parallel,
                &format!("workers={workers}, max_depth={max_depth}, recipes {recipes:?}"),
            )?;
        }
        Ok(())
    });
}
