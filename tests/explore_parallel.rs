//! Property-based determinism of the parallel state-space explorer:
//! `explore` with workers ∈ {1, 2, 8} must build **identical**
//! `StateSpace`s — same interned states in the same order, same
//! transitions, same deadlocks, same truncation flag — on random CCSL
//! specifications, including runs truncated by `max_states`.
//!
//! This is the contract the canonicalization pass of the explorer
//! promises: worker threads only change *who expands* a frontier
//! state, never the order in which discoveries are absorbed.
//!
//! Runs ≥64 cases per property on the deterministic in-repo
//! `moccml-testkit` harness; failures report a replayable case seed.

use moccml_ccsl::{Alternation, Coincidence, Exclusion, Precedence, SubClock, Union};
use moccml_engine::{ExploreOptions, Program, StateSpace};
use moccml_kernel::{Constraint, EventId, Specification, Universe};
use moccml_testkit::{cases, prop_assert, prop_assert_eq, TestRng};

const CASES: usize = 72; // ISSUE 3 requires ≥ 64
const WORKERS: [usize; 3] = [1, 2, 8];

/// A recipe for one random constraint over a small event universe.
/// Bounded precedences and alternations are weighted up: they are the
/// stateful constraints that grow multi-level BFS frontiers.
#[derive(Debug, Clone)]
enum Recipe {
    Sub(u8, u8),
    Excl(u8, u8, u8),
    Coinc(u8, u8),
    Prec(u8, u8, u8),
    Union(u8, u8, u8),
    Alt(u8, u8),
}

fn random_recipe(rng: &mut TestRng) -> Recipe {
    match rng.u8_in(0..8) {
        0 => Recipe::Sub(rng.u8_in(0..5), rng.u8_in(0..5)),
        1 => Recipe::Excl(rng.u8_in(0..5), rng.u8_in(0..5), rng.u8_in(0..5)),
        2 => Recipe::Coinc(rng.u8_in(0..5), rng.u8_in(0..5)),
        3 | 4 => Recipe::Prec(rng.u8_in(0..5), rng.u8_in(0..5), rng.u8_in(1..5)),
        5 => Recipe::Union(rng.u8_in(0..5), rng.u8_in(0..5), rng.u8_in(0..5)),
        _ => Recipe::Alt(rng.u8_in(0..5), rng.u8_in(0..5)),
    }
}

fn build(recipes: &[Recipe]) -> Specification {
    let mut u = Universe::new();
    let events: Vec<EventId> = (0..5).map(|i| u.event(&format!("e{i}"))).collect();
    let mut spec = Specification::new("random", u);
    for (i, r) in recipes.iter().enumerate() {
        let name = format!("c{i}");
        let c: Option<Box<dyn Constraint>> = match *r {
            Recipe::Sub(a, b) if a != b => Some(Box::new(SubClock::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            Recipe::Excl(a, b, c2) if a != b && b != c2 && a != c2 => {
                Some(Box::new(Exclusion::new(
                    &name,
                    [events[a as usize], events[b as usize], events[c2 as usize]],
                )))
            }
            Recipe::Coinc(a, b) if a != b => Some(Box::new(Coincidence::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            Recipe::Prec(a, b, k) if a != b => Some(Box::new(
                Precedence::strict(&name, events[a as usize], events[b as usize])
                    .with_bound(u64::from(k)),
            )),
            Recipe::Union(a, b, c2) if a != b && a != c2 => Some(Box::new(Union::new(
                &name,
                events[a as usize],
                [events[b as usize], events[c2 as usize]],
            ))),
            Recipe::Alt(a, b) if a != b => Some(Box::new(Alternation::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            _ => None, // degenerate draws are skipped
        };
        if let Some(c) = c {
            spec.add_constraint(c);
        }
    }
    spec
}

/// Field-by-field identity check with readable failure messages (the
/// `PartialEq` on `StateSpace` covers the same surface; spelling the
/// fields out pinpoints *what* diverged on a failing seed).
fn assert_identical(serial: &StateSpace, parallel: &StateSpace, ctx: &str) -> Result<(), String> {
    prop_assert_eq!(serial.states(), parallel.states(), "states: {ctx}");
    prop_assert_eq!(
        serial.transitions(),
        parallel.transitions(),
        "transitions: {ctx}"
    );
    prop_assert_eq!(serial.deadlocks(), parallel.deadlocks(), "deadlocks: {ctx}");
    prop_assert_eq!(serial.initial(), parallel.initial(), "initial: {ctx}");
    prop_assert_eq!(serial.truncated(), parallel.truncated(), "truncated: {ctx}");
    prop_assert!(serial == parallel, "PartialEq must agree: {ctx}");
    Ok(())
}

/// Full (untruncated-where-finite) exploration is identical for every
/// worker count.
#[test]
fn worker_counts_build_identical_spaces() {
    cases(CASES).run("worker_counts_build_identical_spaces", |rng| {
        let recipes = rng.vec_of(1..5, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        // bounded so that pathological draws stay fast; most cases
        // finish untruncated
        let base = ExploreOptions::default().with_max_states(3_000);
        let serial = program.explore(&base.clone().with_workers(WORKERS[0]));
        for &workers in &WORKERS[1..] {
            let parallel = program.explore(&base.clone().with_workers(workers));
            assert_identical(
                &serial,
                &parallel,
                &format!("workers={workers}, recipes {recipes:?}"),
            )?;
        }
        Ok(())
    });
}

/// `max_states`-truncated exploration — where *which* states get
/// interned depends on the exact discovery order — is also identical
/// for every worker count.
#[test]
fn worker_counts_agree_under_max_states_truncation() {
    cases(CASES).run("worker_counts_agree_under_max_states_truncation", |rng| {
        let recipes = rng.vec_of(2..6, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        // a tight random bound forces truncation on any non-trivial
        // space, right where interning order matters most
        let max_states = rng.usize_in(1..25);
        let base = ExploreOptions::default().with_max_states(max_states);
        let serial = program.explore(&base.clone().with_workers(WORKERS[0]));
        prop_assert!(serial.state_count() <= max_states);
        for &workers in &WORKERS[1..] {
            let parallel = program.explore(&base.clone().with_workers(workers));
            assert_identical(
                &serial,
                &parallel,
                &format!("workers={workers}, max_states={max_states}, recipes {recipes:?}"),
            )?;
        }
        Ok(())
    });
}

/// Depth-bounded exploration agrees too (the other truncation path).
#[test]
fn worker_counts_agree_under_depth_truncation() {
    cases(CASES).run("worker_counts_agree_under_depth_truncation", |rng| {
        let recipes = rng.vec_of(2..6, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        let max_depth = rng.usize_in(0..6);
        let base = ExploreOptions::default()
            .with_max_states(3_000)
            .with_max_depth(max_depth);
        let serial = program.explore(&base.clone().with_workers(WORKERS[0]));
        for &workers in &WORKERS[1..] {
            let parallel = program.explore(&base.clone().with_workers(workers));
            assert_identical(
                &serial,
                &parallel,
                &format!("workers={workers}, max_depth={max_depth}, recipes {recipes:?}"),
            )?;
        }
        Ok(())
    });
}
