//! Non-perturbation of the observability layer: attaching a live
//! [`Recorder`](moccml_obs::Recorder) to an exploration or a check
//! must change **nothing observable** — the `StateSpace`, the visitor
//! callback sequence, and the `CheckReport` are byte-identical with
//! the recorder off and on, for workers ∈ {1, 2, 8}, on random CCSL
//! specifications, including `max_states`-truncated runs and mid-run
//! `VisitControl::Stop`.
//!
//! This is the contract that makes `--trace` and serve's `metrics`
//! safe to leave on in production: the recorder only counts what the
//! explorer does, it never changes what the explorer does.
//!
//! The suite also pins the trace exports themselves: the Chrome
//! trace-event JSON parses with serve's own strict [`Json`] parser,
//! every JSONL line is an object with a `type` member, and the
//! Prometheus-style exposition passes [`moccml_obs::expose::validate`].
//!
//! Runs on the deterministic in-repo `moccml-testkit` harness;
//! failures report a replayable case seed.

use moccml_engine::{ExploreOptions, ExploreVisitor, Program, StateSpace, VisitControl};
use moccml_kernel::Step;
use moccml_obs::Recorder;
use moccml_serve::json::Json;
use moccml_testkit::{cases, prop_assert, prop_assert_eq, TestRng};
use moccml_verify::{check_props, Prop};

mod common;
use common::{build, random_recipe};

const CASES: usize = 56;
const WORKERS: [usize; 3] = [1, 2, 8];

fn assert_identical(off: &StateSpace, on: &StateSpace, ctx: &str) -> Result<(), String> {
    prop_assert_eq!(off.states(), on.states(), "states: {ctx}");
    prop_assert_eq!(off.transitions(), on.transitions(), "transitions: {ctx}");
    prop_assert_eq!(off.deadlocks(), on.deadlocks(), "deadlocks: {ctx}");
    prop_assert_eq!(off.truncated(), on.truncated(), "truncated: {ctx}");
    prop_assert!(off == on, "PartialEq must agree: {ctx}");
    Ok(())
}

/// Exploration — untruncated and `max_states`-truncated — builds the
/// identical `StateSpace` with the recorder off and on, at every
/// worker count.
#[test]
fn recorder_never_perturbs_the_state_space() {
    cases(CASES).run("recorder_never_perturbs_the_state_space", |rng| {
        let recipes = rng.vec_of(1..5, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        // half the cases run truncated — where absorption order decides
        // *which* states get interned, right where a perturbing
        // recorder would show
        let max_states = if rng.u8_in(0..2) == 0 {
            rng.usize_in(1..40)
        } else {
            3_000
        };
        for &workers in &WORKERS {
            let base = ExploreOptions::default()
                .with_max_states(max_states)
                .with_workers(workers);
            let off = program.explore(&base);
            let recorder = Recorder::new();
            let on = program.explore(&base.clone().with_recorder(&recorder));
            let ctx = format!("workers={workers}, max_states={max_states}, recipes {recipes:?}");
            assert_identical(&off, &on, &ctx)?;
            let snapshot = recorder.snapshot();
            prop_assert!(
                off.state_count() <= 1 || snapshot.counter_sum("explore_expansions_w") > 0,
                "a multi-state space implies at least one recorded expansion: {ctx}"
            );
        }
        Ok(())
    });
}

/// One visitor callback, recorded verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    Transition(usize, Step, usize, usize),
    Deadlock(usize, usize),
    Dropped(usize),
    LevelEnd(usize, usize),
    Progress(usize, usize, usize),
}

/// Records every callback and stops — deterministically — after a
/// fixed number of level boundaries.
struct StoppingVisitor {
    events: Vec<Event>,
    levels_left: usize,
}

impl ExploreVisitor for StoppingVisitor {
    fn on_transition(&mut self, source: usize, step: &Step, target: usize, depth: usize) {
        self.events
            .push(Event::Transition(source, step.clone(), target, depth));
    }
    fn on_deadlock(&mut self, state: usize, depth: usize) {
        self.events.push(Event::Deadlock(state, depth));
    }
    fn on_states_dropped(&mut self, depth: usize) {
        self.events.push(Event::Dropped(depth));
    }
    fn on_level_end(&mut self, depth: usize, state_count: usize) -> VisitControl {
        self.events.push(Event::LevelEnd(depth, state_count));
        if self.levels_left == 0 {
            VisitControl::Stop
        } else {
            self.levels_left -= 1;
            VisitControl::Continue
        }
    }
    fn on_progress(&mut self, states: usize, transitions: usize, depth: usize) -> VisitControl {
        self.events
            .push(Event::Progress(states, transitions, depth));
        VisitControl::Continue
    }
}

/// Mid-run `VisitControl::Stop` with a live recorder attached yields
/// the identical truncated space *and* the identical callback sequence
/// as the recorder-free run, at every worker count.
#[test]
fn recorder_never_perturbs_callbacks_or_mid_run_stop() {
    cases(CASES).run("recorder_never_perturbs_callbacks_or_mid_run_stop", |rng| {
        let recipes = rng.vec_of(2..6, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        let stop_after = rng.usize_in(0..4);
        for &workers in &WORKERS {
            let base = ExploreOptions::default()
                .with_max_states(3_000)
                .with_workers(workers);
            let mut off_visitor = StoppingVisitor {
                events: Vec::new(),
                levels_left: stop_after,
            };
            let off = program.explore_with(&base, &mut off_visitor);
            let recorder = Recorder::new();
            let mut on_visitor = StoppingVisitor {
                events: Vec::new(),
                levels_left: stop_after,
            };
            let on = program.explore_with(&base.clone().with_recorder(&recorder), &mut on_visitor);
            let ctx = format!("workers={workers}, stop_after={stop_after}, recipes {recipes:?}");
            assert_identical(&off, &on, &ctx)?;
            prop_assert_eq!(
                &off_visitor.events,
                &on_visitor.events,
                "callback sequence: {ctx}"
            );
        }
        Ok(())
    });
}

fn random_pred(rng: &mut TestRng) -> moccml_kernel::StepPred {
    use moccml_kernel::{EventId, StepPred};
    let e = |rng: &mut TestRng| EventId::from_index(rng.usize_in(0..5));
    match rng.u8_in(0..4) {
        0 => StepPred::fired(e(rng)),
        1 => StepPred::excludes(e(rng), e(rng)),
        2 => StepPred::implies(e(rng), e(rng)),
        _ => StepPred::negate(StepPred::fired(e(rng))),
    }
}

fn random_prop(rng: &mut TestRng) -> Prop {
    match rng.u8_in(0..5) {
        0 | 1 => Prop::Never(random_pred(rng)),
        2 => Prop::Always(random_pred(rng)),
        3 => Prop::EventuallyWithin(random_pred(rng), rng.usize_in(1..5)),
        _ => Prop::DeadlockFree,
    }
}

/// `check_props` — statuses, counterexample schedules and visited
/// counts — is byte-identical with the recorder off and on, at every
/// worker count, on truncated explorations.
#[test]
fn recorder_never_perturbs_check_reports() {
    cases(CASES).run("recorder_never_perturbs_check_reports", |rng| {
        let recipes = rng.vec_of(2..6, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        let props: Vec<Prop> = rng.vec_of(1..4, random_prop);
        let max_states = rng.usize_in(5..120);
        for &workers in &WORKERS {
            let base = ExploreOptions::default()
                .with_max_states(max_states)
                .with_workers(workers);
            let off = check_props(&program, &props, &base);
            let recorder = Recorder::new();
            let on = check_props(&program, &props, &base.clone().with_recorder(&recorder));
            prop_assert_eq!(
                &off,
                &on,
                "check report: workers={workers}, max_states={max_states}, \
                 props {props:?}, recipes {recipes:?}"
            );
        }
        Ok(())
    });
}

/// The trace exports of a recorded random run always round-trip
/// through serve's strict JSON parser, and the exposition validates.
#[test]
fn trace_exports_parse_and_exposition_validates() {
    cases(CASES).run("trace_exports_parse_and_exposition_validates", |rng| {
        let recipes = rng.vec_of(1..5, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        let recorder = Recorder::new();
        {
            let _span = recorder.span("explore");
            let _ = program.explore(
                &ExploreOptions::default()
                    .with_max_states(500)
                    .with_workers(rng.usize_in(1..5))
                    .with_recorder(&recorder),
            );
        }
        let snapshot = recorder.snapshot();

        // Chrome trace-event JSON: strict-parses, and the span names
        // survive into traceEvents
        let catapult = moccml_obs::trace::catapult_json(&snapshot, "moccml");
        let parsed = Json::parse(&catapult).map_err(|e| format!("catapult: {e:?}"))?;
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or("traceEvents array")?;
        prop_assert!(!events.is_empty(), "at least the explore span");
        let has_explore = events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("explore"));
        prop_assert!(has_explore, "the explore span is exported");

        // JSONL: every line is an object with a `type` member
        for line in moccml_obs::trace::jsonl(&snapshot).lines() {
            let row = Json::parse(line).map_err(|e| format!("jsonl: {e:?}"))?;
            prop_assert!(
                row.get("type").and_then(Json::as_str).is_some(),
                "jsonl rows carry a type"
            );
        }

        // exposition: the counters render to a valid Prometheus-style
        // text page
        let mut exposition = moccml_obs::expose::Exposition::new();
        for (name, value) in &snapshot.counters {
            exposition.counter(&format!("test_{name}_total"), "test counter", &[], *value);
        }
        let text = exposition.finish();
        moccml_obs::expose::validate(&text).map_err(|e| format!("exposition: {e}"))?;
        Ok(())
    });
}
