//! Property-based contracts of the `moccml-lang` textual frontend
//! (ISSUE 5):
//!
//! * **spec round trip** — for random specifications (built-in CCSL
//!   constructors, embedded automata libraries, properties), printing
//!   with `SpecAst::to_text` and reparsing yields an equal AST, the
//!   canonical form is a fixpoint, and the reparsed spec compiles to a
//!   byte-identical program (same universe, same template state key)
//!   with equal properties;
//! * **prop round trip** — for random kernel properties,
//!   `Prop::display` output parses back (`parse_prop`) to the original
//!   `Prop`; same for bare `StepPred`s through `parse_pred`;
//! * parse errors never panic and always carry a 1-based `line:col`.
//!
//! Runs on the deterministic in-repo `moccml-testkit` harness;
//! failures report a replayable case seed.

use moccml::kernel::{EventId, StepPred, Universe};
use moccml::lang::ast::{Arg, ConstraintDecl, Item, LibraryBlock, Name, PredAst, PropAst, SpecAst};
use moccml::lang::{compile, parse_pred, parse_prop, parse_spec};
use moccml::verify::Prop;
use moccml_testkit::{cases, prop_assert, prop_assert_eq, TestRng};

const CASES: usize = 64;
const EVENTS: usize = 5;

fn name(text: &str) -> Name {
    Name::new(text, 1, 1)
}

fn event_name(rng: &mut TestRng) -> Name {
    name(&format!("e{}", rng.usize_in(0..EVENTS)))
}

fn event_arg(rng: &mut TestRng) -> Arg {
    Arg::Event(event_name(rng))
}

/// One random, always-compilable built-in constraint declaration.
fn random_builtin(rng: &mut TestRng, index: usize) -> ConstraintDecl {
    let cname = name(&format!("c{index}"));
    let (ctor, args): (&str, Vec<Arg>) = match rng.u8_in(0..12) {
        0 => ("subclock", vec![event_arg(rng), event_arg(rng)]),
        1 => (
            "exclusion",
            (0..rng.usize_in(2..4)).map(|_| event_arg(rng)).collect(),
        ),
        2 => ("coincidence", vec![event_arg(rng), event_arg(rng)]),
        3 => (
            "precedes",
            vec![
                event_arg(rng),
                event_arg(rng),
                Arg::Int(rng.usize_in(1..4) as i64, 1, 1),
            ],
        ),
        4 => ("weak_precedes", vec![event_arg(rng), event_arg(rng)]),
        5 => ("alternates", vec![event_arg(rng), event_arg(rng)]),
        6 => (
            "union",
            (0..rng.usize_in(2..4)).map(|_| event_arg(rng)).collect(),
        ),
        7 => (
            "intersection",
            (0..rng.usize_in(2..4)).map(|_| event_arg(rng)).collect(),
        ),
        8 => (
            "delay",
            vec![
                event_arg(rng),
                event_arg(rng),
                Arg::Int(rng.usize_in(0..3) as i64, 1, 1),
            ],
        ),
        9 => (
            "periodic",
            vec![
                event_arg(rng),
                event_arg(rng),
                Arg::Int(rng.usize_in(0..3) as i64, 1, 1),
                Arg::Int(rng.usize_in(1..4) as i64, 1, 1),
            ],
        ),
        10 => (
            "sampled",
            vec![event_arg(rng), event_arg(rng), event_arg(rng)],
        ),
        _ => (
            "filtered",
            vec![
                event_arg(rng),
                event_arg(rng),
                Arg::Bits(
                    (0..rng.usize_in(0..3))
                        .map(|_| rng.u8_in(0..2) == 1)
                        .collect(),
                    1,
                    1,
                ),
                Arg::Bits(
                    (0..rng.usize_in(1..4))
                        .map(|_| rng.u8_in(0..2) == 1)
                        .collect(),
                    1,
                    1,
                ),
            ],
        ),
    };
    ConstraintDecl {
        name: cname,
        ctor: name(ctor),
        args,
    }
}

fn random_pred_ast(rng: &mut TestRng, depth: usize) -> PredAst {
    if depth == 0 {
        return PredAst::Fired(event_name(rng));
    }
    match rng.u8_in(0..6) {
        0 => PredAst::Fired(event_name(rng)),
        1 => PredAst::Excludes(event_name(rng), event_name(rng)),
        2 => PredAst::Implies(event_name(rng), event_name(rng)),
        3 => PredAst::And(
            Box::new(random_pred_ast(rng, depth - 1)),
            Box::new(random_pred_ast(rng, depth - 1)),
        ),
        4 => PredAst::Or(
            Box::new(random_pred_ast(rng, depth - 1)),
            Box::new(random_pred_ast(rng, depth - 1)),
        ),
        _ => PredAst::Not(Box::new(random_pred_ast(rng, depth - 1))),
    }
}

fn random_prop_ast(rng: &mut TestRng) -> PropAst {
    match rng.u8_in(0..4) {
        0 => PropAst::Always(random_pred_ast(rng, 2)),
        1 => PropAst::Never(random_pred_ast(rng, 2)),
        2 => PropAst::EventuallyWithin(random_pred_ast(rng, 2), rng.usize_in(0..6)),
        _ => PropAst::DeadlockFree,
    }
}

/// The Fig. 3 place library as an embeddable block, plus `count`
/// random instantiations of it.
fn random_library_items(rng: &mut TestRng, first_index: usize) -> Vec<Item> {
    let library = moccml::automata::parse_library(
        "library SDF {\n\
           constraint Place(write: event, read: event,\n\
                            pushRate: int, popRate: int,\n\
                            itsDelay: int, itsCapacity: int)\n\
           automaton PlaceDef implements Place {\n\
             var size: int = itsDelay;\n\
             initial state S0;\n\
             final state S0;\n\
             from S0 to S0 when {write} forbid {read}\n\
               guard [size <= itsCapacity - pushRate] do size += pushRate;\n\
             from S0 to S0 when {read} forbid {write}\n\
               guard [size >= popRate] do size -= popRate;\n\
           }\n\
         }",
    )
    .expect("embedded template parses");
    let mut items = vec![Item::Library(LibraryBlock {
        library,
        line: 1,
        column: 1,
    })];
    for i in 0..rng.usize_in(1..3) {
        items.push(Item::Constraint(ConstraintDecl {
            name: name(&format!("place{}_{}", first_index, i)),
            ctor: name("Place"),
            args: vec![
                event_arg(rng),
                event_arg(rng),
                Arg::Int(1, 1, 1),
                Arg::Int(1, 1, 1),
                Arg::Int(rng.usize_in(0..3) as i64, 1, 1),
                Arg::Int(rng.usize_in(1..4) as i64, 1, 1),
            ],
        }));
    }
    items
}

/// A random, always-compilable specification AST.
fn random_spec(rng: &mut TestRng) -> SpecAst {
    let mut items = vec![Item::Events(
        (0..EVENTS).map(|i| name(&format!("e{i}"))).collect(),
    )];
    let constraint_count = rng.usize_in(0..5);
    for i in 0..constraint_count {
        items.push(Item::Constraint(random_builtin(rng, i)));
    }
    if rng.u8_in(0..3) == 0 {
        items.extend(random_library_items(rng, constraint_count));
    }
    for _ in 0..rng.usize_in(0..4) {
        items.push(Item::Assert(random_prop_ast(rng)));
    }
    SpecAst {
        name: "random".to_owned(),
        items,
    }
}

#[test]
fn spec_print_parse_round_trips_and_recompiles_identically() {
    cases(CASES).run(
        "spec_print_parse_round_trips_and_recompiles_identically",
        |rng| {
            let ast = random_spec(rng);
            let printed = ast.to_text();
            let reparsed =
                parse_spec(&printed).map_err(|e| format!("printed form fails: {e}\n{printed}"))?;
            prop_assert_eq!(&ast, &reparsed, "AST round trip\n{}", printed);
            prop_assert_eq!(
                printed.clone(),
                reparsed.to_text(),
                "canonical form is a fixpoint"
            );
            let direct = compile(&ast).map_err(|e| format!("direct compile fails: {e}"))?;
            let reprinted =
                compile(&reparsed).map_err(|e| format!("round-trip compile fails: {e}"))?;
            prop_assert_eq!(
                direct.universe(),
                reprinted.universe(),
                "same interned universe"
            );
            prop_assert_eq!(
                direct.program.template_key(),
                reprinted.program.template_key(),
                "same compiled template state"
            );
            prop_assert_eq!(direct.props, reprinted.props, "same properties");
            Ok(())
        },
    );
}

fn random_pred(rng: &mut TestRng, depth: usize) -> StepPred {
    let e = |rng: &mut TestRng| EventId::from_index(rng.usize_in(0..EVENTS));
    if depth == 0 {
        return StepPred::fired(e(rng));
    }
    match rng.u8_in(0..6) {
        0 => StepPred::fired(e(rng)),
        1 => StepPred::excludes(e(rng), e(rng)),
        2 => StepPred::implies(e(rng), e(rng)),
        3 => StepPred::and(random_pred(rng, depth - 1), random_pred(rng, depth - 1)),
        4 => StepPred::or(random_pred(rng, depth - 1), random_pred(rng, depth - 1)),
        _ => StepPred::negate(random_pred(rng, depth - 1)),
    }
}

fn universe() -> Universe {
    let mut u = Universe::new();
    for i in 0..EVENTS {
        u.event(&format!("e{i}"));
    }
    u
}

#[test]
fn prop_display_parse_round_trips() {
    let u = universe();
    cases(CASES).run("prop_display_parse_round_trips", |rng| {
        let prop = match rng.u8_in(0..4) {
            0 => Prop::Always(random_pred(rng, 3)),
            1 => Prop::Never(random_pred(rng, 3)),
            2 => Prop::EventuallyWithin(random_pred(rng, 3), rng.usize_in(0..9)),
            _ => Prop::DeadlockFree,
        };
        let text = prop.display(&u);
        let parsed = parse_prop(&text, &u).map_err(|e| format!("`{text}` fails: {e}"))?;
        prop_assert_eq!(parsed, prop, "display output must parse back: `{}`", text);
        Ok(())
    });
}

#[test]
fn pred_display_parse_round_trips() {
    let u = universe();
    cases(CASES).run("pred_display_parse_round_trips", |rng| {
        let pred = random_pred(rng, 4);
        let text = pred.display(&u);
        let parsed = parse_pred(&text, &u).map_err(|e| format!("`{text}` fails: {e}"))?;
        prop_assert_eq!(parsed, pred, "display output must parse back: `{}`", text);
        Ok(())
    });
}

#[test]
fn mangled_sources_error_with_positions_instead_of_panicking() {
    cases(CASES).run("mangled_sources_error_with_positions", |rng| {
        // print a random spec, then mangle it: truncate, splice a
        // hostile token, or delete a character
        let printed = random_spec(rng).to_text();
        let mangled = match rng.u8_in(0..3) {
            0 => printed[..rng.usize_in(0..printed.len())].to_owned(),
            1 => {
                let at = rng.usize_in(0..printed.len());
                let mut s = printed[..at].to_owned();
                s.push('@');
                s.push_str(&printed[at..]);
                s
            }
            _ => {
                let at = rng.usize_in(0..printed.len());
                let mut s = printed.clone();
                // remove one whole char (respecting UTF-8 boundaries)
                if let Some((i, c)) = s.char_indices().nth(at.min(s.chars().count() - 1)) {
                    s.replace_range(i..i + c.len_utf8(), "");
                }
                s
            }
        };
        match parse_spec(&mangled) {
            Ok(ast) => {
                // a lucky mangle can stay well-formed — it must then
                // still round-trip
                let printed = ast.to_text();
                prop_assert!(parse_spec(&printed).is_ok(), "reprint parses");
            }
            Err(e) => {
                let (line, column) = e.position();
                prop_assert!(line >= 1 && column >= 1, "degenerate span: {}", e);
            }
        }
        Ok(())
    });
}
