//! Property-based contracts of the `moccml-lang` textual frontend
//! (ISSUE 5):
//!
//! * **spec round trip** — for random specifications (built-in CCSL
//!   constructors, embedded automata libraries, properties), printing
//!   with `SpecAst::to_text` and reparsing yields an equal AST, the
//!   canonical form is a fixpoint, and the reparsed spec compiles to a
//!   byte-identical program (same universe, same template state key)
//!   with equal properties;
//! * **prop round trip** — for random kernel properties,
//!   `Prop::display` output parses back (`parse_prop`) to the original
//!   `Prop`; same for bare `StepPred`s through `parse_pred`;
//! * parse errors never panic and always carry a 1-based `line:col`.
//!
//! The random-AST generators live in `tests/common/mod.rs`, shared
//! with the analyzer and slicing suites. Runs on the deterministic
//! in-repo `moccml-testkit` harness; failures report a replayable case
//! seed.

mod common;

use common::{random_spec, EVENTS};
use moccml::kernel::{EventId, StepPred, Universe};
use moccml::lang::{compile, parse_pred, parse_prop, parse_spec};
use moccml::verify::Prop;
use moccml_testkit::{cases, prop_assert, prop_assert_eq, TestRng};

const CASES: usize = 64;

#[test]
fn spec_print_parse_round_trips_and_recompiles_identically() {
    cases(CASES).run(
        "spec_print_parse_round_trips_and_recompiles_identically",
        |rng| {
            let ast = random_spec(rng);
            let printed = ast.to_text();
            let reparsed =
                parse_spec(&printed).map_err(|e| format!("printed form fails: {e}\n{printed}"))?;
            prop_assert_eq!(&ast, &reparsed, "AST round trip\n{}", printed);
            prop_assert_eq!(
                printed.clone(),
                reparsed.to_text(),
                "canonical form is a fixpoint"
            );
            let direct = compile(&ast).map_err(|e| format!("direct compile fails: {e}"))?;
            let reprinted =
                compile(&reparsed).map_err(|e| format!("round-trip compile fails: {e}"))?;
            prop_assert_eq!(
                direct.universe(),
                reprinted.universe(),
                "same interned universe"
            );
            prop_assert_eq!(
                direct.program.template_key(),
                reprinted.program.template_key(),
                "same compiled template state"
            );
            prop_assert_eq!(direct.props, reprinted.props, "same properties");
            Ok(())
        },
    );
}

fn random_pred(rng: &mut TestRng, depth: usize) -> StepPred {
    let e = |rng: &mut TestRng| EventId::from_index(rng.usize_in(0..EVENTS));
    if depth == 0 {
        return StepPred::fired(e(rng));
    }
    match rng.u8_in(0..6) {
        0 => StepPred::fired(e(rng)),
        1 => StepPred::excludes(e(rng), e(rng)),
        2 => StepPred::implies(e(rng), e(rng)),
        3 => StepPred::and(random_pred(rng, depth - 1), random_pred(rng, depth - 1)),
        4 => StepPred::or(random_pred(rng, depth - 1), random_pred(rng, depth - 1)),
        _ => StepPred::negate(random_pred(rng, depth - 1)),
    }
}

fn universe() -> Universe {
    let mut u = Universe::new();
    for i in 0..EVENTS {
        u.event(&format!("e{i}"));
    }
    u
}

#[test]
fn prop_display_parse_round_trips() {
    let u = universe();
    cases(CASES).run("prop_display_parse_round_trips", |rng| {
        let prop = match rng.u8_in(0..4) {
            0 => Prop::Always(random_pred(rng, 3)),
            1 => Prop::Never(random_pred(rng, 3)),
            2 => Prop::EventuallyWithin(random_pred(rng, 3), rng.usize_in(0..9)),
            _ => Prop::DeadlockFree,
        };
        let text = prop.display(&u);
        let parsed = parse_prop(&text, &u).map_err(|e| format!("`{text}` fails: {e}"))?;
        prop_assert_eq!(parsed, prop, "display output must parse back: `{}`", text);
        Ok(())
    });
}

#[test]
fn pred_display_parse_round_trips() {
    let u = universe();
    cases(CASES).run("pred_display_parse_round_trips", |rng| {
        let pred = random_pred(rng, 4);
        let text = pred.display(&u);
        let parsed = parse_pred(&text, &u).map_err(|e| format!("`{text}` fails: {e}"))?;
        prop_assert_eq!(parsed, pred, "display output must parse back: `{}`", text);
        Ok(())
    });
}

#[test]
fn mangled_sources_error_with_positions_instead_of_panicking() {
    cases(CASES).run("mangled_sources_error_with_positions", |rng| {
        // print a random spec, then mangle it: truncate, splice a
        // hostile token, or delete a character
        let printed = random_spec(rng).to_text();
        let mangled = match rng.u8_in(0..3) {
            0 => printed[..rng.usize_in(0..printed.len())].to_owned(),
            1 => {
                let at = rng.usize_in(0..printed.len());
                let mut s = printed[..at].to_owned();
                s.push('@');
                s.push_str(&printed[at..]);
                s
            }
            _ => {
                let at = rng.usize_in(0..printed.len());
                let mut s = printed.clone();
                // remove one whole char (respecting UTF-8 boundaries)
                if let Some((i, c)) = s.char_indices().nth(at.min(s.chars().count() - 1)) {
                    s.replace_range(i..i + c.len_utf8(), "");
                }
                s
            }
        };
        match parse_spec(&mangled) {
            Ok(ast) => {
                // a lucky mangle can stay well-formed — it must then
                // still round-trip
                let printed = ast.to_text();
                prop_assert!(parse_spec(&printed).is_ok(), "reprint parses");
            }
            Err(e) => {
                let (line, column) = e.position();
                prop_assert!(line >= 1 && column >= 1, "degenerate span: {}", e);
            }
        }
        Ok(())
    });
}
