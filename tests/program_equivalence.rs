//! Property-based equivalence of the compiled `Program`/`Cursor` path
//! against an independent brute-force oracle, over randomly generated
//! CCSL constraint sets — the correctness side of the compilation
//! split: memoising per-constraint lowered formulas (and sharing the
//! memo across cursors) must change *no* step semantics.
//!
//! The oracle enumerates every subset of the constrained events and
//! evaluates the specification's own `conjunction()` — no engine code
//! on that side at all. (It replaces the 0.1 `acceptable_steps` free
//! function, which PR 3 removed after its one-release deprecation.)
//!
//! Runs ≥64 cases per property on the deterministic in-repo
//! `moccml-testkit` harness; failures report a replayable case seed.

use moccml_ccsl::{Alternation, Coincidence, Exclusion, Precedence, SubClock, Union};
use moccml_engine::{Program, SolverOptions};
use moccml_kernel::{Constraint, EventId, Specification, Step, Universe};
use moccml_testkit::{cases, prop_assert, prop_assert_eq, TestRng};

const CASES: usize = 96; // ISSUE 2 required ≥ 64

/// A recipe for one random constraint over a small event universe.
#[derive(Debug, Clone)]
enum Recipe {
    Sub(u8, u8),
    Excl(u8, u8, u8),
    Coinc(u8, u8),
    Prec(u8, u8, u8),
    Union(u8, u8, u8),
    Alt(u8, u8),
}

fn random_recipe(rng: &mut TestRng) -> Recipe {
    match rng.u8_in(0..6) {
        0 => Recipe::Sub(rng.u8_in(0..6), rng.u8_in(0..6)),
        1 => Recipe::Excl(rng.u8_in(0..6), rng.u8_in(0..6), rng.u8_in(0..6)),
        2 => Recipe::Coinc(rng.u8_in(0..6), rng.u8_in(0..6)),
        3 => Recipe::Prec(rng.u8_in(0..6), rng.u8_in(0..6), rng.u8_in(1..4)),
        4 => Recipe::Union(rng.u8_in(0..6), rng.u8_in(0..6), rng.u8_in(0..6)),
        _ => Recipe::Alt(rng.u8_in(0..6), rng.u8_in(0..6)),
    }
}

fn build(recipes: &[Recipe]) -> Specification {
    let mut u = Universe::new();
    let events: Vec<EventId> = (0..6).map(|i| u.event(&format!("e{i}"))).collect();
    let mut spec = Specification::new("random", u);
    for (i, r) in recipes.iter().enumerate() {
        let name = format!("c{i}");
        let c: Option<Box<dyn Constraint>> = match *r {
            Recipe::Sub(a, b) if a != b => Some(Box::new(SubClock::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            Recipe::Excl(a, b, c2) if a != b && b != c2 && a != c2 => {
                Some(Box::new(Exclusion::new(
                    &name,
                    [events[a as usize], events[b as usize], events[c2 as usize]],
                )))
            }
            Recipe::Coinc(a, b) if a != b => Some(Box::new(Coincidence::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            Recipe::Prec(a, b, k) if a != b => Some(Box::new(
                Precedence::strict(&name, events[a as usize], events[b as usize])
                    .with_bound(u64::from(k)),
            )),
            Recipe::Union(a, b, c2) if a != b && a != c2 => Some(Box::new(Union::new(
                &name,
                events[a as usize],
                [events[b as usize], events[c2 as usize]],
            ))),
            Recipe::Alt(a, b) if a != b => Some(Box::new(Alternation::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            _ => None, // degenerate draws are skipped
        };
        if let Some(c) = c {
            spec.add_constraint(c);
        }
    }
    spec
}

/// Brute-force oracle: every subset of the constrained events that the
/// specification's own conjunction accepts, sorted like the solver
/// sorts — computed without any engine code.
fn oracle_steps(spec: &Specification, options: &SolverOptions) -> Vec<Step> {
    let events: Vec<EventId> = spec.constrained_events().iter().collect();
    let formula = spec.conjunction();
    assert!(events.len() < 20, "oracle is exponential");
    let mut out = Vec::new();
    for mask in 0u64..(1u64 << events.len()) {
        let step: Step = events
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &e)| e)
            .collect();
        if (options.include_empty || !step.is_empty()) && formula.eval(&step) {
            out.push(step);
        }
    }
    out.sort();
    out
}

fn solver_variants() -> [SolverOptions; 3] {
    [
        SolverOptions::default(),
        SolverOptions::naive(),
        SolverOptions::default().with_empty(true),
    ]
}

/// In the initial state, the compiled path yields step sets
/// byte-identical to the brute-force oracle, for every solver
/// configuration.
#[test]
fn program_equals_oracle_initially() {
    cases(CASES).run("program_equals_oracle_initially", |rng| {
        let recipes = rng.vec_of(1..6, random_recipe);
        let spec = build(&recipes);
        let cursor = Program::compile(&spec).cursor();
        for options in solver_variants() {
            prop_assert_eq!(
                cursor.acceptable_steps(&options),
                oracle_steps(&spec, &options),
                "options {options:?}, recipes {recipes:?}"
            );
        }
        Ok(())
    });
}

/// The agreement holds along random runs: both sides fire the same
/// (randomly chosen) acceptable step and must keep identical answers —
/// this exercises the incremental slot refresh after `fire`.
#[test]
fn program_equals_oracle_along_runs() {
    cases(CASES).run("program_equals_oracle_along_runs", |rng| {
        let recipes = rng.vec_of(1..5, random_recipe);
        let mut spec = build(&recipes);
        let mut cursor = Program::compile(&spec).cursor();
        let options = SolverOptions::default();
        for _ in 0..8 {
            let fast = cursor.acceptable_steps(&options);
            let slow = oracle_steps(&spec, &options);
            prop_assert_eq!(&fast, &slow, "recipes {recipes:?}");
            if fast.is_empty() {
                break;
            }
            let step = fast[rng.usize_in(0..fast.len())].clone();
            cursor.fire(&step).map_err(|e| e.to_string())?;
            spec.fire(&step).map_err(|e| e.to_string())?;
        }
        Ok(())
    });
}

/// `restore` re-syncs the cached formulas exactly: winding a cursor
/// back to a snapshot yields the answers the oracle computed there —
/// this exercises the memo-hit path exploration depends on.
#[test]
fn program_restore_matches_oracle_snapshots() {
    cases(CASES).run("program_restore_matches_oracle_snapshots", |rng| {
        let recipes = rng.vec_of(1..5, random_recipe);
        let mut spec = build(&recipes);
        let mut cursor = Program::compile(&spec).cursor();
        let options = SolverOptions::default();
        let mut snapshots = vec![(cursor.state_key(), oracle_steps(&spec, &options))];
        for _ in 0..6 {
            let steps = cursor.acceptable_steps(&options);
            if steps.is_empty() {
                break;
            }
            let step = steps[rng.usize_in(0..steps.len())].clone();
            cursor.fire(&step).map_err(|e| e.to_string())?;
            spec.fire(&step).map_err(|e| e.to_string())?;
            snapshots.push((cursor.state_key(), oracle_steps(&spec, &options)));
        }
        // revisit the snapshots in random order
        for _ in 0..snapshots.len() {
            let (key, expected) = &snapshots[rng.usize_in(0..snapshots.len())];
            cursor.restore(key).map_err(|e| e.to_string())?;
            prop_assert_eq!(
                &cursor.acceptable_steps(&options),
                expected,
                "recipes {recipes:?}"
            );
        }
        Ok(())
    });
}

/// A second cursor of the same program — answering purely from the
/// memo the first cursor warmed — matches a fresh compile at every
/// visited state.
#[test]
fn shared_memo_cursor_matches_fresh_compile() {
    cases(CASES).run("shared_memo_cursor_matches_fresh_compile", |rng| {
        let recipes = rng.vec_of(1..5, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        let options = SolverOptions::default();
        // warm the memo along a random run on the first cursor
        let mut warm = program.cursor();
        let mut keys = vec![warm.state_key()];
        for _ in 0..6 {
            let steps = warm.acceptable_steps(&options);
            if steps.is_empty() {
                break;
            }
            let step = steps[rng.usize_in(0..steps.len())].clone();
            warm.fire(&step).map_err(|e| e.to_string())?;
            keys.push(warm.state_key());
        }
        // a second cursor re-visits every state via the shared memo
        let mut second = program.cursor();
        for key in &keys {
            second.restore(key).map_err(|e| e.to_string())?;
            let mut fresh = Program::compile(&spec).cursor();
            fresh.restore(key).map_err(|e| e.to_string())?;
            prop_assert_eq!(
                second.acceptable_steps(&options),
                fresh.acceptable_steps(&options),
                "recipes {recipes:?}"
            );
        }
        Ok(())
    });
}

/// Every step the compiled path enumerates is genuinely accepted by the
/// specification, and `Cursor::accepts` agrees with the enumeration.
#[test]
fn program_steps_are_accepted() {
    cases(CASES).run("program_steps_are_accepted", |rng| {
        let recipes = rng.vec_of(1..6, random_recipe);
        let spec = build(&recipes);
        let cursor = Program::compile(&spec).cursor();
        for step in cursor.acceptable_steps(&SolverOptions::default()) {
            prop_assert!(spec.accepts(&step));
            prop_assert!(cursor.accepts(&step));
        }
        Ok(())
    });
}
