//! Property-based contracts of the `moccml-smc` statistical checker
//! (ISSUE 10):
//!
//! * the fixed-sample **estimate tracks the exact violation
//!   probability** — computed by exhaustive enumeration of the uniform
//!   scheduler's trace distribution — well within the Okamoto/Hoeffding
//!   tolerance;
//! * reports are **byte-identical for `workers` ∈ {1, 2, 8}** given the
//!   same seed, in fixed-sample and sequential (SPRT) mode alike;
//! * the SPRT verdict agrees with the exact probability whenever the
//!   truth sits well outside the indifference region;
//! * every sampled witness **replays step by step through
//!   `Cursor::fire`**, survives minimization, and re-validates through
//!   the shared bounded-temporal monitor;
//! * agreement with the exhaustive checker: a property that holds on
//!   the fully explored space is never "violated" statistically, and a
//!   sampled witness implies an exhaustive violation;
//! * the testkit's `TestRng::fork` — the same SplitMix64 stream split
//!   that seeds trace `i` — is pure (forking never advances the
//!   parent) and yields non-overlapping streams for distinct ids.
//!
//! Runs on the deterministic in-repo `moccml-testkit` harness;
//! failures report a replayable case seed.

use moccml_engine::{ExploreOptions, Program, SolverOptions};
use moccml_kernel::{EventId, Step, StepPred};
use moccml_smc::{check_statistical, okamoto_sample_size, SmcMode, SmcOptions, SmcVerdict};
use moccml_testkit::{cases, prop_assert, prop_assert_eq, TestRng};
use moccml_verify::{check_props, is_witness, Prop, PropStatus, TraceEvaluator, TraceStatus};

mod common;
use common::{build, random_recipe};

const CASES: usize = 24;
const WORKERS: [usize; 3] = [1, 2, 8];
/// Trace truncation length for the exact-enumeration comparisons: deep
/// enough for the bounded props below, shallow enough that the uniform
/// trace tree stays exhaustively enumerable.
const MAX_LEN: usize = 3;

fn random_pred(rng: &mut TestRng) -> StepPred {
    let e = |rng: &mut TestRng| EventId::from_index(rng.usize_in(0..5));
    match rng.u8_in(0..5) {
        0 => StepPred::fired(e(rng)),
        1 => StepPred::excludes(e(rng), e(rng)),
        2 => StepPred::implies(e(rng), e(rng)),
        3 => StepPred::negate(StepPred::fired(e(rng))),
        _ => StepPred::or(StepPred::fired(e(rng)), StepPred::fired(e(rng))),
    }
}

/// Random properties weighted toward the bounded binary forms the
/// statistical checker was built around.
fn random_prop(rng: &mut TestRng) -> Prop {
    match rng.u8_in(0..6) {
        0 => Prop::Never(random_pred(rng)),
        1 => Prop::EventuallyWithin(random_pred(rng), rng.usize_in(1..4)),
        2 | 3 => Prop::UntilWithin(random_pred(rng), random_pred(rng), rng.usize_in(1..4)),
        4 => Prop::ReleaseWithin(random_pred(rng), random_pred(rng), rng.usize_in(1..4)),
        _ => Prop::DeadlockFree,
    }
}

/// The exact violation probability of `prop` under the sampler's own
/// trace distribution: a uniform choice among the acceptable steps at
/// every state, truncation at `max_len` counted as non-violating,
/// deadlock concluded — the decision order mirrors the sampler's
/// `run_trace` exactly, so this is the ground truth the Monte-Carlo
/// estimate must approach.
fn exact_violation_probability(program: &Program, prop: &Prop, max_len: usize) -> f64 {
    let solver = SolverOptions::default();
    let mut prefix = Vec::new();
    violation_mass(program, prop, &solver, &mut prefix, max_len)
}

fn violation_mass(
    program: &Program,
    prop: &Prop,
    solver: &SolverOptions,
    prefix: &mut Vec<Step>,
    max_len: usize,
) -> f64 {
    let mut eval = TraceEvaluator::new(prop);
    for step in prefix.iter() {
        eval.observe(step);
    }
    match eval.status() {
        TraceStatus::Violated => return 1.0,
        TraceStatus::Satisfied => return 0.0,
        TraceStatus::Undecided => {}
    }
    if prefix.len() >= max_len {
        return if eval.conclude(false) { 1.0 } else { 0.0 };
    }
    let mut cursor = program.cursor();
    for step in prefix.iter() {
        cursor.fire(step).expect("enumerated prefixes replay");
    }
    let candidates = cursor.acceptable_steps(solver);
    if candidates.is_empty() {
        return if eval.conclude(true) { 1.0 } else { 0.0 };
    }
    let weight = 1.0 / candidates.len() as f64;
    let mut total = 0.0;
    for step in candidates {
        prefix.push(step);
        total += weight * violation_mass(program, prop, solver, prefix, max_len);
        prefix.pop();
    }
    total
}

/// Fixed-sample estimates land within a generous multiple of ε of the
/// enumerated ground truth (Hoeffding puts the failure probability of
/// the 2.5ε margin at ~2e-10 per case), and the sample size is exactly
/// the Okamoto bound.
#[test]
fn estimate_tracks_the_exact_violation_probability() {
    cases(CASES).run("estimate_tracks_the_exact_violation_probability", |rng| {
        let recipes = rng.vec_of(1..4, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        let prop = random_prop(rng);
        let truth = exact_violation_probability(&program, &prop, MAX_LEN);
        let epsilon = 0.1;
        let options = SmcOptions::default()
            .with_epsilon(epsilon)
            .with_delta(0.05)
            .with_max_trace_len(MAX_LEN)
            .with_seed(rng.any_u64());
        let report = check_statistical(&program, &prop, &options);
        prop_assert_eq!(report.verdict, SmcVerdict::Estimated, "fixed-sample mode");
        prop_assert_eq!(
            report.traces,
            okamoto_sample_size(epsilon, 0.05),
            "the full Okamoto budget is drawn"
        );
        prop_assert!(
            (report.estimate - truth).abs() <= 2.5 * epsilon,
            "estimate {} vs exact {} (prop {}, recipes {:?})",
            report.estimate,
            truth,
            prop,
            recipes
        );
        // the Wilson interval centers on an adjusted estimate, so it
        // need not bracket the raw ratio at the extremes — but it must
        // be an ordered sub-interval of [0, 1]
        prop_assert!(
            0.0 <= report.ci_low && report.ci_low <= report.ci_high && report.ci_high <= 1.0,
            "Wilson interval [{}, {}] must be ordered within [0, 1]",
            report.ci_low,
            report.ci_high
        );
        Ok(())
    });
}

/// The acceptance property: the report — verdict, counts, estimate,
/// interval, witness — is identical for every worker count, in both
/// statistical regimes.
#[test]
fn reports_are_identical_across_worker_counts() {
    cases(CASES).run("reports_are_identical_across_worker_counts", |rng| {
        let recipes = rng.vec_of(1..4, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        let prop = random_prop(rng);
        let seed = rng.any_u64();
        let fixed = SmcOptions::default()
            .with_epsilon(0.1)
            .with_max_trace_len(MAX_LEN)
            .with_seed(seed);
        let sprt = fixed.clone().with_prob_threshold(0.5);
        for options in [fixed, sprt] {
            let mut reference = None;
            for &workers in &WORKERS {
                let report =
                    check_statistical(&program, &prop, &options.clone().with_workers(workers));
                match &reference {
                    None => reference = Some(report),
                    Some(r) => prop_assert_eq!(
                        r,
                        &report,
                        "workers={}, mode {:?}, prop {}, recipes {:?}",
                        workers,
                        report.mode,
                        prop,
                        recipes
                    ),
                }
            }
        }
        Ok(())
    });
}

/// SPRT: when the exact probability sits well outside the indifference
/// region, the sequential verdict must point the right way; inside it,
/// any verdict is admissible but the mode must still be sequential.
#[test]
fn sprt_agrees_with_the_exact_probability_outside_the_indifference_region() {
    cases(CASES).run(
        "sprt_agrees_with_the_exact_probability_outside_the_indifference_region",
        |rng| {
            let recipes = rng.vec_of(1..4, random_recipe);
            let spec = build(&recipes);
            let program = Program::compile(&spec);
            let prop = random_prop(rng);
            let truth = exact_violation_probability(&program, &prop, MAX_LEN);
            let threshold = *rng.choice(&[0.3, 0.5, 0.7]);
            let epsilon = 0.1;
            // delta 1e-4 makes a wrong-side crossing (bounded by delta)
            // negligible for the deterministic seed matrix
            let options = SmcOptions::default()
                .with_epsilon(epsilon)
                .with_delta(1e-4)
                .with_prob_threshold(threshold)
                .with_max_trace_len(MAX_LEN)
                .with_seed(rng.any_u64())
                .with_workers(2);
            let report = check_statistical(&program, &prop, &options);
            prop_assert_eq!(report.mode, SmcMode::Sequential { threshold }, "mode");
            let ctx = format!("truth {truth}, threshold {threshold}, prop {prop}");
            if truth >= threshold + 3.0 * epsilon {
                prop_assert_eq!(report.verdict, SmcVerdict::AboveThreshold, "{}", ctx);
            } else if truth <= threshold - 3.0 * epsilon {
                prop_assert_eq!(report.verdict, SmcVerdict::BelowThreshold, "{}", ctx);
            } else {
                prop_assert!(
                    matches!(
                        report.verdict,
                        SmcVerdict::AboveThreshold
                            | SmcVerdict::BelowThreshold
                            | SmcVerdict::Undecided
                    ),
                    "near the threshold any decision is admissible: {ctx}"
                );
            }
            Ok(())
        },
    );
}

/// Witness contract: a report with violations names the first violating
/// trace and carries a minimized schedule that replays through
/// `Cursor::fire` and re-validates through the shared monitor; and
/// statistical and exhaustive checking never contradict each other.
#[test]
fn witnesses_replay_and_agree_with_the_exhaustive_checker() {
    cases(CASES).run(
        "witnesses_replay_and_agree_with_the_exhaustive_checker",
        |rng| {
            let recipes = rng.vec_of(1..4, random_recipe);
            let spec = build(&recipes);
            let program = Program::compile(&spec);
            let prop = random_prop(rng);
            let options = SmcOptions::default()
                .with_epsilon(0.1)
                .with_max_trace_len(MAX_LEN)
                .with_seed(rng.any_u64())
                .with_workers(2);
            let report = check_statistical(&program, &prop, &options);
            let exhaustive = check_props(
                &program,
                std::slice::from_ref(&prop),
                &ExploreOptions::default().with_max_states(5_000),
            );
            let ctx = format!("prop {prop}, recipes {recipes:?}");
            if let Some(ce) = &report.witness {
                prop_assert!(report.witness_trace.is_some(), "witness names its trace");
                prop_assert!(report.violations > 0, "a witness implies violations");
                let mut cursor = program.cursor();
                for (i, step) in ce.schedule.iter().enumerate() {
                    prop_assert!(!step.is_empty(), "minimized steps are non-empty");
                    prop_assert!(cursor.accepts(step), "step {i} rejected: {ctx}");
                    cursor.fire(step).map_err(|e| format!("step {i}: {e}"))?;
                }
                prop_assert!(
                    is_witness(&program, &prop, &ce.schedule),
                    "minimized witness re-validates: {ctx}"
                );
                prop_assert!(
                    !matches!(exhaustive.statuses[0], PropStatus::Holds),
                    "a sampled witness contradicts an exhaustive Holds: {ctx}"
                );
            } else {
                prop_assert!(report.witness_trace.is_none(), "no witness, no trace index");
            }
            if matches!(exhaustive.statuses[0], PropStatus::Holds) {
                prop_assert_eq!(
                    report.violations,
                    0,
                    "no trace can violate a property that holds exhaustively: {}",
                    ctx
                );
            }
            Ok(())
        },
    );
}

/// The stream split that seeds trace `i`: forking is a pure read of
/// the parent (the same id always yields the same stream, other forks
/// and parent draws notwithstanding), and distinct ids yield streams
/// with no common prefix values.
#[test]
fn forked_streams_are_pure_and_non_overlapping() {
    cases(CASES).run("forked_streams_are_pure_and_non_overlapping", |rng| {
        let seed = rng.any_u64();
        let parent = TestRng::new(seed);
        // purity: fork(i) is a function of the parent state and i only
        let before: Vec<u64> = (0..8).map(|i| parent.fork(i).next_u64()).collect();
        let _scattered = parent.fork(1_000_003);
        let after: Vec<u64> = (0..8).map(|i| parent.fork(i).next_u64()).collect();
        prop_assert_eq!(&before, &after, "forking must not advance the parent");
        // non-overlap: 32 streams x 8 draws, all 256 values distinct
        let mut draws: Vec<u64> = (0..32)
            .flat_map(|i| {
                let mut child = parent.fork(i);
                (0..8).map(|_| child.next_u64()).collect::<Vec<u64>>()
            })
            .collect();
        let total = draws.len();
        draws.sort_unstable();
        draws.dedup();
        prop_assert_eq!(draws.len(), total, "stream collision under seed {}", seed);
        Ok(())
    });
}
