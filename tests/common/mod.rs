//! Shared test infrastructure: the random CCSL specification generator
//! used by the explorer-determinism, verify and analysis property
//! suites (`tests/explore_parallel.rs`, `tests/verify_properties.rs`,
//! `tests/analysis_witness.rs`). One copy, so a change to the
//! constraint pool or the generator weights reaches every suite.
//!
//! Not a test target itself — Cargo treats `tests/common/mod.rs` as a
//! plain module each suite pulls in with `mod common;`.
#![allow(dead_code)] // each suite uses a different subset

use moccml_ccsl::{Alternation, Coincidence, Exclusion, Precedence, SubClock, Union};
use moccml_kernel::{Constraint, EventId, Specification, Universe};
use moccml_testkit::TestRng;

/// Number of events every random specification ranges over.
pub const EVENTS: usize = 5;

/// A recipe for one random constraint over the [`EVENTS`]-event
/// universe. Bounded precedences and alternations are weighted up:
/// they are the stateful constraints that grow multi-level BFS
/// frontiers.
#[derive(Debug, Clone)]
pub enum Recipe {
    Sub(u8, u8),
    Excl(u8, u8, u8),
    Coinc(u8, u8),
    Prec(u8, u8, u8),
    Union(u8, u8, u8),
    Alt(u8, u8),
}

/// Draws one random recipe.
pub fn random_recipe(rng: &mut TestRng) -> Recipe {
    let e = |rng: &mut TestRng| rng.u8_in(0..EVENTS as u8);
    match rng.u8_in(0..8) {
        0 => Recipe::Sub(e(rng), e(rng)),
        1 => Recipe::Excl(e(rng), e(rng), e(rng)),
        2 => Recipe::Coinc(e(rng), e(rng)),
        3 | 4 => Recipe::Prec(e(rng), e(rng), rng.u8_in(1..EVENTS as u8)),
        5 => Recipe::Union(e(rng), e(rng), e(rng)),
        _ => Recipe::Alt(e(rng), e(rng)),
    }
}

/// Materialises recipes into a specification over events `e0`…`e4`
/// (all [`EVENTS`] of them registered, constrained or not).
/// Degenerate draws (duplicate operands) are skipped.
pub fn build(recipes: &[Recipe]) -> Specification {
    let mut u = Universe::new();
    let events: Vec<EventId> = (0..EVENTS).map(|i| u.event(&format!("e{i}"))).collect();
    let mut spec = Specification::new("random", u);
    for (i, r) in recipes.iter().enumerate() {
        let name = format!("c{i}");
        let c: Option<Box<dyn Constraint>> = match *r {
            Recipe::Sub(a, b) if a != b => Some(Box::new(SubClock::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            Recipe::Excl(a, b, c2) if a != b && b != c2 && a != c2 => {
                Some(Box::new(Exclusion::new(
                    &name,
                    [events[a as usize], events[b as usize], events[c2 as usize]],
                )))
            }
            Recipe::Coinc(a, b) if a != b => Some(Box::new(Coincidence::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            Recipe::Prec(a, b, k) if a != b => Some(Box::new(
                Precedence::strict(&name, events[a as usize], events[b as usize])
                    .with_bound(u64::from(k)),
            )),
            Recipe::Union(a, b, c2) if a != b && a != c2 => Some(Box::new(Union::new(
                &name,
                events[a as usize],
                [events[b as usize], events[c2 as usize]],
            ))),
            Recipe::Alt(a, b) if a != b => Some(Box::new(Alternation::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            _ => None, // degenerate draws are skipped
        };
        if let Some(c) = c {
            spec.add_constraint(c);
        }
    }
    spec
}
