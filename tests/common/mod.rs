//! Shared test infrastructure: the random CCSL specification generator
//! used by the explorer-determinism, verify and analysis property
//! suites (`tests/explore_parallel.rs`, `tests/verify_properties.rs`,
//! `tests/analysis_witness.rs`), and the random `.mcc` AST generators
//! used by the frontend and analyzer suites (`tests/lang_roundtrip.rs`,
//! `tests/analyze_properties.rs`, `tests/slice_properties.rs`). One
//! copy, so a change to the constraint pool or the generator weights
//! reaches every suite.
//!
//! Not a test target itself — Cargo treats `tests/common/mod.rs` as a
//! plain module each suite pulls in with `mod common;`.
#![allow(dead_code)] // each suite uses a different subset

use moccml::lang::ast::{Arg, ConstraintDecl, Item, LibraryBlock, Name, PredAst, PropAst, SpecAst};
use moccml_ccsl::{Alternation, Coincidence, Exclusion, Precedence, SubClock, Union};
use moccml_kernel::{Constraint, EventId, Specification, Universe};
use moccml_testkit::TestRng;

/// Number of events every random specification ranges over.
pub const EVENTS: usize = 5;

/// A recipe for one random constraint over the [`EVENTS`]-event
/// universe. Bounded precedences and alternations are weighted up:
/// they are the stateful constraints that grow multi-level BFS
/// frontiers.
#[derive(Debug, Clone)]
pub enum Recipe {
    Sub(u8, u8),
    Excl(u8, u8, u8),
    Coinc(u8, u8),
    Prec(u8, u8, u8),
    Union(u8, u8, u8),
    Alt(u8, u8),
}

/// Draws one random recipe.
pub fn random_recipe(rng: &mut TestRng) -> Recipe {
    let e = |rng: &mut TestRng| rng.u8_in(0..EVENTS as u8);
    match rng.u8_in(0..8) {
        0 => Recipe::Sub(e(rng), e(rng)),
        1 => Recipe::Excl(e(rng), e(rng), e(rng)),
        2 => Recipe::Coinc(e(rng), e(rng)),
        3 | 4 => Recipe::Prec(e(rng), e(rng), rng.u8_in(1..EVENTS as u8)),
        5 => Recipe::Union(e(rng), e(rng), e(rng)),
        _ => Recipe::Alt(e(rng), e(rng)),
    }
}

/// Materialises recipes into a specification over events `e0`…`e4`
/// (all [`EVENTS`] of them registered, constrained or not).
/// Degenerate draws (duplicate operands) are skipped.
pub fn build(recipes: &[Recipe]) -> Specification {
    let mut u = Universe::new();
    let events: Vec<EventId> = (0..EVENTS).map(|i| u.event(&format!("e{i}"))).collect();
    let mut spec = Specification::new("random", u);
    for (i, r) in recipes.iter().enumerate() {
        let name = format!("c{i}");
        let c: Option<Box<dyn Constraint>> = match *r {
            Recipe::Sub(a, b) if a != b => Some(Box::new(SubClock::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            Recipe::Excl(a, b, c2) if a != b && b != c2 && a != c2 => {
                Some(Box::new(Exclusion::new(
                    &name,
                    [events[a as usize], events[b as usize], events[c2 as usize]],
                )))
            }
            Recipe::Coinc(a, b) if a != b => Some(Box::new(Coincidence::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            Recipe::Prec(a, b, k) if a != b => Some(Box::new(
                Precedence::strict(&name, events[a as usize], events[b as usize])
                    .with_bound(u64::from(k)),
            )),
            Recipe::Union(a, b, c2) if a != b && a != c2 => Some(Box::new(Union::new(
                &name,
                events[a as usize],
                [events[b as usize], events[c2 as usize]],
            ))),
            Recipe::Alt(a, b) if a != b => Some(Box::new(Alternation::new(
                &name,
                events[a as usize],
                events[b as usize],
            ))),
            _ => None, // degenerate draws are skipped
        };
        if let Some(c) = c {
            spec.add_constraint(c);
        }
    }
    spec
}

// ---------------------------------------------------------------------
// `.mcc` AST generators (the lang / analyze / slice property suites)
// ---------------------------------------------------------------------

/// An AST [`Name`] with a dummy 1:1 span (spans don't participate in
/// AST equality).
pub fn name(text: &str) -> Name {
    Name::new(text, 1, 1)
}

/// A random event name from the default `e0`…`e4` universe.
pub fn event_name(rng: &mut TestRng) -> Name {
    name(&format!("e{}", rng.usize_in(0..EVENTS)))
}

fn pick_arg(rng: &mut TestRng, events: &[&str]) -> Arg {
    Arg::Event(name(events[rng.usize_in(0..events.len())]))
}

/// One random, always-compilable built-in constraint declaration named
/// `cname`, drawing its event arguments from `events`.
pub fn random_builtin_over(rng: &mut TestRng, cname: &str, events: &[&str]) -> ConstraintDecl {
    let (ctor, args): (&str, Vec<Arg>) = match rng.u8_in(0..12) {
        0 => (
            "subclock",
            vec![pick_arg(rng, events), pick_arg(rng, events)],
        ),
        1 => (
            "exclusion",
            (0..rng.usize_in(2..4))
                .map(|_| pick_arg(rng, events))
                .collect(),
        ),
        2 => (
            "coincidence",
            vec![pick_arg(rng, events), pick_arg(rng, events)],
        ),
        3 => (
            "precedes",
            vec![
                pick_arg(rng, events),
                pick_arg(rng, events),
                Arg::Int(rng.usize_in(1..4) as i64, 1, 1),
            ],
        ),
        4 => (
            "weak_precedes",
            vec![pick_arg(rng, events), pick_arg(rng, events)],
        ),
        5 => (
            "alternates",
            vec![pick_arg(rng, events), pick_arg(rng, events)],
        ),
        6 => (
            "union",
            (0..rng.usize_in(2..4))
                .map(|_| pick_arg(rng, events))
                .collect(),
        ),
        7 => (
            "intersection",
            (0..rng.usize_in(2..4))
                .map(|_| pick_arg(rng, events))
                .collect(),
        ),
        8 => (
            "delay",
            vec![
                pick_arg(rng, events),
                pick_arg(rng, events),
                Arg::Int(rng.usize_in(0..3) as i64, 1, 1),
            ],
        ),
        9 => (
            "periodic",
            vec![
                pick_arg(rng, events),
                pick_arg(rng, events),
                Arg::Int(rng.usize_in(0..3) as i64, 1, 1),
                Arg::Int(rng.usize_in(1..4) as i64, 1, 1),
            ],
        ),
        10 => (
            "sampled",
            vec![
                pick_arg(rng, events),
                pick_arg(rng, events),
                pick_arg(rng, events),
            ],
        ),
        _ => (
            "filtered",
            vec![
                pick_arg(rng, events),
                pick_arg(rng, events),
                Arg::Bits(
                    (0..rng.usize_in(0..3))
                        .map(|_| rng.u8_in(0..2) == 1)
                        .collect(),
                    1,
                    1,
                ),
                Arg::Bits(
                    (0..rng.usize_in(1..4))
                        .map(|_| rng.u8_in(0..2) == 1)
                        .collect(),
                    1,
                    1,
                ),
            ],
        ),
    };
    ConstraintDecl {
        name: name(cname),
        ctor: name(ctor),
        args,
    }
}

/// One random built-in constraint over the default `e0`…`e4` universe.
pub fn random_builtin(rng: &mut TestRng, index: usize) -> ConstraintDecl {
    random_builtin_over(rng, &format!("c{index}"), &["e0", "e1", "e2", "e3", "e4"])
}

pub fn random_pred_ast(rng: &mut TestRng, depth: usize) -> PredAst {
    if depth == 0 {
        return PredAst::Fired(event_name(rng));
    }
    match rng.u8_in(0..6) {
        0 => PredAst::Fired(event_name(rng)),
        1 => PredAst::Excludes(event_name(rng), event_name(rng)),
        2 => PredAst::Implies(event_name(rng), event_name(rng)),
        3 => PredAst::And(
            Box::new(random_pred_ast(rng, depth - 1)),
            Box::new(random_pred_ast(rng, depth - 1)),
        ),
        4 => PredAst::Or(
            Box::new(random_pred_ast(rng, depth - 1)),
            Box::new(random_pred_ast(rng, depth - 1)),
        ),
        _ => PredAst::Not(Box::new(random_pred_ast(rng, depth - 1))),
    }
}

pub fn random_prop_ast(rng: &mut TestRng) -> PropAst {
    match rng.u8_in(0..6) {
        0 => PropAst::Always(random_pred_ast(rng, 2)),
        1 => PropAst::Never(random_pred_ast(rng, 2)),
        2 => PropAst::EventuallyWithin(random_pred_ast(rng, 2), rng.usize_in(0..6)),
        3 => PropAst::UntilWithin(
            random_pred_ast(rng, 2),
            random_pred_ast(rng, 2),
            rng.usize_in(0..6),
        ),
        4 => PropAst::ReleaseWithin(
            random_pred_ast(rng, 2),
            random_pred_ast(rng, 2),
            rng.usize_in(0..6),
        ),
        _ => PropAst::DeadlockFree,
    }
}

/// The Fig. 3 place library as an embeddable block, plus a couple of
/// random instantiations of it.
pub fn random_library_items(rng: &mut TestRng, first_index: usize) -> Vec<Item> {
    let library = moccml::automata::parse_library(
        "library SDF {\n\
           constraint Place(write: event, read: event,\n\
                            pushRate: int, popRate: int,\n\
                            itsDelay: int, itsCapacity: int)\n\
           automaton PlaceDef implements Place {\n\
             var size: int = itsDelay;\n\
             initial state S0;\n\
             final state S0;\n\
             from S0 to S0 when {write} forbid {read}\n\
               guard [size <= itsCapacity - pushRate] do size += pushRate;\n\
             from S0 to S0 when {read} forbid {write}\n\
               guard [size >= popRate] do size -= popRate;\n\
           }\n\
         }",
    )
    .expect("embedded template parses");
    let mut items = vec![Item::Library(LibraryBlock {
        library,
        line: 1,
        column: 1,
    })];
    for i in 0..rng.usize_in(1..3) {
        items.push(Item::Constraint(ConstraintDecl {
            name: name(&format!("place{}_{}", first_index, i)),
            ctor: name("Place"),
            args: vec![
                Arg::Event(event_name(rng)),
                Arg::Event(event_name(rng)),
                Arg::Int(1, 1, 1),
                Arg::Int(1, 1, 1),
                Arg::Int(rng.usize_in(0..3) as i64, 1, 1),
                Arg::Int(rng.usize_in(1..4) as i64, 1, 1),
            ],
        }));
    }
    items
}

/// A random, always-compilable specification AST.
pub fn random_spec(rng: &mut TestRng) -> SpecAst {
    let mut items = vec![Item::Events(
        (0..EVENTS).map(|i| name(&format!("e{i}"))).collect(),
    )];
    let constraint_count = rng.usize_in(0..5);
    for i in 0..constraint_count {
        items.push(Item::Constraint(random_builtin(rng, i)));
    }
    if rng.u8_in(0..3) == 0 {
        items.extend(random_library_items(rng, constraint_count));
    }
    for _ in 0..rng.usize_in(0..4) {
        items.push(Item::Assert(random_prop_ast(rng)));
    }
    SpecAst {
        name: "random".to_owned(),
        items,
    }
}

/// A library block whose automaton has an unreachable state (`Lost`) —
/// the A001 seed of [`random_spec_with_defects`].
fn unreachable_state_items() -> Vec<Item> {
    let library = moccml::automata::parse_library(
        "library DefectLib {\n\
           constraint Spin(t: event)\n\
           automaton SpinDef implements Spin {\n\
             initial state S0;\n\
             final state S0;\n\
             state Lost;\n\
             from S0 to S0 when {t};\n\
             from Lost to S0 when {t};\n\
           }\n\
         }",
    )
    .expect("defect template parses");
    vec![
        Item::Library(LibraryBlock {
            library,
            line: 1,
            column: 1,
        }),
        Item::Constraint(ConstraintDecl {
            name: name("spin_defect"),
            ctor: name("Spin"),
            args: vec![Arg::Event(name("e0"))],
        }),
    ]
}

/// A random specification seeded with a random non-empty set of known
/// defects, returning the lint codes the seeds guarantee. The contract
/// for property tests is **reported ⊇ expected**: the base spec is
/// random, so the analyzer may flag incidental findings too, never
/// fewer.
///
/// Seeds on offer: an orphan event (A010), a duplicated constraint
/// (A011), an unreachable automaton state (A001), an `eventually<=0`
/// assert (A021) and an assert over an unconstrained event (A020).
pub fn random_spec_with_defects(rng: &mut TestRng) -> (SpecAst, Vec<&'static str>) {
    let mut event_names: Vec<Name> = (0..EVENTS).map(|i| name(&format!("e{i}"))).collect();
    let mut items: Vec<Item> = Vec::new();
    let mut tail_items: Vec<Item> = Vec::new();
    let mut expected = Vec::new();

    // a small constrained core so the base spec is never trivial
    for i in 0..rng.usize_in(1..4) {
        items.push(Item::Constraint(random_builtin(rng, i)));
    }

    if rng.u8_in(0..2) == 1 {
        // A010: a declared event nothing constrains or asserts about
        event_names.push(name("orphan_0"));
        expected.push("A010");
    }
    if rng.u8_in(0..2) == 1 {
        // A011: the same constructor and arguments declared twice —
        // identical footprint, state key and lowered formula
        let dup = random_builtin_over(rng, "dup_a", &["e0", "e1", "e2", "e3", "e4"]);
        let mut twin = dup.clone();
        twin.name = name("dup_b");
        items.push(Item::Constraint(dup));
        items.push(Item::Constraint(twin));
        expected.push("A011");
    }
    if rng.u8_in(0..2) == 1 {
        // A001: an automaton state no transition path reaches
        items.extend(unreachable_state_items());
        expected.push("A001");
    }
    if rng.u8_in(0..2) == 1 {
        // A021: unsatisfiable-by-construction bound
        tail_items.push(Item::Assert(PropAst::EventuallyWithin(
            random_pred_ast(rng, 1),
            0,
        )));
        expected.push("A021");
    }
    if expected.is_empty() || rng.u8_in(0..2) == 1 {
        // A020: an assert over an event no constraint touches
        event_names.push(name("ghost_0"));
        tail_items.push(Item::Assert(PropAst::Never(PredAst::Fired(name(
            "ghost_0",
        )))));
        expected.push("A020");
    }

    let mut all = vec![Item::Events(event_names)];
    all.append(&mut items);
    all.append(&mut tail_items);
    (
        SpecAst {
            name: "seeded".to_owned(),
            items: all,
        },
        expected,
    )
}
