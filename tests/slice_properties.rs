//! Property-based contracts of cone-of-influence slicing (ISSUE 6):
//! for random two-group (decoupled) specifications and random local
//! properties, `verify::check_with` with `CheckOptions::with_slice`
//! must be **verdict- and witness-identical** to the unsliced check at
//! every worker count — while never exploring more states, and
//! strictly fewer on the designed decoupled workload.
//!
//! The soundness argument (see `sliceable_events`): eligible
//! properties are stutter-invariant outside their cone, so dropping
//! constraints whose footprints never overlap the cone's closure
//! preserves exactly the projected behaviours the property can see.
//!
//! Runs on the deterministic in-repo `moccml-testkit` harness;
//! failures report a replayable case seed.

mod common;

use common::{name, random_builtin_over};
use moccml::engine::ExploreOptions;
use moccml::kernel::{EventId, StepPred};
use moccml::lang::ast::{ConstraintDecl, Item, SpecAst};
use moccml::lang::{compile, Compiled};
use moccml::verify::{check_with, is_witness, sliceable_events, CheckOptions, Prop, PropStatus};
use moccml_testkit::{cases, prop_assert, prop_assert_eq, TestRng};

const CASES: usize = 40;
const WORKERS: [usize; 3] = [1, 2, 8];
const GROUP_A: [&str; 3] = ["a0", "a1", "a2"];
const GROUP_B: [&str; 3] = ["b0", "b1", "b2"];

/// A bounded random builtin: `weak_precedes` is the one constructor
/// with an unbounded counter (its solo space is infinite), so it is
/// rerolled away — the verdict comparison needs fully explored spaces.
fn bounded_builtin(rng: &mut TestRng, cname: &str, events: &[&str]) -> ConstraintDecl {
    loop {
        let decl = random_builtin_over(rng, cname, events);
        if decl.ctor.text != "weak_precedes" {
            return decl;
        }
    }
}

/// A random spec whose constraints split into two groups over disjoint
/// event sets — the shape slicing exists for.
fn decoupled_spec(rng: &mut TestRng) -> SpecAst {
    let mut items = vec![Item::Events(
        GROUP_A
            .iter()
            .chain(GROUP_B.iter())
            .map(|e| name(e))
            .collect(),
    )];
    for i in 0..rng.usize_in(1..3) {
        items.push(Item::Constraint(bounded_builtin(
            rng,
            &format!("ga{i}"),
            &GROUP_A,
        )));
    }
    for i in 0..rng.usize_in(1..3) {
        items.push(Item::Constraint(bounded_builtin(
            rng,
            &format!("gb{i}"),
            &GROUP_B,
        )));
    }
    SpecAst {
        name: "decoupled".to_owned(),
        items,
    }
}

/// A random predicate over group-A events only.
fn local_pred(rng: &mut TestRng, compiled: &Compiled, depth: usize) -> StepPred {
    let e = |rng: &mut TestRng| -> EventId {
        compiled
            .universe()
            .lookup(GROUP_A[rng.usize_in(0..GROUP_A.len())])
            .expect("group-A events are declared")
    };
    if depth == 0 {
        return StepPred::fired(e(rng));
    }
    match rng.u8_in(0..5) {
        0 => StepPred::fired(e(rng)),
        1 => StepPred::excludes(e(rng), e(rng)),
        2 => StepPred::and(
            local_pred(rng, compiled, depth - 1),
            local_pred(rng, compiled, depth - 1),
        ),
        3 => StepPred::or(
            local_pred(rng, compiled, depth - 1),
            local_pred(rng, compiled, depth - 1),
        ),
        _ => StepPred::negate(local_pred(rng, compiled, depth - 1)),
    }
}

/// Wraps `pred` in whichever polarity makes the property sliceable:
/// `Never` when the empty step refutes it, `Always` when it satisfies
/// it (exactly the `sliceable_events` eligibility rule).
fn local_prop(pred: StepPred) -> Prop {
    if pred.eval(&moccml::kernel::Step::new()) {
        Prop::Always(pred)
    } else {
        Prop::Never(pred)
    }
}

#[test]
fn sliced_checks_preserve_verdicts_and_witnesses_at_every_worker_count() {
    cases(CASES).run(
        "sliced_checks_preserve_verdicts_and_witnesses_at_every_worker_count",
        |rng| {
            let ast = decoupled_spec(rng);
            let compiled = compile(&ast).map_err(|e| format!("compile fails: {e}"))?;
            let program = &compiled.program;
            let bound = ExploreOptions::default().with_max_states(20_000);
            if program.explore(&bound).truncated() {
                return Ok(()); // truncated spaces can't compare verdicts
            }
            let prop = local_prop(local_pred(rng, &compiled, 2));
            prop_assert!(
                sliceable_events(&prop).is_some(),
                "local_prop must construct a sliceable property: {}",
                prop
            );

            let mut sliced_baseline: Option<(PropStatus, usize)> = None;
            for workers in WORKERS {
                let explore = bound.clone().with_workers(workers);
                let full = check_with(
                    program,
                    &prop,
                    &CheckOptions::new().with_explore(explore.clone()),
                );
                let sliced = check_with(
                    program,
                    &prop,
                    &CheckOptions::new().with_explore(explore).with_slice(true),
                );
                prop_assert!(
                    sliced.states_visited <= full.states_visited,
                    "slicing explored more states ({} > {}) for {}",
                    sliced.states_visited,
                    full.states_visited,
                    prop
                );
                match (&full.statuses[0], &sliced.statuses[0]) {
                    (PropStatus::Holds, PropStatus::Holds) => {}
                    (PropStatus::Violated(fce), PropStatus::Violated(sce)) => {
                        prop_assert_eq!(
                            fce.schedule.len(),
                            sce.schedule.len(),
                            "witness lengths differ for {} (workers {})",
                            prop,
                            workers
                        );
                        prop_assert!(
                            sce.replays_on(program),
                            "sliced witness does not replay on the full program"
                        );
                        prop_assert!(
                            is_witness(program, &prop, &sce.schedule),
                            "sliced witness is not a witness on the full program"
                        );
                    }
                    (f, s) => {
                        return Err(format!(
                            "verdicts diverge for {prop} (workers {workers}): full {f:?} \
                             vs sliced {s:?}"
                        ))
                    }
                }
                // the sliced report itself is worker-count invariant
                let summary = (sliced.statuses[0].clone(), sliced.states_visited);
                match &sliced_baseline {
                    None => sliced_baseline = Some(summary),
                    Some(baseline) => prop_assert_eq!(
                        baseline,
                        &summary,
                        "sliced report differs between worker counts"
                    ),
                }
            }
            Ok(())
        },
    );
}

#[test]
fn slicing_is_strict_on_the_designed_decoupled_workload() {
    // two independent alternation pairs: a group-A-local property must
    // not pay for group B's state-space
    let compiled = moccml::lang::compile_str(
        "spec strict {\n\
           events a0, a1, b0, b1;\n\
           constraint ga = alternates(a0, a1);\n\
           constraint gb = alternates(b0, b1);\n\
         }",
    )
    .expect("compiles");
    let program = &compiled.program;
    let a0 = compiled.universe().lookup("a0").expect("declared");
    let a1 = compiled.universe().lookup("a1").expect("declared");
    let prop = Prop::Never(StepPred::and(StepPred::fired(a0), StepPred::fired(a1)));
    for workers in WORKERS {
        let explore = ExploreOptions::default().with_workers(workers);
        let full = check_with(
            program,
            &prop,
            &CheckOptions::new().with_explore(explore.clone()),
        );
        let sliced = check_with(
            program,
            &prop,
            &CheckOptions::new().with_explore(explore).with_slice(true),
        );
        assert_eq!(full.statuses[0], PropStatus::Holds);
        assert_eq!(sliced.statuses[0], PropStatus::Holds);
        assert!(
            sliced.states_visited < full.states_visited,
            "workers {workers}: {} !< {}",
            sliced.states_visited,
            full.states_visited
        );
    }
}
