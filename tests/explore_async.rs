//! Property-based determinism of the *asynchronous* work-stealing
//! explorer (ISSUE 8): with speculative expansion and canonical
//! replay, `explore` must remain a pure function of the specification
//! — not of the worker count, the steal schedule, or the wall clock.
//!
//! Pinned here, for workers ∈ {1, 2, 8} on random CCSL specifications:
//!
//! * **mid-run `VisitControl::Stop`** — stopping at a random level
//!   boundary or a random mid-level progress checkpoint yields a
//!   byte-identical truncated `StateSpace` *and* an identical visitor
//!   callback sequence for every worker count;
//! * **combined truncation** — `max_states` and `max_depth` applied
//!   together (the two bounds interact: whichever bites first must
//!   bite identically);
//! * **verify counterexamples** — `verify::check_props` returns
//!   byte-identical reports (statuses, `Counterexample` schedules,
//!   visited counts) for every worker count, *including truncated
//!   runs* where which violations are even reachable depends on the
//!   exact absorption order.
//!
//! Complements `tests/explore_parallel.rs` (full/`max_states`/
//! `max_depth` space identity), which predates the async frontier and
//! keeps guarding the same surface.
//!
//! Runs on the deterministic in-repo `moccml-testkit` harness;
//! failures report a replayable case seed.

use moccml_engine::{ExploreOptions, ExploreVisitor, Program, StateSpace, VisitControl};
use moccml_kernel::Step;
use moccml_testkit::{cases, prop_assert, prop_assert_eq, TestRng};
use moccml_verify::{check_props, Prop};
use std::sync::Arc;

mod common;
use common::{build, random_recipe};

const CASES: usize = 56;
const WORKERS: [usize; 3] = [1, 2, 8];

/// One visitor callback, recorded verbatim — the cross-worker identity
/// surface is the *entire* event sequence, not just the final space.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Event {
    Transition(usize, Step, usize, usize),
    Deadlock(usize, usize),
    Dropped(usize),
    LevelEnd(usize, usize),
    Progress(usize, usize, usize),
}

/// Records every callback and stops — deterministically — after a
/// fixed number of level boundaries and/or progress checkpoints.
struct StoppingRecorder {
    events: Vec<Event>,
    levels_left: Option<usize>,
    checkpoints_left: Option<usize>,
}

impl StoppingRecorder {
    fn new(levels_left: Option<usize>, checkpoints_left: Option<usize>) -> Self {
        StoppingRecorder {
            events: Vec::new(),
            levels_left,
            checkpoints_left,
        }
    }
}

impl ExploreVisitor for StoppingRecorder {
    fn on_transition(&mut self, source: usize, step: &Step, target: usize, depth: usize) {
        self.events
            .push(Event::Transition(source, step.clone(), target, depth));
    }
    fn on_deadlock(&mut self, state: usize, depth: usize) {
        self.events.push(Event::Deadlock(state, depth));
    }
    fn on_states_dropped(&mut self, depth: usize) {
        self.events.push(Event::Dropped(depth));
    }
    fn on_level_end(&mut self, depth: usize, state_count: usize) -> VisitControl {
        self.events.push(Event::LevelEnd(depth, state_count));
        match self.levels_left.as_mut() {
            Some(0) => VisitControl::Stop,
            Some(n) => {
                *n -= 1;
                VisitControl::Continue
            }
            None => VisitControl::Continue,
        }
    }
    fn on_progress(&mut self, states: usize, transitions: usize, depth: usize) -> VisitControl {
        self.events
            .push(Event::Progress(states, transitions, depth));
        match self.checkpoints_left.as_mut() {
            Some(0) => VisitControl::Stop,
            Some(n) => {
                *n -= 1;
                VisitControl::Continue
            }
            None => VisitControl::Continue,
        }
    }
}

fn assert_identical(serial: &StateSpace, parallel: &StateSpace, ctx: &str) -> Result<(), String> {
    prop_assert_eq!(serial.states(), parallel.states(), "states: {ctx}");
    prop_assert_eq!(
        serial.transitions(),
        parallel.transitions(),
        "transitions: {ctx}"
    );
    prop_assert_eq!(serial.deadlocks(), parallel.deadlocks(), "deadlocks: {ctx}");
    prop_assert_eq!(serial.truncated(), parallel.truncated(), "truncated: {ctx}");
    prop_assert!(serial == parallel, "PartialEq must agree: {ctx}");
    Ok(())
}

/// Stopping at a random level boundary is identical — space *and*
/// callback sequence — for every worker count, even though workers may
/// already be expanding deeper states speculatively when the stop
/// lands.
#[test]
fn mid_run_level_stop_agrees_across_workers() {
    cases(CASES).run("mid_run_level_stop_agrees_across_workers", |rng| {
        let recipes = rng.vec_of(2..6, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        let stop_after = rng.usize_in(0..4);
        let base = ExploreOptions::default().with_max_states(3_000);
        let mut serial_rec = StoppingRecorder::new(Some(stop_after), None);
        let serial = program.explore_with(&base.clone().with_workers(WORKERS[0]), &mut serial_rec);
        for &workers in &WORKERS[1..] {
            let mut rec = StoppingRecorder::new(Some(stop_after), None);
            let space = program.explore_with(&base.clone().with_workers(workers), &mut rec);
            let ctx = format!("workers={workers}, stop_after={stop_after}, recipes {recipes:?}");
            assert_identical(&serial, &space, &ctx)?;
            prop_assert_eq!(&serial_rec.events, &rec.events, "callback sequence: {ctx}");
        }
        Ok(())
    });
}

/// Stopping at a random mid-level progress checkpoint — the
/// cancellation epoch — is identical for every worker count.
#[test]
fn mid_run_progress_stop_agrees_across_workers() {
    cases(CASES).run("mid_run_progress_stop_agrees_across_workers", |rng| {
        // several stateful constraints so most draws exceed one
        // PROGRESS_INTERVAL worth of transitions
        let recipes = rng.vec_of(3..7, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        let stop_after = rng.usize_in(0..3);
        let base = ExploreOptions::default().with_max_states(5_000);
        let mut serial_rec = StoppingRecorder::new(None, Some(stop_after));
        let serial = program.explore_with(&base.clone().with_workers(WORKERS[0]), &mut serial_rec);
        for &workers in &WORKERS[1..] {
            let mut rec = StoppingRecorder::new(None, Some(stop_after));
            let space = program.explore_with(&base.clone().with_workers(workers), &mut rec);
            let ctx = format!("workers={workers}, stop_after={stop_after}, recipes {recipes:?}");
            assert_identical(&serial, &space, &ctx)?;
            prop_assert_eq!(&serial_rec.events, &rec.events, "callback sequence: {ctx}");
        }
        Ok(())
    });
}

/// `max_states` and `max_depth` applied *together* truncate
/// identically for every worker count (each bound alone is covered by
/// `tests/explore_parallel.rs`; their interaction is pinned here).
#[test]
fn combined_truncation_agrees_across_workers() {
    cases(CASES).run("combined_truncation_agrees_across_workers", |rng| {
        let recipes = rng.vec_of(2..6, random_recipe);
        let spec = build(&recipes);
        let program = Program::compile(&spec);
        let max_states = rng.usize_in(1..60);
        let max_depth = rng.usize_in(0..6);
        let base = ExploreOptions::default()
            .with_max_states(max_states)
            .with_max_depth(max_depth);
        let serial = program.explore(&base.clone().with_workers(WORKERS[0]));
        prop_assert!(serial.state_count() <= max_states);
        for &workers in &WORKERS[1..] {
            let parallel = program.explore(&base.clone().with_workers(workers));
            assert_identical(
                &serial,
                &parallel,
                &format!(
                    "workers={workers}, max_states={max_states}, \
                     max_depth={max_depth}, recipes {recipes:?}"
                ),
            )?;
        }
        Ok(())
    });
}

fn random_pred(rng: &mut TestRng) -> moccml_kernel::StepPred {
    use moccml_kernel::{EventId, StepPred};
    let e = |rng: &mut TestRng| EventId::from_index(rng.usize_in(0..5));
    match rng.u8_in(0..4) {
        0 => StepPred::fired(e(rng)),
        1 => StepPred::excludes(e(rng), e(rng)),
        2 => StepPred::implies(e(rng), e(rng)),
        _ => StepPred::negate(StepPred::fired(e(rng))),
    }
}

fn random_prop(rng: &mut TestRng) -> Prop {
    match rng.u8_in(0..5) {
        0 | 1 => Prop::Never(random_pred(rng)),
        2 => Prop::Always(random_pred(rng)),
        3 => Prop::EventuallyWithin(random_pred(rng), rng.usize_in(1..5)),
        _ => Prop::DeadlockFree,
    }
}

/// `verify::check_props` — statuses, counterexample schedules and
/// visited counts — is byte-identical for every worker count, on
/// *truncated* explorations where which states get interned at the
/// bound depends on the exact absorption order.
#[test]
fn truncated_check_reports_agree_across_workers() {
    cases(CASES).run("truncated_check_reports_agree_across_workers", |rng| {
        let recipes = rng.vec_of(2..6, random_recipe);
        let spec = build(&recipes);
        let program = Arc::new(Program::compile(&spec));
        let props: Vec<Prop> = rng.vec_of(1..4, random_prop);
        let max_states = rng.usize_in(1..120);
        let base = ExploreOptions::default().with_max_states(max_states);
        let serial = check_props(&program, &props, &base.clone().with_workers(WORKERS[0]));
        for &workers in &WORKERS[1..] {
            let parallel = check_props(&program, &props, &base.clone().with_workers(workers));
            let ctx = format!(
                "workers={workers}, max_states={max_states}, props {props:?}, \
                 recipes {recipes:?}"
            );
            prop_assert_eq!(&serial.statuses, &parallel.statuses, "statuses: {ctx}");
            prop_assert_eq!(
                serial.states_visited,
                parallel.states_visited,
                "states_visited: {ctx}"
            );
            prop_assert_eq!(
                serial.transitions_visited,
                parallel.transitions_visited,
                "transitions_visited: {ctx}"
            );
            prop_assert_eq!(serial.completed, parallel.completed, "completed: {ctx}");
            prop_assert!(
                serial == parallel,
                "CheckReport PartialEq must agree: {ctx}"
            );
        }
        // every counterexample that did come back re-validates
        for (i, ce) in serial
            .statuses
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                moccml_verify::PropStatus::Violated(ce) => Some((i, ce)),
                _ => None,
            })
        {
            prop_assert!(
                ce.replays_on(&program),
                "counterexample for prop {i} must replay: recipes {recipes:?}"
            );
        }
        Ok(())
    });
}
