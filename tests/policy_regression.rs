//! Regression: the rewritten `SafeMaxParallel` (compiled
//! `state_key()`/`restore()` lookahead) must choose *exactly* the
//! schedule the seed's clone-per-candidate implementation chose.
//!
//! The reference below reimplements the seed algorithm verbatim —
//! sort candidates by descending size (stable), fire each on a cloned
//! specification, take the first whose successor still admits a step,
//! fall back to the largest — enumerating with a throwaway
//! recompile-per-query program, exactly what the seed's (since removed)
//! free-function solver did.

use moccml_engine::{Program, SafeMaxParallel, Simulator, SolverOptions};
use moccml_kernel::{Schedule, Specification, Step};
use moccml_sdf::mocc::build_specification;
use moccml_sdf::{pam, SdfGraph};

/// The seed's solver entry point: re-lower every formula, enumerate.
fn acceptable_steps(spec: &Specification, options: &SolverOptions) -> Vec<Step> {
    Program::compile(spec).cursor().acceptable_steps(options)
}

/// The seed's `Policy::SafeMaxParallel` step choice, clone-based.
fn reference_safe_max_step(spec: &mut Specification, options: &SolverOptions) -> Option<Step> {
    let candidates = acceptable_steps(spec, options);
    if candidates.is_empty() {
        return None;
    }
    let mut by_size: Vec<&Step> = candidates.iter().collect();
    by_size.sort_by_key(|s| std::cmp::Reverse(s.len()));
    let chosen = by_size
        .iter()
        .find(|step| {
            let mut peek = spec.clone();
            peek.fire(step).expect("candidate is acceptable");
            !acceptable_steps(&peek, options).is_empty()
        })
        .copied()
        .unwrap_or(by_size[0])
        .clone();
    spec.fire(&chosen).expect("chosen step is acceptable");
    Some(chosen)
}

fn reference_safe_max_run(mut spec: Specification, max_steps: usize) -> Schedule {
    let options = SolverOptions::default();
    let mut schedule = Schedule::new();
    for _ in 0..max_steps {
        match reference_safe_max_step(&mut spec, &options) {
            Some(step) => schedule.push(step),
            None => break,
        }
    }
    schedule
}

fn assert_same_schedule(spec: Specification, steps: usize, label: &str) {
    let expected = reference_safe_max_run(spec.clone(), steps);
    let actual = Simulator::new(spec, SafeMaxParallel).run(steps).schedule;
    assert_eq!(actual, expected, "{label}: schedule diverged from seed");
}

/// The three PAM deployments are the workload the seed policy was
/// written for: lookahead actually vetoes greedy choices there.
#[test]
fn safe_max_parallel_schedule_unchanged_on_pam_deployments() {
    for (platform, deployment) in [
        pam::deployment_single_core(),
        pam::deployment_dual_core(),
        pam::deployment_quad_core(),
    ] {
        let spec = pam::deployed(&platform, &deployment).expect("deploys");
        assert_same_schedule(spec, 30, platform.name());
    }
}

/// Multirate SDF chains exercise ties between equal-sized candidates
/// (the stable-sort tie-breaking must match too).
#[test]
fn safe_max_parallel_schedule_unchanged_on_multirate_chain() {
    let mut g = SdfGraph::new("mr");
    g.add_agent("a", 0).expect("fresh");
    g.add_agent("b", 0).expect("fresh");
    g.add_agent("c", 0).expect("fresh");
    g.connect("a", "b", 2, 3, 6, 0).expect("valid");
    g.connect("b", "c", 1, 2, 4, 0).expect("valid");
    let spec = build_specification(&g).expect("builds");
    assert_same_schedule(spec, 40, "multirate chain");
}

/// The infinite-resource PAM model never needs the lookahead veto —
/// the fallback path must still agree.
#[test]
fn safe_max_parallel_schedule_unchanged_without_vetoes() {
    let spec = pam::infinite_resources().expect("builds");
    assert_same_schedule(spec, 20, "infinite resources");
}

/// The lookahead veto must not be blinded by a session that includes
/// the empty step (the stuttering step is acceptable in every state,
/// so counting it would approve every greedy choice): on the
/// single-core PAM deployment the policy must still dodge the wedge
/// and pick the seed's schedule.
#[test]
fn safe_max_parallel_veto_survives_include_empty() {
    use moccml_engine::Engine;
    let (platform, deployment) = pam::deployment_single_core();
    let spec = pam::deployed(&platform, &deployment).expect("deploys");
    let expected = reference_safe_max_run(spec.clone(), 30);
    let report = Engine::builder(spec)
        .policy(SafeMaxParallel)
        .solver(SolverOptions::default().with_empty(true))
        .build()
        .run(30);
    assert_eq!(report.schedule, expected, "veto blinded by empty step");
}
