//! The `moccml lint` subcommand, and the front door of the `moccml`
//! binary: `lint` is handled here, every other command is delegated to
//! [`moccml_lang::cli::run`] unchanged (the binary lives in this crate
//! because linting needs the analyzer, which depends on the frontend —
//! not the other way round).
//!
//! ```text
//! moccml lint <spec.mcc> [--deny warnings] [--format text|json]
//! ```
//!
//! Exit codes follow the rest of the CLI: `0` the spec is clean (info
//! findings never count), `1` the linter found errors — or warnings
//! under `--deny warnings` — and `2` for usage, I/O, parse or
//! compilation errors. Text output is compiler-style
//! `path:line:col: severity[code]: message` lines followed by a
//! one-line summary; `--format json` prints the machine-readable array
//! of [`render_json`] and nothing else.

use crate::diagnostic::{render_json, render_text, Diagnostic, Severity};
use moccml_obs::Recorder;
use std::fmt::Write as _;

pub use moccml_lang::cli::{EXIT_ERROR, EXIT_OK, EXIT_VIOLATED};

const LINT_USAGE: &str = "\
usage: moccml lint <spec.mcc> [options]

options:
  --deny warnings   treat warnings as errors (exit 1)
  --format FMT      output format: text | json (default text)
";

/// Runs the CLI on `args` (without the program name), writing all
/// output to `out`. Returns the process exit code.
///
/// The `lint` subcommand is resolved here; anything else — including
/// `--help`, whose usage text advertises `lint` too — falls through to
/// the frontend CLI.
pub fn run(args: &[String], out: &mut String) -> i32 {
    run_with(args, out, &Recorder::disabled())
}

/// [`run`] with an observability [`Recorder`]: `lint` opens a `lint`
/// span around the analysis, everything else delegates to
/// [`moccml_lang::cli::run_with`] so the frontend phases
/// (`parse`/`compile`/`check`/…) record under the same handle. Output
/// is byte-identical with recording on or off.
pub fn run_with(args: &[String], out: &mut String, recorder: &Recorder) -> i32 {
    if args.first().map(String::as_str) != Some("lint") {
        return moccml_lang::cli::run_with(args, out, recorder);
    }
    match try_lint(&args[1..], out, recorder) {
        Ok(code) => code,
        Err(message) => {
            let _ = writeln!(out, "error: {message}");
            EXIT_ERROR
        }
    }
}

fn try_lint(args: &[String], out: &mut String, recorder: &Recorder) -> Result<i32, String> {
    let Some(spec_path) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err(format!("missing <spec.mcc> path\n{LINT_USAGE}"));
    };
    let deny_warnings = match args.iter().position(|a| a == "--deny") {
        None => false,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("warnings") => true,
            other => {
                return Err(format!(
                    "--deny expects `warnings`, got `{}`\n{LINT_USAGE}",
                    other.unwrap_or("")
                ))
            }
        },
    };
    let format = match args.iter().position(|a| a == "--format") {
        None => "text",
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some(f @ ("text" | "json")) => f,
            other => {
                return Err(format!(
                    "--format expects `text` or `json`, got `{}`\n{LINT_USAGE}",
                    other.unwrap_or("")
                ))
            }
        },
    };
    let source = std::fs::read_to_string(spec_path)
        .map_err(|e| format!("cannot read `{spec_path}`: {e}"))?;
    let diagnostics = {
        let _span = recorder.span("lint");
        crate::analyze_str(&source).map_err(|e| {
            let (line, column) = e.position();
            format!("{spec_path}:{line}:{column}: {e}")
        })?
    };
    let errors = count(&diagnostics, Severity::Error);
    let warnings = count(&diagnostics, Severity::Warn);
    match format {
        "json" => out.push_str(&render_json(spec_path, &diagnostics)),
        _ => {
            out.push_str(&render_text(spec_path, &diagnostics));
            let _ = writeln!(
                out,
                "{spec_path}: {} finding(s): {errors} error(s), {warnings} warning(s)",
                diagnostics.len()
            );
        }
    }
    Ok(if errors > 0 || (deny_warnings && warnings > 0) {
        EXIT_VIOLATED
    } else {
        EXIT_OK
    })
}

fn count(diagnostics: &[Diagnostic], severity: Severity) -> usize {
    diagnostics
        .iter()
        .filter(|d| d.severity == severity)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(format!("moccml-lint-test-{name}"));
        std::fs::write(&path, content).expect("temp file writes");
        path.to_str().expect("utf8 path").to_owned()
    }

    fn run_args(args: &[&str]) -> (i32, String) {
        let args: Vec<String> = args.iter().map(ToString::to_string).collect();
        let mut out = String::new();
        let code = run(&args, &mut out);
        (code, out)
    }

    const WARNY: &str = "spec s {\n  events a, b, orphan;\n  constraint c = alternates(a, b);\n  assert never((a && b));\n}\n";

    #[test]
    fn clean_specs_exit_zero_and_warnings_deny() {
        let path = write_temp("warny.mcc", WARNY);
        let (code, out) = run_args(&["lint", &path]);
        assert_eq!(code, EXIT_OK, "warnings alone pass: {out}");
        assert!(out.contains("warn[A010]"), "{out}");
        assert!(out.contains("1 warning(s)"), "{out}");
        let (code, _) = run_args(&["lint", &path, "--deny", "warnings"]);
        assert_eq!(code, EXIT_VIOLATED);
    }

    #[test]
    fn errors_always_fail() {
        let path = write_temp(
            "err.mcc",
            "spec s {\n  events a, b;\n  constraint c = alternates(a, b);\n  assert eventually<=0(a);\n}\n",
        );
        let (code, out) = run_args(&["lint", &path]);
        assert_eq!(code, EXIT_VIOLATED, "{out}");
        assert!(out.contains("error[A021]"), "{out}");
    }

    #[test]
    fn json_format_is_machine_readable_only() {
        let path = write_temp("json.mcc", WARNY);
        let (code, out) = run_args(&["lint", &path, "--format", "json"]);
        assert_eq!(code, EXIT_OK);
        assert!(out.starts_with('['), "{out}");
        assert!(out.ends_with("]\n"), "{out}");
        assert!(out.contains("\"code\": \"A010\""), "{out}");
        assert!(!out.contains("finding(s)"), "no summary in json: {out}");
    }

    #[test]
    fn non_lint_commands_delegate_to_the_frontend() {
        let path = write_temp(
            "delegate.mcc",
            "spec s {\n  events a, b;\n  constraint c = alternates(a, b);\n  assert deadlock-free;\n}\n",
        );
        let (code, out) = run_args(&["check", &path]);
        assert_eq!(code, EXIT_OK, "{out}");
        assert!(out.contains("holds"), "{out}");
        let (code, out) = run_args(&["--help"]);
        assert_eq!(code, EXIT_OK);
        assert!(out.contains("lint"), "usage advertises lint: {out}");
    }

    #[test]
    fn lint_usage_and_io_errors() {
        let (code, out) = run_args(&["lint"]);
        assert_eq!(code, EXIT_ERROR);
        assert!(out.contains("usage: moccml lint"), "{out}");
        let (code, _) = run_args(&["lint", "/nonexistent/x.mcc"]);
        assert_eq!(code, EXIT_ERROR);
        let (code, out) = run_args(&["lint", "x.mcc", "--format", "yaml"]);
        assert_eq!(code, EXIT_ERROR);
        assert!(out.contains("--format expects"), "{out}");
        let broken = write_temp("broken.mcc", "spec x {\n  events a b;\n}");
        let (code, out) = run_args(&["lint", &broken]);
        assert_eq!(code, EXIT_ERROR);
        assert!(out.contains(":2:12:"), "{out}");
    }
}
