//! Pass 3 — property lints (vacuous, unsatisfiable, tautological and
//! contradictory `assert`s) and the pass-4 cone-of-influence report.
//!
//! The AST properties (`ast.props()`) and the compiled
//! [`Prop`](moccml_verify::Prop)s are parallel vectors — `compile`
//! processes items in source order — so each lint can pick whichever
//! view is sharper: spans come from the AST, semantics from the
//! compiled predicate.

use crate::diagnostic::{Diagnostic, Severity};
use moccml_kernel::{EventId, Step, StepPred};
use moccml_lang::ast::{Name, PredAst, PropAst, SpecAst};
use moccml_lang::Compiled;
use moccml_verify::{sliceable_events, Prop};

/// Tautology/contradiction checks enumerate the predicate's own events
/// exhaustively; beyond this many distinct events we stay silent.
const MAX_PRED_EVENTS: usize = 12;

/// Runs the property lints. `dead_events` are the A013 findings of the
/// spec pass: asserts over them are *also* vacuous, but the root cause
/// is already reported, so only genuinely unconstrained events get
/// A020 here.
pub(crate) fn lint_props(
    ast: &SpecAst,
    compiled: &Compiled,
    dead_events: &Step,
    out: &mut Vec<Diagnostic>,
) {
    let program = &compiled.program;
    let spec = program.specification();
    let universe = spec.universe();
    let constrained = spec.constrained_events();
    let prop_asts = ast.props();
    debug_assert_eq!(prop_asts.len(), compiled.props.len());

    for (prop_ast, prop) in prop_asts.iter().zip(&compiled.props) {
        let anchor = prop_anchor(prop_ast);

        // A020: the predicate mentions events no constraint touches —
        // the explorer only ranges over constrained events, so those
        // atoms are constantly false
        for name in prop_names(prop_ast) {
            let Some(id) = universe.lookup(&name.text) else {
                continue;
            };
            if !constrained.contains(id) && !dead_events.contains(id) {
                out.push(Diagnostic::new(
                    "A020",
                    Severity::Warn,
                    name.line,
                    name.column,
                    format!(
                        "assert references `{}`, which no constraint touches: the \
                         event never fires during exploration, so `{}` is a constant \
                         atom",
                        name.text, name.text
                    ),
                ));
            }
        }

        // A021: a zero liveness bound is unsatisfiable by construction
        match prop_ast {
            PropAst::EventuallyWithin(_, 0) => out.push(Diagnostic::new(
                "A021",
                Severity::Error,
                anchor.0,
                anchor.1,
                "`eventually<=0(…)` is unsatisfiable by construction: no step can \
                 occur within a bound of 0"
                    .to_owned(),
            )),
            PropAst::UntilWithin(_, _, 0) => out.push(Diagnostic::new(
                "A021",
                Severity::Error,
                anchor.0,
                anchor.1,
                "`until<=0(…, …)` is unsatisfiable by construction: the fulfilling \
                 step cannot occur within a bound of 0"
                    .to_owned(),
            )),
            _ => {}
        }

        // A022 / A023: a predicate of the property is constant
        for pred in prop_preds(prop) {
            match constant_truth(pred) {
                Some(true) => out.push(Diagnostic::new(
                    "A022",
                    Severity::Warn,
                    anchor.0,
                    anchor.1,
                    format!(
                        "predicate `{}` is tautological: `always` holds trivially \
                         and `never` is violated by the very first step",
                        pred.display(universe)
                    ),
                )),
                Some(false) => out.push(Diagnostic::new(
                    "A023",
                    Severity::Warn,
                    anchor.0,
                    anchor.1,
                    format!(
                        "predicate `{}` is contradictory: `never` holds trivially \
                         and `always`/`eventually` can never be satisfied",
                        pred.display(universe)
                    ),
                )),
                None => {}
            }
        }

        // A030: the cone of influence is a proper constraint subset —
        // this assert is checkable on a smaller program
        if let Some(seeds) = sliceable_events(prop) {
            let cone = program.cone_of_influence(&seeds);
            let total = spec.constraint_count();
            if cone.len() < total {
                out.push(Diagnostic::new(
                    "A030",
                    Severity::Info,
                    anchor.0,
                    anchor.1,
                    format!(
                        "cone of influence: {} of {} constraints — `moccml check \
                         --slice` (or `CheckOptions::with_slice`) verifies this \
                         assert on the slice alone",
                        cone.len(),
                        total
                    ),
                ));
            }
        }
    }
}

/// The compiled step predicates of a property (two for the bounded
/// binary temporal forms, none for `deadlock-free`).
fn prop_preds(prop: &Prop) -> Vec<&StepPred> {
    match prop {
        Prop::Always(p) | Prop::Never(p) | Prop::EventuallyWithin(p, _) => vec![p],
        Prop::UntilWithin(p, q, _) | Prop::ReleaseWithin(p, q, _) => vec![p, q],
        Prop::DeadlockFree => Vec::new(),
    }
}

/// `Some(truth)` when `pred` evaluates to the same truth value on every
/// possible step. A step predicate only inspects membership of its own
/// events, so enumerating their subsets is exhaustive.
fn constant_truth(pred: &StepPred) -> Option<bool> {
    let events: Vec<EventId> = pred.events().iter().collect();
    if events.len() > MAX_PRED_EVENTS {
        return None;
    }
    let first = pred.eval(&Step::new());
    for mask in 1u32..(1 << events.len()) {
        let step = Step::from_events(
            events
                .iter()
                .enumerate()
                .filter(|(k, _)| mask & (1 << k) != 0)
                .map(|(_, e)| *e),
        );
        if pred.eval(&step) != first {
            return None;
        }
    }
    Some(first)
}

/// The `(line, column)` anchor of a property: its first named event, or
/// `(1, 1)` for `deadlock-free` (which carries no span of its own).
fn prop_anchor(prop: &PropAst) -> (usize, usize) {
    prop_names(prop)
        .first()
        .map_or((1, 1), |n| (n.line, n.column))
}

/// Every event name the property mentions, in syntax order.
fn prop_names(prop: &PropAst) -> Vec<&Name> {
    let mut out = Vec::new();
    match prop {
        PropAst::Always(p) | PropAst::Never(p) | PropAst::EventuallyWithin(p, _) => {
            pred_names(p, &mut out);
        }
        PropAst::UntilWithin(p, q, _) | PropAst::ReleaseWithin(p, q, _) => {
            pred_names(p, &mut out);
            pred_names(q, &mut out);
        }
        PropAst::DeadlockFree => {}
    }
    out
}

fn pred_names<'a>(pred: &'a PredAst, out: &mut Vec<&'a Name>) {
    match pred {
        PredAst::Fired(n) => out.push(n),
        PredAst::Excludes(a, b) | PredAst::Implies(a, b) => {
            out.push(a);
            out.push(b);
        }
        PredAst::And(l, r) | PredAst::Or(l, r) => {
            pred_names(l, out);
            pred_names(r, out);
        }
        PredAst::Not(inner) => pred_names(inner, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_lang::{compile_str, parse_spec};

    fn lint_source(src: &str) -> Vec<Diagnostic> {
        let compiled = compile_str(src).expect("compiles");
        let ast = parse_spec(src).expect("parses");
        let mut out = Vec::new();
        lint_props(&ast, &compiled, &Step::new(), &mut out);
        out
    }

    #[test]
    fn flags_vacuous_unsatisfiable_tautological_contradictory() {
        let diags = lint_source(
            "spec s {\n\
               events a, b, ghost;\n\
               constraint c = alternates(a, b);\n\
               assert never(ghost);\n\
               assert eventually<=0(a);\n\
               assert always((a || !a));\n\
               assert never((b && !b));\n\
             }",
        );
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"A020"), "ghost unconstrained: {codes:?}");
        assert!(codes.contains(&"A021"), "eventually<=0: {codes:?}");
        assert!(codes.contains(&"A022"), "a || !a: {codes:?}");
        assert!(codes.contains(&"A023"), "b && !b: {codes:?}");
        let unsat = diags.iter().find(|d| d.code == "A021").expect("A021");
        assert_eq!(unsat.severity, Severity::Error);
    }

    #[test]
    fn bounded_until_gets_the_same_scrutiny() {
        let diags = lint_source(
            "spec s {\n\
               events a, b, ghost;\n\
               constraint c = alternates(a, b);\n\
               assert until<=0(a, b);\n\
               assert until<=3((a || !a), b);\n\
               assert release<=3(a, ghost);\n\
             }",
        );
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"A021"), "until<=0: {codes:?}");
        assert!(codes.contains(&"A022"), "constant sustain pred: {codes:?}");
        assert!(
            codes.contains(&"A020"),
            "ghost in a release fulfil pred: {codes:?}"
        );
        // a healthy bounded until stays clean
        let clean = lint_source(
            "spec s {\n\
               events a, b;\n\
               constraint c = alternates(a, b);\n\
               assert until<=4(a, b);\n\
             }",
        );
        assert!(
            clean.iter().all(|d| d.code == "A030"),
            "only cone infos allowed: {clean:?}"
        );
    }

    #[test]
    fn cone_report_fires_only_on_proper_subsets() {
        let diags = lint_source(
            "spec s {\n\
               events a, b, x, y;\n\
               constraint ab = alternates(a, b);\n\
               constraint xy = alternates(x, y);\n\
               assert never((a && b));\n\
               assert never((a && x));\n\
               assert deadlock-free;\n\
             }",
        );
        let cones: Vec<&Diagnostic> = diags.iter().filter(|d| d.code == "A030").collect();
        // only the first assert has a proper cone (1 of 2 constraints);
        // the second touches both, deadlock-free is never sliceable
        assert_eq!(cones.len(), 1, "{diags:?}");
        assert!(cones[0].message.contains("1 of 2"));
        assert_eq!(cones[0].severity, Severity::Info);
    }

    #[test]
    fn healthy_asserts_stay_clean() {
        let diags = lint_source(
            "spec s {\n\
               events a, b;\n\
               constraint c = alternates(a, b);\n\
               assert never((a && b));\n\
               assert deadlock-free;\n\
             }",
        );
        assert!(
            diags.iter().all(|d| d.code == "A030"),
            "only cone infos allowed: {diags:?}"
        );
    }
}
