//! # moccml-analyze
//!
//! Static analysis for `.mcc` MoCCML specifications: a multi-pass lint
//! engine over the parsed [`SpecAst`] *and*
//! the compiled [`Program`](moccml_engine::Program), producing
//! [`Diagnostic`]s with stable codes, severities and `line:column`
//! spans — plus the cone-of-influence machinery that lets
//! `moccml_verify::check_with` explore strictly fewer states for local
//! properties.
//!
//! The paper's workflow assumes specs are *meaningful* before they are
//! explored; this crate catches the meaningless ones at compile time:
//! an unreachable automaton state, an event that can statically never
//! fire, a vacuous `assert` — each would otherwise sail silently into
//! an expensive (possibly non-terminating) BFS.
//!
//! ## Lint catalog
//!
//! | Code | Severity | Finding |
//! |------|----------|---------|
//! | A001 | warn  | automaton state unreachable from the initial state |
//! | A002 | warn  | transition can never fire (`when`/`forbid` overlap, constant-false guard) |
//! | A003 | warn  | nondeterministic overlap: same triggers, at least one exit unguarded |
//! | A004 | warn  | reachable non-final sink state: entering it blocks its events forever |
//! | A005 | info  | empty `library { }` block |
//! | A010 | warn  | declared event neither constrained nor asserted about |
//! | A011 | warn  | duplicate constraint (same footprint, state and lowered formula) |
//! | A012 | warn  | constraint subsumed by another stateless constraint |
//! | A013 | warn  | event can never fire (per-constraint may-fire abstraction) |
//! | A020 | warn  | assert references an event no constraint touches |
//! | A021 | error | `eventually<=0(…)` is unsatisfiable by construction |
//! | A022 | warn  | assert predicate is tautological |
//! | A023 | warn  | assert predicate is contradictory |
//! | A030 | info  | assert's cone of influence is a proper constraint subset (`--slice` opportunity) |
//!
//! Codes are append-only and never change meaning. The same catalog,
//! with examples and fixes, lives in the repository README's "Static
//! analysis" section.
//!
//! ## Example
//!
//! ```
//! use moccml_analyze::{analyze_str, Severity};
//!
//! let diagnostics = analyze_str(
//!     "spec demo {
//!        events a, b, orphan;
//!        constraint alt = alternates(a, b);
//!        assert eventually<=0(a);
//!      }",
//! )?;
//! let codes: Vec<&str> = diagnostics.iter().map(|d| d.code).collect();
//! assert_eq!(codes, ["A010", "A021"]); // orphan unused; bound 0 unsatisfiable
//! assert_eq!(diagnostics[1].severity, Severity::Error);
//! # Ok::<(), moccml_lang::LangError>(())
//! ```
//!
//! The `moccml lint` subcommand (this crate also owns the `moccml`
//! binary — see [`cli`]) renders these findings in compiler style or as
//! JSON and maps severities to exit codes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod automaton;
mod diagnostic;
mod prop_lints;
mod spec_lints;

pub mod cli;

pub use diagnostic::{render_json, render_text, Diagnostic, Severity};

use moccml_lang::ast::SpecAst;
use moccml_lang::{compile, parse_spec, Compiled, LangError};

/// Runs every lint pass over a parsed and compiled specification.
///
/// The two views must come from the same source (`compiled =
/// compile(ast)`): the AST contributes spans and declaration order, the
/// compiled program contributes footprints, lowered formulas and
/// properties. Diagnostics come back sorted by `(line, column, code)`.
#[must_use]
pub fn analyze(ast: &SpecAst, compiled: &Compiled) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    automaton::lint_automata(ast, &mut out);
    let dead = spec_lints::lint_spec(ast, compiled, &mut out);
    prop_lints::lint_props(ast, compiled, &dead, &mut out);
    out.sort_by_key(|d| (d.line, d.column, d.code));
    out
}

/// Parses, compiles and [`analyze`]s a `.mcc` source string.
///
/// # Errors
///
/// Returns the underlying [`LangError`] when the source does not parse
/// or compile — linting needs a well-formed spec; syntax errors are the
/// parser's job.
pub fn analyze_str(source: &str) -> Result<Vec<Diagnostic>, LangError> {
    let ast = parse_spec(source)?;
    let compiled = compile(&ast)?;
    Ok(analyze(&ast, &compiled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostics_are_sorted_by_position() {
        let diags = analyze_str(
            "spec s {\n\
               events a, b, orphan, ghost;\n\
               constraint c = alternates(a, b);\n\
               assert never(ghost);\n\
               assert eventually<=0(a);\n\
             }",
        )
        .expect("compiles");
        let positions: Vec<(usize, usize)> = diags.iter().map(|d| (d.line, d.column)).collect();
        let mut sorted = positions.clone();
        sorted.sort_unstable();
        assert_eq!(positions, sorted);
        assert!(diags.len() >= 3); // orphan A010, ghost A020, bound A021
    }

    #[test]
    fn parse_errors_pass_through() {
        let err = analyze_str("spec s { events }").expect_err("bad syntax");
        let (line, column) = err.position();
        assert!(line >= 1 && column >= 1);
    }

    #[test]
    fn a_clean_spec_produces_no_diagnostics() {
        let diags = analyze_str(
            "spec clean {\n\
               events req, grant;\n\
               constraint handshake = alternates(req, grant);\n\
               assert never((req && grant));\n\
               assert deadlock-free;\n\
             }",
        )
        .expect("compiles");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
