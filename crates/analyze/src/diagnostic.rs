//! Structured lint diagnostics and their text / JSON renderings.
//!
//! Every finding carries a **stable code** (`A001`, `A010`, …), a
//! severity, a 1-based `line:column` anchor into the `.mcc` source (the
//! same span convention as [`moccml_lang::LangError`]) and a
//! human-readable message. Codes are append-only: a code never changes
//! meaning, so `--deny` policies and golden tests stay valid across
//! releases.

use std::fmt;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The spec is almost certainly wrong (e.g. an unsatisfiable
    /// assert). `moccml lint` exits non-zero.
    Error,
    /// Probably a mistake, but the spec is still checkable. Promoted to
    /// an error by `--deny warnings`.
    Warn,
    /// Neutral observation (e.g. a slicing opportunity). Never affects
    /// the exit code.
    Info,
}

impl Severity {
    /// The lowercase label used by both renderers (`error`, `warn`,
    /// `info`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code (`A001`…). See the crate docs for the catalog.
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// 1-based source line of the anchor.
    pub line: usize,
    /// 1-based source column of the anchor.
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// A new diagnostic.
    #[must_use]
    pub fn new(
        code: &'static str,
        severity: Severity,
        line: usize,
        column: usize,
        message: String,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            line,
            column,
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}]: {}",
            self.line, self.column, self.severity, self.code, self.message
        )
    }
}

/// Renders diagnostics in compiler style, one per line:
/// `path:line:col: severity[code]: message` — the same
/// `path:line:column` prefix [`moccml_lang::cli`] uses for parse
/// errors, so editors pick both up with one matcher.
#[must_use]
pub fn render_text(path: &str, diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(path);
        out.push(':');
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Renders diagnostics as a JSON array of
/// `{"code", "severity", "line", "column", "message"}` objects (plus a
/// `"path"` field per entry), newline-terminated. Hand-rolled like the
/// bench reports — the workspace is dependency-free by design.
#[must_use]
pub fn render_json(path: &str, diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"path\": {}, \"code\": \"{}\", \"severity\": \"{}\", \
             \"line\": {}, \"column\": {}, \"message\": {}}}",
            json_string(path),
            d.code,
            d.severity,
            d.line,
            d.column,
            json_string(&d.message)
        ));
    }
    if !diagnostics.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::new("A001", Severity::Warn, 3, 5, "state `X` unreachable".into()),
            Diagnostic::new("A021", Severity::Error, 9, 1, "bound is \"0\"".into()),
        ]
    }

    #[test]
    fn text_rendering_is_compiler_style() {
        let text = render_text("spec.mcc", &sample());
        assert_eq!(
            text,
            "spec.mcc:3:5: warn[A001]: state `X` unreachable\n\
             spec.mcc:9:1: error[A021]: bound is \"0\"\n"
        );
    }

    #[test]
    fn json_rendering_escapes_and_terminates() {
        let json = render_json("spec.mcc", &sample());
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\"code\": \"A001\""));
        assert!(json.contains("\\\"0\\\""));
        assert_eq!(render_json("spec.mcc", &[]), "[]\n");
    }
}
