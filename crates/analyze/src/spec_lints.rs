//! Pass 2 — spec lints over the compiled
//! [`Program`](moccml_engine::Program): unused events (A010), duplicate
//! constraints (A011), subsumed constraints (A012) and statically-dead
//! events (A013).
//!
//! A011/A012 compare the constraints' *lowered-formula footprints*: the
//! per-constraint [`StepFormula`](moccml_kernel::StepFormula)s and
//! event footprints the engine compiles, not the surface syntax — two
//! differently-written constraints with the same semantics are still
//! duplicates. A013 runs a per-constraint **may-fire abstraction**: a
//! bounded solo exploration of each constraint; an event its own
//! constraint never admits can never fire in the conjunction either.

use crate::diagnostic::{Diagnostic, Severity};
use moccml_engine::{ExploreOptions, Program};
use moccml_kernel::{EventId, Specification, Step, StepFormula};
use moccml_lang::ast::{Item, Name, SpecAst};
use moccml_lang::Compiled;

/// Exhaustive implication checks are bounded by footprint size: 2^12
/// evaluations of two tiny formulas is microseconds; beyond that we
/// stay silent rather than slow.
const MAX_FOOTPRINT_FOR_IMPLICATION: usize = 12;

/// The solo may-fire exploration is capped; a constraint whose own
/// state-space is larger (unbounded counters) is skipped
/// conservatively.
const MAY_FIRE_STATE_CAP: usize = 256;

/// Runs the spec lints. Returns the set of statically-dead events so
/// the property pass can avoid double-reporting their asserts.
pub(crate) fn lint_spec(ast: &SpecAst, compiled: &Compiled, out: &mut Vec<Diagnostic>) -> Step {
    let program = &compiled.program;
    let spec = program.specification();
    let universe = spec.universe();
    let footprints = program.footprints();
    let decls = ast.constraints();

    // events the asserted properties mention (DeadlockFree mentions none)
    let mut asserted = Step::new();
    for prop in &compiled.props {
        if let moccml_verify::Prop::Always(p)
        | moccml_verify::Prop::Never(p)
        | moccml_verify::Prop::EventuallyWithin(p, _) = prop
        {
            asserted = asserted.union(&p.events());
        }
    }

    // A010: declared events nothing constrains or asserts about
    let constrained = spec.constrained_events();
    for name in declared_event_names(ast) {
        let Some(id) = universe.lookup(&name.text) else {
            continue; // compile() already resolved every name
        };
        if !constrained.contains(id) && !asserted.contains(id) {
            out.push(Diagnostic::new(
                "A010",
                Severity::Warn,
                name.line,
                name.column,
                format!(
                    "event `{}` is neither constrained nor asserted about; it only \
                     doubles the acceptable-step count",
                    name.text
                ),
            ));
        }
    }

    // A011 / A012 need the lowered formulas and per-constraint state
    let formulas = spec.lowered_formulas();
    let keys = spec.constraint_state_keys();
    let n = spec.constraint_count();
    debug_assert_eq!(decls.len(), n, "compile() adds constraints in source order");

    // A011: same footprint, same local state, same lowered formula
    let mut duplicate_of: Vec<Option<usize>> = vec![None; n];
    for j in 1..n {
        for i in 0..j {
            if footprints[i] == footprints[j] && keys[i] == keys[j] && formulas[i] == formulas[j] {
                duplicate_of[j] = Some(i);
                break;
            }
        }
    }
    for (j, dup) in duplicate_of.iter().enumerate() {
        let Some(i) = dup else { continue };
        let name = &decls[j].name;
        out.push(Diagnostic::new(
            "A011",
            Severity::Warn,
            name.line,
            name.column,
            format!(
                "constraint `{}` duplicates `{}`: same events, same state, same \
                 lowered formula",
                name.text, decls[*i].name.text
            ),
        ));
    }

    // A012: a stateless constraint whose formula is implied by another
    // stateless constraint's formula is redundant. Stateless (empty
    // state key) means the formula never changes, so one exhaustive
    // implication check over the larger footprint decides it for every
    // instant.
    for j in 0..n {
        for i in 0..j {
            if duplicate_of[i].is_some() || duplicate_of[j].is_some() {
                continue;
            }
            if !keys[i].is_empty() || !keys[j].is_empty() {
                continue;
            }
            let (redundant, keeper) = match subsumption(
                (i, &footprints[i], &formulas[i]),
                (j, &footprints[j], &formulas[j]),
            ) {
                Some(pair) => pair,
                None => continue,
            };
            let name = &decls[redundant].name;
            out.push(Diagnostic::new(
                "A012",
                Severity::Warn,
                name.line,
                name.column,
                format!(
                    "constraint `{}` is subsumed by `{}`: every step `{}` accepts \
                     already satisfies `{}`",
                    name.text, decls[keeper].name.text, decls[keeper].name.text, name.text
                ),
            ));
        }
    }

    // A013: the may-fire abstraction
    let dead = statically_dead_events(spec);
    for name in declared_event_names(ast) {
        let Some(id) = universe.lookup(&name.text) else {
            continue;
        };
        if dead.contains(id) {
            out.push(Diagnostic::new(
                "A013",
                Severity::Warn,
                name.line,
                name.column,
                format!(
                    "event `{}` can never fire: one of its constraints admits it in \
                     no reachable state",
                    name.text
                ),
            ));
        }
    }
    dead
}

/// All `events …;` names with their source spans.
fn declared_event_names(ast: &SpecAst) -> Vec<&Name> {
    ast.items
        .iter()
        .filter_map(|i| match i {
            Item::Events(names) => Some(names.iter()),
            _ => None,
        })
        .flatten()
        .collect()
}

/// Decides subsumption between two stateless constraints, returning
/// `(redundant, keeper)` indices — or `None` if neither footprint
/// contains the other, the footprints are too large, or neither formula
/// implies the other.
fn subsumption(
    a: (usize, &Step, &StepFormula),
    b: (usize, &Step, &StepFormula),
) -> Option<(usize, usize)> {
    let (ai, afp, af) = a;
    let (bi, bfp, bf) = b;
    // the implication candidate must range over the larger footprint
    let (small, large) = if afp.is_subset_of(bfp) {
        ((ai, af), (bi, bf, bfp))
    } else if bfp.is_subset_of(afp) {
        ((bi, bf), (ai, af, afp))
    } else {
        return None;
    };
    let (li, lf, lfp) = large;
    let (si, sf) = small;
    if lfp.len() > MAX_FOOTPRINT_FOR_IMPLICATION {
        return None;
    }
    let events: Vec<EventId> = lfp.iter().collect();
    let mut large_implies_small = true;
    let mut small_implies_large = true;
    for mask in 0u32..(1 << events.len()) {
        let step = Step::from_events(
            events
                .iter()
                .enumerate()
                .filter(|(k, _)| mask & (1 << k) != 0)
                .map(|(_, e)| *e),
        );
        let lv = lf.eval(&step);
        let sv = sf.eval(&step);
        if lv && !sv {
            large_implies_small = false;
        }
        if sv && !lv {
            small_implies_large = false;
        }
        if !large_implies_small && !small_implies_large {
            return None;
        }
    }
    if large_implies_small && small_implies_large {
        // semantically equivalent (A011 missed only the syntax): the
        // later declaration is the redundant one
        Some((ai.max(bi), ai.min(bi)))
    } else if large_implies_small {
        Some((si, li))
    } else {
        None
    }
}

/// Events some constraint of `spec` never admits in any reachable state
/// of its **solo** exploration — a sound over-approximation-free core:
/// the conjunction only removes behaviour, so solo-dead implies dead.
fn statically_dead_events(spec: &Specification) -> Step {
    let mut dead = Step::new();
    for c in spec.constraints() {
        let footprint = Step::from_events(c.constrained_events());
        let mut solo = Specification::new(c.name(), spec.universe().clone());
        solo.add_constraint(c.clone());
        let program = Program::new(solo);
        let space = program.explore(&ExploreOptions::default().with_max_states(MAY_FIRE_STATE_CAP));
        if space.truncated() {
            continue; // too big to decide; stay silent
        }
        let mut may_fire = Step::new();
        for (_, step, _) in space.transitions() {
            may_fire = may_fire.union(step);
        }
        dead = dead.union(&footprint.difference(&may_fire));
    }
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_lang::compile_str;

    fn lint_source(src: &str) -> Vec<Diagnostic> {
        let compiled = compile_str(src).expect("compiles");
        let ast = moccml_lang::parse_spec(src).expect("parses");
        let mut out = Vec::new();
        lint_spec(&ast, &compiled, &mut out);
        out
    }

    #[test]
    fn flags_unused_duplicate_subsumed_and_dead() {
        let diags = lint_source(
            "spec s {\n\
               events a, b, d, m, orphan;\n\
               constraint e1 = exclusion(a, b);\n\
               constraint e2 = exclusion(a, b);\n\
               constraint e3 = exclusion(a, b, d);\n\
               library L {\n\
                 constraint Mute(x: event)\n\
                 automaton MuteDef implements Mute {\n\
                   initial state M0; final state M0;\n\
                   from M0 to M0 when {} forbid {x};\n\
                 }\n\
               }\n\
               constraint mute = Mute(m);\n\
             }",
        );
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"A010"), "orphan unused: {codes:?}");
        assert!(codes.contains(&"A011"), "e2 duplicates e1: {codes:?}");
        assert!(codes.contains(&"A012"), "e1 subsumed by e3: {codes:?}");
        assert!(codes.contains(&"A013"), "m can never fire: {codes:?}");
        // the duplicate anchors at e2's own declaration
        let dup = diags.iter().find(|d| d.code == "A011").expect("dup");
        assert!(dup.message.contains("`e2`") && dup.message.contains("`e1`"));
    }

    #[test]
    fn stateful_pairs_are_never_subsumption_checked() {
        // a capacity-1 place's *initial* formula implies the exclusion,
        // but later states do not: a sound linter must stay silent
        let diags = lint_source(
            "spec s {\n\
               events w, r;\n\
               library SDF {\n\
                 constraint Place(write: event, read: event)\n\
                 automaton PlaceDef implements Place {\n\
                   var size: int = 0;\n\
                   initial state S0; final state S0;\n\
                   from S0 to S0 when {write} forbid {read} guard [size < 1] do size += 1;\n\
                   from S0 to S0 when {read} forbid {write} guard [size >= 1] do size -= 1;\n\
                 }\n\
               }\n\
               constraint p = Place(w, r);\n\
               constraint core = exclusion(w, r);\n\
             }",
        );
        assert!(
            !diags.iter().any(|d| d.code == "A012" || d.code == "A011"),
            "{diags:?}"
        );
    }

    #[test]
    fn asserted_only_events_are_not_unused() {
        let diags = lint_source(
            "spec s {\n\
               events a, b, ghost;\n\
               constraint c = alternates(a, b);\n\
               assert never(ghost);\n\
             }",
        );
        // ghost is asserted about, so not A010 (the prop pass flags the
        // vacuity instead)
        assert!(!diags.iter().any(|d| d.code == "A010"), "{diags:?}");
    }

    #[test]
    fn unbounded_constraints_skip_the_may_fire_pass() {
        // strict precedence has an unbounded counter: solo exploration
        // truncates, so A013 stays silent instead of guessing
        let diags = lint_source(
            "spec s {\n\
               events a, b;\n\
               constraint p = weak_precedes(a, b);\n\
             }",
        );
        assert!(!diags.iter().any(|d| d.code == "A013"), "{diags:?}");
    }
}
