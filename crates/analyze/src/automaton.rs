//! Pass 1 — automaton lints: graph analysis over every
//! [`AutomatonDefinition`](moccml_automata::AutomatonDefinition) in the
//! spec's embedded `library { … }` blocks.
//!
//! Library blocks are opaque source slices to the `.mcc` parser, so all
//! findings anchor at the block's `library` keyword; the message names
//! the automaton and state/transition precisely.

use crate::diagnostic::{Diagnostic, Severity};
use moccml_automata::{AutomatonDefinition, BoolExpr, CmpOp, IntExpr, Transition};
use moccml_lang::ast::{LibraryBlock, SpecAst};

/// Runs the automaton lints over every library block of `ast`.
pub(crate) fn lint_automata(ast: &SpecAst, out: &mut Vec<Diagnostic>) {
    for block in ast.libraries() {
        lint_block(block, out);
    }
}

fn lint_block(block: &LibraryBlock, out: &mut Vec<Diagnostic>) {
    let lib = &block.library;
    let (line, column) = (block.line, block.column);
    // A005: a block that declares nothing is dead weight
    if lib.declarations().is_empty() && lib.definitions().is_empty() {
        out.push(Diagnostic::new(
            "A005",
            Severity::Info,
            line,
            column,
            format!(
                "library `{}` declares no constraints or automata",
                lib.name()
            ),
        ));
    }
    for def in lib.definitions() {
        lint_definition(def, line, column, out);
    }
}

fn lint_definition(
    def: &AutomatonDefinition,
    line: usize,
    column: usize,
    out: &mut Vec<Diagnostic>,
) {
    let reachable = reachable_states(def);

    // A001: states no transition path reaches from the initial state
    for (idx, state) in def.states().iter().enumerate() {
        if !reachable[idx] {
            out.push(Diagnostic::new(
                "A001",
                Severity::Warn,
                line,
                column,
                format!(
                    "state `{}` of automaton `{}` is unreachable from the initial state `{}`",
                    state,
                    def.name(),
                    def.states()[def.initial()]
                ),
            ));
        }
    }

    // A002: transitions that can never fire
    for (idx, t) in def.transitions().iter().enumerate() {
        if let Some(reason) = dead_transition_reason(t) {
            out.push(Diagnostic::new(
                "A002",
                Severity::Warn,
                line,
                column,
                format!(
                    "transition {} of automaton `{}` (`{}` -> `{}`) can never fire: {}",
                    idx,
                    def.name(),
                    def.states()[t.source],
                    def.states()[t.target],
                    reason
                ),
            ));
        }
    }

    // A003: overlapping guard-free transitions on the same triggers
    for warning in def.determinism_warnings() {
        out.push(Diagnostic::new(
            "A003",
            Severity::Warn,
            line,
            column,
            format!(
                "automaton `{}` is nondeterministic: {}",
                def.name(),
                warning
            ),
        ));
    }

    // A004: reachable non-final states with no way out — once entered,
    // the automaton can only stutter and its events are blocked forever
    for (idx, state) in def.states().iter().enumerate() {
        let has_exit = def.transitions().iter().any(|t| t.source == idx);
        if reachable[idx] && !has_exit && !def.finals().contains(&idx) {
            out.push(Diagnostic::new(
                "A004",
                Severity::Warn,
                line,
                column,
                format!(
                    "state `{}` of automaton `{}` is a non-final sink: once entered, \
                     the automaton only stutters and blocks its events forever",
                    state,
                    def.name()
                ),
            ));
        }
    }
}

/// Which states a transition path reaches from the initial state
/// (ignoring guards — an over-approximation, so A001 never flags a
/// state that is actually reachable).
fn reachable_states(def: &AutomatonDefinition) -> Vec<bool> {
    let mut reachable = vec![false; def.states().len()];
    let mut stack = vec![def.initial()];
    reachable[def.initial()] = true;
    while let Some(s) = stack.pop() {
        for t in def.transitions() {
            if t.source == s && !reachable[t.target] {
                reachable[t.target] = true;
                stack.push(t.target);
            }
        }
    }
    reachable
}

/// Why a transition is statically dead, if it is.
fn dead_transition_reason(t: &Transition) -> Option<String> {
    if let Some(e) = t
        .true_triggers
        .iter()
        .find(|e| t.false_triggers.contains(e))
    {
        return Some(format!(
            "`{e}` is both required (`when`) and forbidden (`forbid`)"
        ));
    }
    if let Some(false) = t.guard.as_ref().and_then(const_bool) {
        return Some("its guard is constantly false".to_owned());
    }
    None
}

/// Constant-folds a guard. `Ref`s (parameters, variables) are unknown,
/// so `Some(false)` means false for *every* instantiation and state.
fn const_bool(e: &BoolExpr) -> Option<bool> {
    match e {
        BoolExpr::True => Some(true),
        BoolExpr::False => Some(false),
        BoolExpr::Not(inner) => const_bool(inner).map(|b| !b),
        BoolExpr::And(l, r) => match (const_bool(l), const_bool(r)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BoolExpr::Or(l, r) => match (const_bool(l), const_bool(r)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        BoolExpr::Cmp(l, op, r) => Some(apply_cmp(*op, const_int(l)?, const_int(r)?)),
    }
}

fn const_int(e: &IntExpr) -> Option<i64> {
    match e {
        IntExpr::Const(v) => Some(*v),
        IntExpr::Ref(_) => None,
        IntExpr::Add(l, r) => Some(const_int(l)?.checked_add(const_int(r)?)?),
        IntExpr::Sub(l, r) => Some(const_int(l)?.checked_sub(const_int(r)?)?),
        IntExpr::Mul(l, r) => Some(const_int(l)?.checked_mul(const_int(r)?)?),
        IntExpr::Neg(inner) => const_int(inner)?.checked_neg(),
    }
}

fn apply_cmp(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_lang::parse_spec;

    fn lint_source(src: &str) -> Vec<Diagnostic> {
        let ast = parse_spec(src).expect("parses");
        let mut out = Vec::new();
        lint_automata(&ast, &mut out);
        out
    }

    #[test]
    fn flags_unreachable_dead_nondet_and_sink() {
        let diags = lint_source(
            "spec s {\n\
               events a, b;\n\
               library L {\n\
                 constraint C(x: event, y: event)\n\
                 automaton D implements C {\n\
                   initial state S0;\n\
                   state Trap;\n\
                   final state Limbo;\n\
                   from S0 to S0 when {x} forbid {y};\n\
                   from S0 to Trap when {x};\n\
                   from S0 to S0 when {x, y} forbid {y};\n\
                   from Limbo to S0 when {x};\n\
                 }\n\
               }\n\
               constraint c = C(a, b);\n\
             }",
        );
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&"A001"), "Limbo unreachable: {codes:?}");
        assert!(codes.contains(&"A002"), "when/forbid overlap: {codes:?}");
        assert!(
            codes.contains(&"A003"),
            "two guard-free {{x}} exits: {codes:?}"
        );
        assert!(codes.contains(&"A004"), "Trap is a sink: {codes:?}");
        // anchors point at the `library` keyword of the block
        assert!(diags.iter().all(|d| (d.line, d.column) == (3, 1)));
    }

    #[test]
    fn constant_false_guards_are_dead() {
        let diags = lint_source(
            "spec s {\n\
               events a;\n\
               library L {\n\
                 constraint C(x: event)\n\
                 automaton D implements C {\n\
                   initial state S0; final state S0;\n\
                   from S0 to S0 when {x} guard [1 > 2];\n\
                 }\n\
               }\n\
               constraint c = C(a);\n\
             }",
        );
        assert!(diags.iter().any(|d| d.code == "A002"));
    }

    #[test]
    fn clean_automata_stay_clean() {
        // the Fig. 3 place: guarded on both exits, single live state
        let diags = lint_source(
            "spec s {\n\
               events w, r;\n\
               library SDF {\n\
                 constraint Place(write: event, read: event, cap: int)\n\
                 automaton PlaceDef implements Place {\n\
                   var size: int = 0;\n\
                   initial state S0; final state S0;\n\
                   from S0 to S0 when {write} forbid {read} guard [size < cap] do size += 1;\n\
                   from S0 to S0 when {read} forbid {write} guard [size >= 1] do size -= 1;\n\
                 }\n\
               }\n\
               constraint p = Place(w, r, 1);\n\
             }",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn empty_library_blocks_are_noted() {
        let diags = lint_source("spec s {\n  events a;\n  library Empty { }\n}");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "A005");
        assert_eq!(diags[0].severity, Severity::Info);
    }

    #[test]
    fn final_sinks_are_intentional_termination() {
        let diags = lint_source(
            "spec s {\n\
               events a;\n\
               library L {\n\
                 constraint C(x: event)\n\
                 automaton D implements C {\n\
                   initial state S0;\n\
                   final state Done;\n\
                   from S0 to Done when {x};\n\
                 }\n\
               }\n\
               constraint c = C(a);\n\
             }",
        );
        assert!(!diags.iter().any(|d| d.code == "A004"), "{diags:?}");
    }
}
