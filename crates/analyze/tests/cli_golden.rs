//! Golden end-to-end contract of the `moccml` CLI: the `check` verdict
//! on `examples/specs/pam.mcc` equals the programmatic `verify::check`
//! result on the same compiled spec — statuses, counterexample
//! schedules and event names, byte for byte — and is identical for
//! every `--workers` count; `lint` flags every seeded defect of the
//! golden `tests/specs/defects.mcc` and reports `pam.mcc` clean under
//! `--deny warnings`. (The spawned `moccml` binary lives in
//! `crates/serve` since the service layer took over the front door;
//! `crates/serve/tests/cli_exit_codes.rs` pins that the installed
//! binary byte-matches this in-process CLI.)

use moccml_analyze::cli;
use moccml_engine::ExploreOptions;
use moccml_verify::{check, is_witness, minimize_witness, PropStatus};
use std::path::PathBuf;

fn spec_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/specs")
        .join(name)
}

fn defects_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/specs/defects.mcc")
}

#[test]
fn pam_cli_verdict_matches_the_programmatic_check() {
    let path = spec_path("pam.mcc");
    let source = std::fs::read_to_string(&path).expect("pam.mcc is checked in");
    let compiled = moccml_lang::compile_str(&source).expect("pam.mcc compiles");
    let universe = compiled.universe().clone();
    assert_eq!(compiled.props.len(), 4, "pam.mcc asserts four properties");

    // the programmatic side: one `check` per property, 2 workers
    let options = ExploreOptions::default().with_workers(2);
    let statuses: Vec<PropStatus> = compiled
        .props
        .iter()
        .map(|p| check(&compiled.program, p, &options))
        .collect();
    assert_eq!(statuses[0], PropStatus::Holds, "deadlock-free holds");
    assert_eq!(statuses[1], PropStatus::Holds, "core exclusion holds");
    let PropStatus::Violated(ce_fusion) = &statuses[2] else {
        panic!("eventually<=2(fusion) is violated");
    };
    let PropStatus::Violated(ce_detect) = &statuses[3] else {
        panic!("never(detect) is violated");
    };
    // the detect witness is the whole pipeline flowing
    assert_eq!(ce_detect.schedule.len(), 4);
    for (prop, ce) in [
        (&compiled.props[2], ce_fusion),
        (&compiled.props[3], ce_detect),
    ] {
        assert!(ce.replays_on(&compiled.program));
        assert!(is_witness(&compiled.program, prop, &ce.schedule));
        let minimized = minimize_witness(&compiled.program, prop, &ce.schedule);
        assert!(is_witness(&compiled.program, prop, &minimized));
    }

    // the CLI side, in-process: the violated rows must carry exactly
    // the programmatic schedules, rendered with event names
    let args: Vec<String> = ["check", path.to_str().expect("utf8"), "--workers", "2"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let mut cli_out = String::new();
    let code = cli::run(&args, &mut cli_out);
    assert_eq!(code, cli::EXIT_VIOLATED, "{cli_out}");
    for ce in [ce_fusion, ce_detect] {
        let rendered = ce
            .schedule
            .to_lines(&universe)
            .expect("plain names")
            .trim_end()
            .replace('\n', " ; ");
        let expected = format!("witness ({} steps): {}", ce.schedule.len(), rendered);
        assert!(
            cli_out.contains(&expected),
            "CLI output must carry the programmatic witness `{expected}`:\n{cli_out}"
        );
    }
    assert_eq!(cli_out.matches("holds").count(), 2, "{cli_out}");
    assert_eq!(cli_out.matches("VIOLATED").count(), 2, "{cli_out}");

    // and the whole report is identical for every worker count
    for workers in [1, 8] {
        let args: Vec<String> = [
            "check",
            path.to_str().expect("utf8"),
            "--workers",
            &workers.to_string(),
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        let mut out = String::new();
        assert_eq!(cli::run(&args, &mut out), cli::EXIT_VIOLATED);
        assert_eq!(out, cli_out, "workers={workers}");
    }
}

#[test]
fn pam_spec_round_trips_through_the_pretty_printer() {
    let source = std::fs::read_to_string(spec_path("pam.mcc")).expect("checked in");
    let ast = moccml_lang::parse_spec(&source).expect("parses");
    let printed = ast.to_text();
    let reparsed = moccml_lang::parse_spec(&printed).expect("printed form parses");
    assert_eq!(ast, reparsed);
    // and the round-tripped spec compiles to the same program
    let a = moccml_lang::compile(&ast).expect("compiles");
    let b = moccml_lang::compile(&reparsed).expect("compiles");
    assert_eq!(a.program.template_key(), b.program.template_key());
    assert_eq!(a.props, b.props);
}

#[test]
fn verification_spec_holds_and_conformance_replays() {
    let path = spec_path("verification.mcc");
    let mut out = String::new();
    let code = cli::run(
        &[
            "check".into(),
            path.to_str().expect("utf8").into(),
            "--workers".into(),
            "2".into(),
        ],
        &mut out,
    );
    assert_eq!(code, cli::EXIT_OK, "{out}");
    assert_eq!(out.matches("holds").count(), 3, "{out}");

    let trace = spec_path("verification.trace");
    let mut out = String::new();
    let code = cli::run(
        &[
            "conformance".into(),
            path.to_str().expect("utf8").into(),
            trace.to_str().expect("utf8").into(),
        ],
        &mut out,
    );
    assert_eq!(code, cli::EXIT_OK, "{out}");
    assert!(out.contains("conforms"), "{out}");
}

/// Every lint code in the catalog, in order. The golden defect spec is
/// engineered to trigger all of them at once.
const ALL_CODES: [&str; 14] = [
    "A001", "A002", "A003", "A004", "A005", "A010", "A011", "A012", "A013", "A020", "A021", "A022",
    "A023", "A030",
];

#[test]
fn lint_flags_every_seeded_defect_in_the_golden_spec() {
    let path = defects_path();
    let args: Vec<String> = ["lint", path.to_str().expect("utf8")]
        .iter()
        .map(ToString::to_string)
        .collect();
    let mut out = String::new();
    let code = cli::run(&args, &mut out);
    assert_eq!(code, cli::EXIT_VIOLATED, "A021 is an error:\n{out}");
    for lint in ALL_CODES {
        assert!(out.contains(&format!("[{lint}]")), "missing {lint}:\n{out}");
    }
    assert!(out.contains("1 error(s)"), "{out}");

    // the JSON rendering carries the same codes and nothing else
    let json_args: Vec<String> = ["lint", path.to_str().expect("utf8"), "--format", "json"]
        .iter()
        .map(ToString::to_string)
        .collect();
    let mut json = String::new();
    assert_eq!(cli::run(&json_args, &mut json), cli::EXIT_VIOLATED);
    assert!(json.starts_with('[') && json.ends_with("]\n"), "{json}");
    for lint in ALL_CODES {
        assert!(
            json.contains(&format!("\"code\": \"{lint}\"")),
            "missing {lint} in json:\n{json}"
        );
    }
    assert!(!json.contains("finding(s)"), "no summary line in json");
}

#[test]
fn lint_reports_the_example_specs_clean_under_deny_warnings() {
    for name in ["pam.mcc", "verification.mcc"] {
        let path = spec_path(name);
        let args: Vec<String> = ["lint", path.to_str().expect("utf8"), "--deny", "warnings"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let mut out = String::new();
        let code = cli::run(&args, &mut out);
        assert_eq!(code, cli::EXIT_OK, "{name} must lint clean:\n{out}");
        assert!(out.contains("0 error(s), 0 warning(s)"), "{name}:\n{out}");
    }
}
