//! The [`Constraint`] trait — the common interface of every MoCCML
//! constraint, declarative (CCSL-style) or automata-based.

use crate::error::KernelError;
use crate::formula::StepFormula;
use crate::step::Step;
use std::fmt;

/// Hashable snapshot of a constraint's internal state.
///
/// Exhaustive exploration (Sec. II of the paper: "analysis tools based on
/// the formal semantics for simulation and exhaustive exploration")
/// identifies global states by the tuple of every constraint's state.
/// A `StateKey` is an explicit encoding — automaton current state index
/// plus variable values, or the counters of a declarative relation — so
/// that two global states collide only when genuinely equal.
///
/// # Example
///
/// ```
/// use moccml_kernel::StateKey;
/// let key = StateKey::from_values([1, 42]);
/// assert_eq!(key.values(), &[1, 42]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateKey {
    values: Vec<i64>,
}

impl StateKey {
    /// Creates an empty key (for stateless constraints).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a key from explicit values.
    #[must_use]
    pub fn from_values<I: IntoIterator<Item = i64>>(values: I) -> Self {
        StateKey {
            values: values.into_iter().collect(),
        }
    }

    /// Appends one value.
    pub fn push(&mut self, v: i64) {
        self.values.push(v);
    }

    /// Appends all values of `other`.
    pub fn extend_from(&mut self, other: &StateKey) {
        self.values.extend_from_slice(&other.values);
    }

    /// The encoded values.
    #[must_use]
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// Number of encoded values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the key encodes nothing (stateless constraint).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for StateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.values.iter().map(|v| v.to_string()).collect();
        write!(f, "[{}]", parts.join(","))
    }
}

impl FromIterator<i64> for StateKey {
    fn from_iter<I: IntoIterator<Item = i64>>(iter: I) -> Self {
        StateKey::from_values(iter)
    }
}

/// A constraint over events, the unit of composition of a MoCCML
/// specification.
///
/// Every constraint — a declarative CCSL-style relation, a constraint
/// automaton instance, or a platform restriction — follows the same
/// protocol, directly mirroring Sec. II-C of the paper:
///
/// 1. [`current_formula`](Constraint::current_formula) returns the
///    boolean expression over event variables that the constraint
///    contributes *in its current state*. The specification conjoins the
///    formulas of all constraints; a step is acceptable iff the
///    conjunction is satisfied.
/// 2. When an acceptable step is chosen, [`fire`](Constraint::fire)
///    advances the internal state (automaton transition + actions,
///    counter updates, …).
/// 3. [`state_key`](Constraint::state_key) snapshots the state for the
///    exploration engine, and [`restore`](Constraint::restore) winds it
///    back.
///
/// Implementations must guarantee that the formula of a constraint only
/// mentions events returned by
/// [`constrained_events`](Constraint::constrained_events), and that any
/// step in which none of those events occur is acceptable and leaves the
/// state unchanged (*stuttering*: a constraint never restricts events it
/// does not know about).
///
/// Constraints are `Send + Sync`: all mutation goes through `&mut self`
/// (`fire`/`restore`/`reset`), never interior mutability. This is what
/// lets the engine share one immutable compiled
/// `Program` — including the template specification — across the worker
/// threads of the parallel state-space explorer.
pub trait Constraint: fmt::Debug + Send + Sync {
    /// Human-readable instance name (used in traces and diagnostics).
    fn name(&self) -> &str;

    /// The events this constraint restricts.
    fn constrained_events(&self) -> Vec<crate::EventId>;

    /// Boolean condition on the next step, given the current state.
    fn current_formula(&self) -> StepFormula;

    /// Advances the internal state after `step` was chosen.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::StepRejected`] if `step` violates the
    /// constraint's current formula (the engine never does this; direct
    /// users might).
    fn fire(&mut self, step: &Step) -> Result<(), KernelError>;

    /// Snapshot of the internal state.
    fn state_key(&self) -> StateKey;

    /// Restores a state previously produced by
    /// [`state_key`](Constraint::state_key).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidStateKey`] if `key` does not have
    /// the shape this constraint produces.
    fn restore(&mut self, key: &StateKey) -> Result<(), KernelError>;

    /// Resets to the initial state.
    fn reset(&mut self);

    /// Clones the constraint behind the trait object.
    fn boxed_clone(&self) -> Box<dyn Constraint>;
}

impl Clone for Box<dyn Constraint> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_key_construction() {
        let mut k = StateKey::new();
        assert!(k.is_empty());
        k.push(3);
        k.push(-1);
        assert_eq!(k.values(), &[3, -1]);
        assert_eq!(k.len(), 2);
        assert_eq!(k.to_string(), "[3,-1]");
    }

    #[test]
    fn state_key_extend_and_collect() {
        let a = StateKey::from_values([1, 2]);
        let mut b = StateKey::from_values([0]);
        b.extend_from(&a);
        assert_eq!(b.values(), &[0, 1, 2]);
        let c: StateKey = [5i64, 6].into_iter().collect();
        assert_eq!(c.values(), &[5, 6]);
    }

    #[test]
    fn state_keys_compare_by_content() {
        assert_eq!(StateKey::from_values([1]), StateKey::from_values([1]));
        assert_ne!(StateKey::from_values([1]), StateKey::from_values([2]));
        assert!(StateKey::from_values([1]) < StateKey::from_values([1, 0]));
    }
}
