//! [`Schedule`]: a finite prefix of a run, `σ : N → 2^E`.

use crate::error::KernelError;
use crate::event::{EventId, Universe};
use crate::step::Step;
use std::fmt;

/// A finite prefix of a schedule: the sequence of steps chosen so far.
///
/// The paper defines a schedule as a possibly infinite sequence of steps;
/// simulation and exploration manipulate finite prefixes. `Schedule`
/// stores them and offers the analysis helpers used by the experiments:
/// occurrence counts, parallelism metrics and a textual timing diagram.
///
/// # Example
///
/// ```
/// use moccml_kernel::{Schedule, Step, Universe};
/// let mut u = Universe::new();
/// let a = u.event("a");
/// let mut sched = Schedule::new();
/// sched.push(Step::from_events([a]));
/// sched.push(Step::new());
/// assert_eq!(sched.occurrences(a), 1);
/// assert_eq!(sched.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    steps: Vec<Step>,
}

impl Schedule {
    /// Creates an empty schedule prefix.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a step.
    pub fn push(&mut self, step: Step) {
        self.steps.push(step);
    }

    /// The steps recorded so far.
    #[must_use]
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of steps recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no step has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Iterates over the recorded steps.
    pub fn iter(&self) -> std::slice::Iter<'_, Step> {
        self.steps.iter()
    }

    /// How many times `event` occurred over the whole prefix.
    #[must_use]
    pub fn occurrences(&self, event: EventId) -> usize {
        self.steps.iter().filter(|s| s.contains(event)).count()
    }

    /// Largest number of simultaneous events in one step — the
    /// *attainable parallelism* metric of the PAM experiment.
    #[must_use]
    pub fn max_parallelism(&self) -> usize {
        self.steps.iter().map(Step::len).max().unwrap_or(0)
    }

    /// Mean number of events per step (0.0 for an empty schedule).
    #[must_use]
    pub fn mean_parallelism(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        let total: usize = self.steps.iter().map(Step::len).sum();
        total as f64 / self.steps.len() as f64
    }

    /// Number of steps in which no event occurs.
    #[must_use]
    pub fn idle_steps(&self) -> usize {
        self.steps.iter().filter(|s| s.is_empty()).count()
    }

    /// Index of the first step where `event` occurs, if any.
    #[must_use]
    pub fn first_occurrence(&self, event: EventId) -> Option<usize> {
        self.steps.iter().position(|s| s.contains(event))
    }

    /// Renders a textual timing diagram, one row per event of `universe`
    /// (restricted to events that occur at least once), one column per
    /// step. `X` marks an occurrence, `.` its absence.
    ///
    /// This is the "simulation trace" artefact of the paper's PAM study.
    #[must_use]
    pub fn render_timing_diagram(&self, universe: &Universe) -> String {
        let mut rows = Vec::new();
        let width = universe
            .iter_named()
            .map(|(_, n)| n.len())
            .max()
            .unwrap_or(0);
        for (id, name) in universe.iter_named() {
            if self.occurrences(id) == 0 {
                continue;
            }
            let mut row = format!("{name:width$} |");
            for step in &self.steps {
                row.push(if step.contains(id) { 'X' } else { '.' });
            }
            rows.push(row);
        }
        rows.join("\n")
    }

    /// Projection of the schedule onto a subset of events: each step is
    /// intersected with `events`.
    #[must_use]
    pub fn project(&self, events: &Step) -> Schedule {
        Schedule {
            steps: self.steps.iter().map(|s| s.intersection(events)).collect(),
        }
    }

    /// Serialises the schedule as plain text: one step per line, the
    /// step's event names (from `universe`) separated by single spaces,
    /// an empty step as an empty line. The inverse of
    /// [`parse_lines`](Schedule::parse_lines), so counterexamples and
    /// conformance inputs round-trip through files without serde.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidSpecification`] if any occurring
    /// event's name contains whitespace (such names cannot round-trip
    /// through the whitespace-separated format).
    pub fn to_lines(&self, universe: &Universe) -> Result<String, KernelError> {
        let mut out = String::new();
        for step in &self.steps {
            let mut first = true;
            for event in step {
                let name = universe.name(event);
                if name.contains(char::is_whitespace) {
                    return Err(KernelError::InvalidSpecification {
                        reason: format!("event name '{name}' contains whitespace"),
                    });
                }
                if !first {
                    out.push(' ');
                }
                out.push_str(name);
                first = false;
            }
            out.push('\n');
        }
        Ok(out)
    }

    /// Parses the textual format of [`to_lines`](Schedule::to_lines):
    /// one step per line, whitespace-separated event names looked up in
    /// `universe`, blank lines as empty (stuttering) steps. A trailing
    /// final newline does not add a step.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::ScheduleParse`] naming the 1-based line of
    /// the first event name `universe` does not know.
    pub fn parse_lines(text: &str, universe: &Universe) -> Result<Schedule, KernelError> {
        let mut steps = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let mut step = Step::new();
            for name in line.split_whitespace() {
                let event = universe
                    .lookup(name)
                    .ok_or_else(|| KernelError::ScheduleParse {
                        line: i + 1,
                        reason: format!("unknown event '{name}'"),
                    })?;
                step.insert(event);
            }
            steps.push(step);
        }
        Ok(Schedule { steps })
    }
}

impl Extend<Step> for Schedule {
    fn extend<I: IntoIterator<Item = Step>>(&mut self, iter: I) {
        self.steps.extend(iter);
    }
}

impl FromIterator<Step> for Schedule {
    fn from_iter<I: IntoIterator<Item = Step>>(iter: I) -> Self {
        Schedule {
            steps: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Schedule {
    type Item = &'a Step;
    type IntoIter = std::slice::Iter<'a, Step>;
    fn into_iter(self) -> Self::IntoIter {
        self.steps.iter()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.steps.iter().map(|s| s.to_string()).collect();
        write!(f, "{}", parts.join(" ; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe3() -> (Universe, EventId, EventId, EventId) {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        let c = u.event("c");
        (u, a, b, c)
    }

    #[test]
    fn occurrence_counting() {
        let (_, a, b, _) = universe3();
        let sched: Schedule = vec![
            Step::from_events([a]),
            Step::from_events([a, b]),
            Step::new(),
        ]
        .into_iter()
        .collect();
        assert_eq!(sched.occurrences(a), 2);
        assert_eq!(sched.occurrences(b), 1);
        assert_eq!(sched.idle_steps(), 1);
        assert_eq!(sched.first_occurrence(b), Some(1));
    }

    #[test]
    fn parallelism_metrics() {
        let (_, a, b, c) = universe3();
        let mut sched = Schedule::new();
        assert_eq!(sched.max_parallelism(), 0);
        assert_eq!(sched.mean_parallelism(), 0.0);
        sched.push(Step::from_events([a, b, c]));
        sched.push(Step::from_events([a]));
        assert_eq!(sched.max_parallelism(), 3);
        assert!((sched.mean_parallelism() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn timing_diagram_marks_occurrences() {
        let (u, a, b, _) = universe3();
        let sched: Schedule = vec![Step::from_events([a]), Step::from_events([b])]
            .into_iter()
            .collect();
        let diagram = sched.render_timing_diagram(&u);
        assert!(diagram.contains("a |X."));
        assert!(diagram.contains("b |.X"));
        // c never occurs, so it has no row
        assert!(!diagram.contains("c |"));
    }

    #[test]
    fn text_round_trip_preserves_steps() {
        let (u, a, b, c) = universe3();
        let sched: Schedule = vec![
            Step::from_events([a, c]),
            Step::new(),
            Step::from_events([b]),
        ]
        .into_iter()
        .collect();
        let text = sched.to_lines(&u).expect("plain names serialise");
        assert_eq!(text, "a c\n\nb\n");
        let parsed = Schedule::parse_lines(&text, &u).expect("own output parses");
        assert_eq!(parsed, sched);
        // the empty schedule round-trips to the empty string
        let empty = Schedule::new();
        let text = empty.to_lines(&u).expect("serialises");
        assert_eq!(text, "");
        assert_eq!(Schedule::parse_lines(&text, &u).expect("parses"), empty);
    }

    #[test]
    fn parse_lines_tolerates_extra_whitespace_and_no_final_newline() {
        let (u, a, b, _) = universe3();
        let parsed = Schedule::parse_lines("  a   b \nb", &u).expect("parses");
        assert_eq!(parsed.steps()[0], Step::from_events([a, b]));
        assert_eq!(parsed.steps()[1], Step::from_events([b]));
        assert_eq!(parsed.len(), 2);
    }

    #[test]
    fn parse_lines_reports_unknown_events_with_line_numbers() {
        let (u, _, _, _) = universe3();
        let err = Schedule::parse_lines("a\nbogus b\n", &u).expect_err("unknown event");
        match err {
            KernelError::ScheduleParse { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("bogus"));
            }
            other => panic!("wrong error: {other:?}"),
        }
    }

    #[test]
    fn to_lines_rejects_whitespace_names() {
        let mut u = Universe::new();
        let weird = u.event("has space");
        let sched: Schedule = vec![Step::from_events([weird])].into_iter().collect();
        assert!(sched.to_lines(&u).is_err());
        // a schedule never firing the hostile event still serialises
        let ok: Schedule = vec![Step::new()].into_iter().collect();
        assert_eq!(ok.to_lines(&u).expect("serialises"), "\n");
    }

    #[test]
    fn projection_restricts_steps() {
        let (_, a, b, c) = universe3();
        let sched: Schedule = vec![Step::from_events([a, b]), Step::from_events([c])]
            .into_iter()
            .collect();
        let proj = sched.project(&Step::from_events([a]));
        assert_eq!(proj.steps()[0], Step::from_events([a]));
        assert!(proj.steps()[1].is_empty());
    }
}
