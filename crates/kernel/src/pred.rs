//! [`StepPred`]: boolean predicates over a single [`Step`] — the atoms
//! the verification layer's temporal properties quantify over.
//!
//! A [`StepFormula`](crate::StepFormula) is what a *constraint* denotes
//! (it restricts which steps may fire); a `StepPred` is what an
//! *observer* asks about a step that did fire. The two are kept apart on
//! purpose: predicates never participate in solving, so they stay a
//! plain recursive evaluator with no partial-evaluation machinery.

use crate::event::{EventId, Universe};
use crate::step::Step;
use std::fmt;

/// A boolean predicate over one step of a schedule.
///
/// The atoms mirror the property classes of CCSL-style specification
/// checking: an event occurring, two events excluding each other within
/// an instant, and one event's occurrence implying another's
/// (sub-clocking). [`And`](StepPred::And) / [`Or`](StepPred::Or) /
/// [`Not`](StepPred::Not) close them under boolean combination.
///
/// # Example
///
/// ```
/// use moccml_kernel::{Step, StepPred, Universe};
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let pred = StepPred::implies(a, b); // a ⇒ b within one step
/// assert!(pred.eval(&Step::from_events([a, b])));
/// assert!(pred.eval(&Step::new()));
/// assert!(!pred.eval(&Step::from_events([a])));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepPred {
    /// The event occurs in the step.
    Fired(EventId),
    /// The two events do not occur together in the step.
    Excludes(EventId, EventId),
    /// If the first event occurs, the second does too (per-step
    /// sub-clocking / implication).
    Implies(EventId, EventId),
    /// Both operands hold.
    And(Box<StepPred>, Box<StepPred>),
    /// At least one operand holds.
    Or(Box<StepPred>, Box<StepPred>),
    /// The operand does not hold.
    Not(Box<StepPred>),
}

impl StepPred {
    /// Convenience constructor for [`StepPred::Fired`].
    #[must_use]
    pub fn fired(event: EventId) -> Self {
        StepPred::Fired(event)
    }

    /// Convenience constructor for [`StepPred::Excludes`].
    #[must_use]
    pub fn excludes(a: EventId, b: EventId) -> Self {
        StepPred::Excludes(a, b)
    }

    /// Convenience constructor for [`StepPred::Implies`].
    #[must_use]
    pub fn implies(premise: EventId, conclusion: EventId) -> Self {
        StepPred::Implies(premise, conclusion)
    }

    /// Convenience constructor for [`StepPred::And`].
    #[must_use]
    pub fn and(a: StepPred, b: StepPred) -> Self {
        StepPred::And(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for [`StepPred::Or`].
    #[must_use]
    pub fn or(a: StepPred, b: StepPred) -> Self {
        StepPred::Or(Box::new(a), Box::new(b))
    }

    /// Convenience constructor for [`StepPred::Not`].
    #[must_use]
    pub fn negate(p: StepPred) -> Self {
        StepPred::Not(Box::new(p))
    }

    /// Evaluates the predicate on `step`.
    #[must_use]
    pub fn eval(&self, step: &Step) -> bool {
        match self {
            StepPred::Fired(e) => step.contains(*e),
            StepPred::Excludes(a, b) => !(step.contains(*a) && step.contains(*b)),
            StepPred::Implies(a, b) => !step.contains(*a) || step.contains(*b),
            StepPred::And(a, b) => a.eval(step) && b.eval(step),
            StepPred::Or(a, b) => a.eval(step) || b.eval(step),
            StepPred::Not(p) => !p.eval(step),
        }
    }

    /// All events the predicate mentions, as a [`Step`] bitset.
    #[must_use]
    pub fn events(&self) -> Step {
        match self {
            StepPred::Fired(e) => Step::from_events([*e]),
            StepPred::Excludes(a, b) | StepPred::Implies(a, b) => Step::from_events([*a, *b]),
            StepPred::And(a, b) | StepPred::Or(a, b) => a.events().union(&b.events()),
            StepPred::Not(p) => p.events(),
        }
    }

    /// Renders the predicate with event names from `universe`.
    #[must_use]
    pub fn display(&self, universe: &Universe) -> String {
        match self {
            StepPred::Fired(e) => universe.name(*e).to_owned(),
            StepPred::Excludes(a, b) => {
                format!("{} # {}", universe.name(*a), universe.name(*b))
            }
            StepPred::Implies(a, b) => {
                format!("{} => {}", universe.name(*a), universe.name(*b))
            }
            StepPred::And(a, b) => format!("({} && {})", a.display(universe), b.display(universe)),
            StepPred::Or(a, b) => format!("({} || {})", a.display(universe), b.display(universe)),
            StepPred::Not(p) => format!("!{}", p.display(universe)),
        }
    }
}

impl fmt::Display for StepPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepPred::Fired(e) => write!(f, "{e}"),
            StepPred::Excludes(a, b) => write!(f, "{a} # {b}"),
            StepPred::Implies(a, b) => write!(f, "{a} => {b}"),
            StepPred::And(a, b) => write!(f, "({a} && {b})"),
            StepPred::Or(a, b) => write!(f, "({a} || {b})"),
            StepPred::Not(p) => write!(f, "!{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe3() -> (Universe, EventId, EventId, EventId) {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        let c = u.event("c");
        (u, a, b, c)
    }

    #[test]
    fn atoms_evaluate() {
        let (_, a, b, _) = universe3();
        let ab = Step::from_events([a, b]);
        let only_a = Step::from_events([a]);
        assert!(StepPred::fired(a).eval(&only_a));
        assert!(!StepPred::fired(b).eval(&only_a));
        assert!(!StepPred::excludes(a, b).eval(&ab));
        assert!(StepPred::excludes(a, b).eval(&only_a));
        assert!(StepPred::excludes(a, b).eval(&Step::new()));
        assert!(StepPred::implies(a, b).eval(&ab));
        assert!(!StepPred::implies(a, b).eval(&only_a));
    }

    #[test]
    fn combinators_evaluate() {
        let (_, a, b, c) = universe3();
        let step = Step::from_events([a, c]);
        let p = StepPred::and(StepPred::fired(a), StepPred::negate(StepPred::fired(b)));
        assert!(p.eval(&step));
        let q = StepPred::or(StepPred::fired(b), StepPred::fired(c));
        assert!(q.eval(&step));
        assert!(!StepPred::negate(q).eval(&step));
    }

    #[test]
    fn events_collects_all_mentions() {
        let (_, a, b, c) = universe3();
        let p = StepPred::or(
            StepPred::and(StepPred::fired(a), StepPred::excludes(b, c)),
            StepPred::negate(StepPred::implies(a, c)),
        );
        assert_eq!(p.events(), Step::from_events([a, b, c]));
    }

    #[test]
    fn display_uses_names() {
        let (u, a, b, _) = universe3();
        assert_eq!(StepPred::implies(a, b).display(&u), "a => b");
        assert_eq!(
            StepPred::negate(StepPred::excludes(a, b)).display(&u),
            "!a # b"
        );
        assert_eq!(StepPred::fired(a).to_string(), "e0");
    }
}
