//! [`StepFormula`]: boolean formulas over event occurrences.

use crate::event::EventId;
use crate::step::Step;
use std::fmt;

/// A boolean formula over event-occurrence variables.
///
/// Sec. II-C of the paper gives the semantics of a MoCCML specification
/// as a boolean expression over `E`, a set of boolean variables in
/// bijection with the events `E`: a variable is `true` iff its event
/// occurs in the current step. Each constraint contributes one formula;
/// the specification is their conjunction.
///
/// Besides full evaluation against a [`Step`], the formula supports
/// *partial evaluation* against a partial assignment
/// ([`StepFormula::eval_partial`]), which the step solver uses to prune
/// the `2^n` search over candidate steps.
///
/// # Example
///
/// ```
/// use moccml_kernel::{Step, StepFormula, Universe};
/// let mut u = Universe::new();
/// let w = u.event("write");
/// let r = u.event("read");
/// // Fig. 3, state S1 with both guards true:
/// // (write ∧ ¬read) ∨ (read ∧ ¬write)
/// let f = StepFormula::or(vec![
///     StepFormula::and(vec![StepFormula::event(w), StepFormula::not(StepFormula::event(r))]),
///     StepFormula::and(vec![StepFormula::event(r), StepFormula::not(StepFormula::event(w))]),
/// ]);
/// assert!(f.eval(&Step::from_events([w])));
/// assert!(!f.eval(&Step::from_events([w, r])));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepFormula {
    /// Always satisfied.
    True,
    /// Never satisfied.
    False,
    /// Satisfied iff the event occurs in the step.
    Event(EventId),
    /// Negation.
    Not(Box<StepFormula>),
    /// N-ary conjunction (empty conjunction is `True`).
    And(Vec<StepFormula>),
    /// N-ary disjunction (empty disjunction is `False`).
    Or(Vec<StepFormula>),
}

/// Result of a three-valued partial evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ternary {
    /// Formula is satisfied whatever the unassigned events.
    True,
    /// Formula is violated whatever the unassigned events.
    False,
    /// Outcome still depends on unassigned events.
    Unknown,
}

impl StepFormula {
    /// The formula satisfied exactly when `event` occurs.
    #[must_use]
    pub fn event(event: EventId) -> Self {
        StepFormula::Event(event)
    }

    /// Negation of `f`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: StepFormula) -> Self {
        StepFormula::Not(Box::new(f))
    }

    /// Conjunction of `fs` (empty ⇒ `True`).
    #[must_use]
    pub fn and(fs: Vec<StepFormula>) -> Self {
        StepFormula::And(fs)
    }

    /// Disjunction of `fs` (empty ⇒ `False`).
    #[must_use]
    pub fn or(fs: Vec<StepFormula>) -> Self {
        StepFormula::Or(fs)
    }

    /// `a ⇒ b`, the sub-event relation of Sec. II-C.
    #[must_use]
    pub fn implies(a: StepFormula, b: StepFormula) -> Self {
        StepFormula::Or(vec![StepFormula::not(a), b])
    }

    /// `a ⇔ b` (coincidence).
    #[must_use]
    pub fn iff(a: StepFormula, b: StepFormula) -> Self {
        StepFormula::Or(vec![
            StepFormula::And(vec![a.clone(), b.clone()]),
            StepFormula::And(vec![StepFormula::not(a), StepFormula::not(b)]),
        ])
    }

    /// Conjunction requiring all of `events` to occur.
    #[must_use]
    pub fn all_of<I: IntoIterator<Item = EventId>>(events: I) -> Self {
        StepFormula::And(events.into_iter().map(StepFormula::Event).collect())
    }

    /// Conjunction forbidding every one of `events`.
    #[must_use]
    pub fn none_of<I: IntoIterator<Item = EventId>>(events: I) -> Self {
        StepFormula::And(
            events
                .into_iter()
                .map(|e| StepFormula::not(StepFormula::Event(e)))
                .collect(),
        )
    }

    /// Fully evaluates the formula against a step.
    #[must_use]
    pub fn eval(&self, step: &Step) -> bool {
        match self {
            StepFormula::True => true,
            StepFormula::False => false,
            StepFormula::Event(e) => step.contains(*e),
            StepFormula::Not(f) => !f.eval(step),
            StepFormula::And(fs) => fs.iter().all(|f| f.eval(step)),
            StepFormula::Or(fs) => fs.iter().any(|f| f.eval(step)),
        }
    }

    /// Partially evaluates against `assigned` events with values given by
    /// `value`: an event not in `assigned` is *undecided*.
    ///
    /// The solver assigns events one by one; `Ternary::False` prunes the
    /// whole subtree of candidate steps.
    #[must_use]
    pub fn eval_partial(&self, assigned: &Step, value: &Step) -> Ternary {
        match self {
            StepFormula::True => Ternary::True,
            StepFormula::False => Ternary::False,
            StepFormula::Event(e) => {
                if assigned.contains(*e) {
                    if value.contains(*e) {
                        Ternary::True
                    } else {
                        Ternary::False
                    }
                } else {
                    Ternary::Unknown
                }
            }
            StepFormula::Not(f) => match f.eval_partial(assigned, value) {
                Ternary::True => Ternary::False,
                Ternary::False => Ternary::True,
                Ternary::Unknown => Ternary::Unknown,
            },
            StepFormula::And(fs) => {
                let mut out = Ternary::True;
                for f in fs {
                    match f.eval_partial(assigned, value) {
                        Ternary::False => return Ternary::False,
                        Ternary::Unknown => out = Ternary::Unknown,
                        Ternary::True => {}
                    }
                }
                out
            }
            StepFormula::Or(fs) => {
                let mut out = Ternary::False;
                for f in fs {
                    match f.eval_partial(assigned, value) {
                        Ternary::True => return Ternary::True,
                        Ternary::Unknown => out = Ternary::Unknown,
                        Ternary::False => {}
                    }
                }
                out
            }
        }
    }

    /// Collects every event mentioned by the formula into `out`.
    pub fn collect_events(&self, out: &mut Step) {
        match self {
            StepFormula::True | StepFormula::False => {}
            StepFormula::Event(e) => {
                out.insert(*e);
            }
            StepFormula::Not(f) => f.collect_events(out),
            StepFormula::And(fs) | StepFormula::Or(fs) => {
                for f in fs {
                    f.collect_events(out);
                }
            }
        }
    }

    /// The set of events mentioned by the formula.
    #[must_use]
    pub fn events(&self) -> Step {
        let mut s = Step::new();
        self.collect_events(&mut s);
        s
    }

    /// Structural simplification: constant folding, flattening of nested
    /// `And`/`Or`, double-negation elimination.
    ///
    /// Simplification preserves the satisfaction relation but not the
    /// syntax; the solver applies it once per configuration.
    #[must_use]
    pub fn simplify(self) -> StepFormula {
        match self {
            StepFormula::Not(f) => match f.simplify() {
                StepFormula::True => StepFormula::False,
                StepFormula::False => StepFormula::True,
                StepFormula::Not(inner) => *inner,
                g => StepFormula::Not(Box::new(g)),
            },
            StepFormula::And(fs) => {
                let mut out = Vec::with_capacity(fs.len());
                for f in fs {
                    match f.simplify() {
                        StepFormula::True => {}
                        StepFormula::False => return StepFormula::False,
                        StepFormula::And(inner) => out.extend(inner),
                        g => out.push(g),
                    }
                }
                match out.len() {
                    0 => StepFormula::True,
                    1 => out.pop().expect("len checked"),
                    _ => StepFormula::And(out),
                }
            }
            StepFormula::Or(fs) => {
                let mut out = Vec::with_capacity(fs.len());
                for f in fs {
                    match f.simplify() {
                        StepFormula::False => {}
                        StepFormula::True => return StepFormula::True,
                        StepFormula::Or(inner) => out.extend(inner),
                        g => out.push(g),
                    }
                }
                match out.len() {
                    0 => StepFormula::False,
                    1 => out.pop().expect("len checked"),
                    _ => StepFormula::Or(out),
                }
            }
            other => other,
        }
    }
}

impl fmt::Display for StepFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepFormula::True => write!(f, "⊤"),
            StepFormula::False => write!(f, "⊥"),
            StepFormula::Event(e) => write!(f, "{e}"),
            StepFormula::Not(g) => write!(f, "¬{g}"),
            StepFormula::And(fs) => {
                let parts: Vec<String> = fs.iter().map(|g| g.to_string()).collect();
                write!(f, "({})", parts.join(" ∧ "))
            }
            StepFormula::Or(fs) => {
                let parts: Vec<String> = fs.iter().map(|g| g.to_string()).collect();
                write!(f, "({})", parts.join(" ∨ "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    fn setup() -> (Universe, EventId, EventId) {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        (u, a, b)
    }

    #[test]
    fn implication_matches_subevent_semantics() {
        let (_, a, b) = setup();
        let f = StepFormula::implies(StepFormula::event(a), StepFormula::event(b));
        assert!(f.eval(&Step::new()));
        assert!(f.eval(&Step::from_events([b])));
        assert!(f.eval(&Step::from_events([a, b])));
        assert!(!f.eval(&Step::from_events([a])));
    }

    #[test]
    fn iff_is_coincidence() {
        let (_, a, b) = setup();
        let f = StepFormula::iff(StepFormula::event(a), StepFormula::event(b));
        assert!(f.eval(&Step::new()));
        assert!(f.eval(&Step::from_events([a, b])));
        assert!(!f.eval(&Step::from_events([a])));
        assert!(!f.eval(&Step::from_events([b])));
    }

    #[test]
    fn partial_eval_three_values() {
        let (_, a, b) = setup();
        let f = StepFormula::and(vec![StepFormula::event(a), StepFormula::event(b)]);
        let mut assigned = Step::new();
        let mut value = Step::new();
        assert_eq!(f.eval_partial(&assigned, &value), Ternary::Unknown);
        assigned.insert(a);
        // a assigned false: conjunction already fails
        assert_eq!(f.eval_partial(&assigned, &value), Ternary::False);
        value.insert(a);
        assert_eq!(f.eval_partial(&assigned, &value), Ternary::Unknown);
        assigned.insert(b);
        value.insert(b);
        assert_eq!(f.eval_partial(&assigned, &value), Ternary::True);
    }

    #[test]
    fn simplify_folds_constants() {
        let (_, a, _) = setup();
        let f = StepFormula::and(vec![
            StepFormula::True,
            StepFormula::or(vec![StepFormula::False, StepFormula::event(a)]),
        ]);
        assert_eq!(f.simplify(), StepFormula::event(a));

        let g = StepFormula::and(vec![StepFormula::False, StepFormula::event(a)]);
        assert_eq!(g.simplify(), StepFormula::False);

        let h = StepFormula::not(StepFormula::not(StepFormula::event(a)));
        assert_eq!(h.simplify(), StepFormula::event(a));
    }

    #[test]
    fn simplify_flattens_nested() {
        let (_, a, b) = setup();
        let f = StepFormula::and(vec![
            StepFormula::and(vec![StepFormula::event(a)]),
            StepFormula::event(b),
        ]);
        assert_eq!(
            f.simplify(),
            StepFormula::and(vec![StepFormula::event(a), StepFormula::event(b)])
        );
    }

    #[test]
    fn events_collects_all_mentions() {
        let (_, a, b) = setup();
        let f = StepFormula::or(vec![
            StepFormula::not(StepFormula::event(a)),
            StepFormula::and(vec![StepFormula::event(b)]),
        ]);
        let evs = f.events();
        assert!(evs.contains(a) && evs.contains(b));
        assert_eq!(evs.len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let (_, a, b) = setup();
        let f = StepFormula::and(vec![
            StepFormula::event(a),
            StepFormula::not(StepFormula::event(b)),
        ]);
        assert_eq!(f.to_string(), "(e0 ∧ ¬e1)");
    }

    #[test]
    fn empty_connectives() {
        assert!(StepFormula::and(vec![]).eval(&Step::new()));
        assert!(!StepFormula::or(vec![]).eval(&Step::new()));
    }
}
