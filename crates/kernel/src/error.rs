//! Error type shared by the kernel and the crates built on top of it.

use std::error::Error;
use std::fmt;

/// Errors raised by kernel-level operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KernelError {
    /// A step was fired against a constraint whose current formula it
    /// violates.
    StepRejected {
        /// Name of the rejecting constraint.
        constraint: String,
        /// Rendering of the offending step.
        step: String,
    },
    /// A [`StateKey`](crate::StateKey) had the wrong shape for the
    /// constraint it was restored into.
    InvalidStateKey {
        /// Name of the constraint.
        constraint: String,
        /// What was wrong.
        reason: String,
    },
    /// An event id did not belong to the expected universe.
    UnknownEvent {
        /// Rendering of the event.
        event: String,
    },
    /// A specification was built inconsistently (duplicate names, …).
    InvalidSpecification {
        /// What was wrong.
        reason: String,
    },
    /// A textual schedule could not be parsed back into steps.
    ScheduleParse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::StepRejected { constraint, step } => {
                write!(f, "step {step} rejected by constraint `{constraint}`")
            }
            KernelError::InvalidStateKey { constraint, reason } => {
                write!(f, "invalid state key for `{constraint}`: {reason}")
            }
            KernelError::UnknownEvent { event } => {
                write!(f, "unknown event {event}")
            }
            KernelError::InvalidSpecification { reason } => {
                write!(f, "invalid specification: {reason}")
            }
            KernelError::ScheduleParse { line, reason } => {
                write!(f, "schedule parse error at line {line}: {reason}")
            }
        }
    }
}

impl Error for KernelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = KernelError::StepRejected {
            constraint: "place".into(),
            step: "{read}".into(),
        };
        assert_eq!(e.to_string(), "step {read} rejected by constraint `place`");
        let e = KernelError::InvalidSpecification {
            reason: "empty".into(),
        };
        assert!(e.to_string().contains("empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<KernelError>();
    }
}
