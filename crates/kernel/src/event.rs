//! Events and the interning [`Universe`] that names them.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a discrete event of a MoCCML specification.
///
/// Events are the "clocks" of the concurrency model: the only observable
/// things that happen during a run. An `EventId` is an index into the
/// [`Universe`] that created it; it is cheap to copy and compare.
///
/// # Example
///
/// ```
/// use moccml_kernel::Universe;
/// let mut u = Universe::new();
/// let start = u.event("agent.start");
/// assert_eq!(u.name(start), "agent.start");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub(crate) u32);

impl EventId {
    /// Returns the dense index of this event inside its universe.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EventId` from a raw dense index.
    ///
    /// Mostly useful for tables indexed by event; the caller is
    /// responsible for the index denoting an event of the intended
    /// [`Universe`].
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        EventId(u32::try_from(index).expect("event index fits in u32"))
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An interning registry of named events.
///
/// Every event of a specification is registered exactly once; asking for
/// the same name twice returns the same [`EventId`]. The universe is the
/// single source of truth for event naming when rendering traces.
///
/// # Example
///
/// ```
/// use moccml_kernel::Universe;
/// let mut u = Universe::new();
/// let a = u.event("a");
/// let a2 = u.event("a");
/// assert_eq!(a, a2);
/// assert_eq!(u.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Universe {
    names: Vec<String>,
    by_name: HashMap<String, EventId>,
}

impl Universe {
    /// Creates an empty universe.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the event named `name`, registering it on first use.
    pub fn event(&mut self, name: &str) -> EventId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = EventId(u32::try_from(self.names.len()).expect("fewer than 2^32 events"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks an event up by name without registering it.
    #[must_use]
    pub fn lookup(&self, name: &str) -> Option<EventId> {
        self.by_name.get(name).copied()
    }

    /// Returns the name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this universe.
    #[must_use]
    pub fn name(&self, id: EventId) -> &str {
        &self.names[id.index()]
    }

    /// Number of registered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no event has been registered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all registered events in registration order.
    pub fn iter(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.names.len()).map(EventId::from_index)
    }

    /// Iterates over `(id, name)` pairs in registration order.
    pub fn iter_named(&self) -> impl Iterator<Item = (EventId, &str)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (EventId::from_index(i), n.as_str()))
    }
}

impl fmt::Display for Universe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Universe({} events)", self.names.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        assert_ne!(a, b);
        assert_eq!(u.event("a"), a);
        assert_eq!(u.len(), 2);
    }

    #[test]
    fn lookup_does_not_register() {
        let u = Universe::new();
        assert_eq!(u.lookup("missing"), None);
        assert!(u.is_empty());
    }

    #[test]
    fn names_round_trip() {
        let mut u = Universe::new();
        let id = u.event("place.read");
        assert_eq!(u.name(id), "place.read");
        assert_eq!(u.lookup("place.read"), Some(id));
    }

    #[test]
    fn iteration_order_is_registration_order() {
        let mut u = Universe::new();
        let ids: Vec<_> = ["x", "y", "z"].iter().map(|n| u.event(n)).collect();
        let iterated: Vec<_> = u.iter().collect();
        assert_eq!(ids, iterated);
        let names: Vec<_> = u.iter_named().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(names, vec!["x", "y", "z"]);
    }

    #[test]
    fn event_id_display_and_index() {
        let id = EventId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "e7");
    }
}
