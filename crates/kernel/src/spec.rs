//! [`Specification`]: a universe of events plus a conjunction of
//! constraints — the paper's *execution model*.

use crate::constraint::{Constraint, StateKey};
use crate::error::KernelError;
use crate::event::{EventId, Universe};
use crate::formula::StepFormula;
use crate::step::Step;

/// An executable MoCCML specification: events plus constraints.
///
/// In the paper's big picture (Fig. 1), instantiating the MoCC
/// constraints over a specific model yields the *execution model*, "a
/// symbolic representation of all the acceptable schedules". This type is
/// that execution model: it owns the [`Universe`] of events and the bag
/// of [`Constraint`] instances, and exposes the conjunction semantics of
/// Sec. II-C through [`Specification::conjunction`].
///
/// The engine crate drives it: enumerate acceptable steps, pick one,
/// [`fire`](Specification::fire) it, repeat.
///
/// # Example
///
/// ```
/// use moccml_kernel::{Specification, Universe};
/// let mut u = Universe::new();
/// u.event("a");
/// let spec = Specification::new("demo", u);
/// assert_eq!(spec.universe().len(), 1);
/// assert!(spec.constraints().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Specification {
    name: String,
    universe: Universe,
    constraints: Vec<Box<dyn Constraint>>,
}

impl Specification {
    /// Creates a specification with no constraints over `universe`.
    #[must_use]
    pub fn new(name: &str, universe: Universe) -> Self {
        Specification {
            name: name.to_owned(),
            universe,
            constraints: Vec::new(),
        }
    }

    /// The specification's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The event universe.
    #[must_use]
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Mutable access to the universe (to register late events).
    pub fn universe_mut(&mut self) -> &mut Universe {
        &mut self.universe
    }

    /// Adds a constraint to the conjunction.
    pub fn add_constraint(&mut self, constraint: Box<dyn Constraint>) {
        self.constraints.push(constraint);
    }

    /// The installed constraints.
    #[must_use]
    pub fn constraints(&self) -> &[Box<dyn Constraint>] {
        &self.constraints
    }

    /// Number of installed constraints.
    #[must_use]
    pub fn constraint_count(&self) -> usize {
        self.constraints.len()
    }

    /// The conjunction of every constraint's current formula —
    /// the boolean expression whose models are the acceptable next steps
    /// (Sec. II-C: "their boolean expressions are put in conjunction").
    #[must_use]
    pub fn conjunction(&self) -> StepFormula {
        StepFormula::And(
            self.constraints
                .iter()
                .map(|c| c.current_formula())
                .collect(),
        )
        .simplify()
    }

    /// Per-constraint lowered formulas, in constraint order: each
    /// constraint's [`current_formula`](Constraint::current_formula),
    /// structurally simplified.
    ///
    /// A step satisfies [`conjunction`](Specification::conjunction) iff
    /// it satisfies every formula of this vector — the engine's
    /// compiled `Program` memoises these per constraint (keyed by the
    /// local [`state_key`](Constraint::state_key)) so the lowering
    /// happens once per reached constraint state instead of once per
    /// query, shared across all of its cursors.
    #[must_use]
    pub fn lowered_formulas(&self) -> Vec<StepFormula> {
        self.constraints
            .iter()
            .map(|c| c.current_formula().simplify())
            .collect()
    }

    /// Per-constraint state keys, in constraint order — the same
    /// snapshots [`state_key`](Specification::state_key) concatenates,
    /// but kept separate so a caller can detect *which* constraints
    /// changed state.
    #[must_use]
    pub fn constraint_state_keys(&self) -> Vec<StateKey> {
        self.constraints.iter().map(|c| c.state_key()).collect()
    }

    /// Per-constraint event footprints, in constraint order: the
    /// [`constrained_events`](Constraint::constrained_events) of each
    /// constraint as a [`Step`] bitset.
    ///
    /// This is the raw material of cone-of-influence slicing: two
    /// constraints interact only if their footprints intersect, because
    /// the stuttering contract makes every constraint indifferent to
    /// steps over foreign events.
    #[must_use]
    pub fn constraint_footprints(&self) -> Vec<Step> {
        self.constraints
            .iter()
            .map(|c| Step::from_events(c.constrained_events()))
            .collect()
    }

    /// The set of events restricted by at least one constraint.
    ///
    /// Events outside this set are *free*: nothing ever forbids or
    /// requires them, so the solver handles them separately (each free
    /// event doubles the acceptable-step count without affecting any
    /// constraint state).
    #[must_use]
    pub fn constrained_events(&self) -> Step {
        let mut s = Step::new();
        for c in &self.constraints {
            s.extend(c.constrained_events());
        }
        s
    }

    /// Events of the universe that no constraint mentions.
    #[must_use]
    pub fn free_events(&self) -> Vec<EventId> {
        let constrained = self.constrained_events();
        self.universe
            .iter()
            .filter(|e| !constrained.contains(*e))
            .collect()
    }

    /// Whether `step` satisfies every constraint in the current state.
    #[must_use]
    pub fn accepts(&self, step: &Step) -> bool {
        self.constraints
            .iter()
            .all(|c| c.current_formula().eval(step))
    }

    /// Fires `step`: advances every constraint's state.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::StepRejected`] (from the first rejecting
    /// constraint) if `step` is not acceptable; in that case constraints
    /// already advanced are *not* rolled back, so callers should check
    /// [`accepts`](Specification::accepts) first or treat the
    /// specification as poisoned on error.
    pub fn fire(&mut self, step: &Step) -> Result<(), KernelError> {
        for c in &mut self.constraints {
            c.fire(step)?;
        }
        Ok(())
    }

    /// Snapshot of the global state: concatenation of every constraint's
    /// state key, prefixed by its length for unambiguous restoration.
    #[must_use]
    pub fn state_key(&self) -> StateKey {
        let mut key = StateKey::new();
        for c in &self.constraints {
            let k = c.state_key();
            key.push(i64::try_from(k.len()).expect("state key length fits i64"));
            key.extend_from(&k);
        }
        key
    }

    /// Restores a global state produced by
    /// [`state_key`](Specification::state_key).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidStateKey`] if the key does not match
    /// the current constraint population.
    pub fn restore(&mut self, key: &StateKey) -> Result<(), KernelError> {
        let values = key.values();
        let mut cursor = 0usize;
        for c in &mut self.constraints {
            let len = *values
                .get(cursor)
                .ok_or_else(|| KernelError::InvalidStateKey {
                    constraint: c.name().to_owned(),
                    reason: "global key too short".to_owned(),
                })?;
            cursor += 1;
            let len = usize::try_from(len).map_err(|_| KernelError::InvalidStateKey {
                constraint: c.name().to_owned(),
                reason: "negative length prefix".to_owned(),
            })?;
            let end = cursor + len;
            let slice = values
                .get(cursor..end)
                .ok_or_else(|| KernelError::InvalidStateKey {
                    constraint: c.name().to_owned(),
                    reason: "global key too short".to_owned(),
                })?;
            c.restore(&StateKey::from_values(slice.iter().copied()))?;
            cursor = end;
        }
        if cursor != values.len() {
            return Err(KernelError::InvalidStateKey {
                constraint: self.name.clone(),
                reason: "trailing values in global key".to_owned(),
            });
        }
        Ok(())
    }

    /// Resets every constraint to its initial state.
    pub fn reset(&mut self) {
        for c in &mut self.constraints {
            c.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal stateful test constraint: allows `e` only `budget` times.
    #[derive(Debug, Clone)]
    struct Budget {
        name: String,
        event: EventId,
        budget: i64,
        used: i64,
    }

    impl Constraint for Budget {
        fn name(&self) -> &str {
            &self.name
        }
        fn constrained_events(&self) -> Vec<EventId> {
            vec![self.event]
        }
        fn current_formula(&self) -> StepFormula {
            if self.used < self.budget {
                StepFormula::True
            } else {
                StepFormula::not(StepFormula::event(self.event))
            }
        }
        fn fire(&mut self, step: &Step) -> Result<(), KernelError> {
            if !self.current_formula().eval(step) {
                return Err(KernelError::StepRejected {
                    constraint: self.name.clone(),
                    step: step.to_string(),
                });
            }
            if step.contains(self.event) {
                self.used += 1;
            }
            Ok(())
        }
        fn state_key(&self) -> StateKey {
            StateKey::from_values([self.used])
        }
        fn restore(&mut self, key: &StateKey) -> Result<(), KernelError> {
            match key.values() {
                [used] => {
                    self.used = *used;
                    Ok(())
                }
                _ => Err(KernelError::InvalidStateKey {
                    constraint: self.name.clone(),
                    reason: "expected one value".to_owned(),
                }),
            }
        }
        fn reset(&mut self) {
            self.used = 0;
        }
        fn boxed_clone(&self) -> Box<dyn Constraint> {
            Box::new(self.clone())
        }
    }

    fn spec_with_budget(budget: i64) -> (Specification, EventId) {
        let mut u = Universe::new();
        let e = u.event("e");
        u.event("free");
        let mut spec = Specification::new("test", u);
        spec.add_constraint(Box::new(Budget {
            name: "budget".into(),
            event: e,
            budget,
            used: 0,
        }));
        (spec, e)
    }

    #[test]
    fn accepts_and_fire_advance_state() {
        let (mut spec, e) = spec_with_budget(1);
        let step = Step::from_events([e]);
        assert!(spec.accepts(&step));
        spec.fire(&step).expect("accepted step fires");
        assert!(!spec.accepts(&step));
        assert!(spec.fire(&step).is_err());
    }

    #[test]
    fn free_events_are_reported() {
        let (spec, e) = spec_with_budget(1);
        let free = spec.free_events();
        assert_eq!(free.len(), 1);
        assert!(!free.contains(&e));
    }

    #[test]
    fn state_key_round_trip() {
        let (mut spec, e) = spec_with_budget(2);
        let initial = spec.state_key();
        spec.fire(&Step::from_events([e])).expect("fires");
        let advanced = spec.state_key();
        assert_ne!(initial, advanced);
        spec.restore(&initial).expect("restores");
        assert_eq!(spec.state_key(), initial);
        spec.restore(&advanced).expect("restores");
        assert_eq!(spec.state_key(), advanced);
    }

    #[test]
    fn restore_rejects_malformed_keys() {
        let (mut spec, _) = spec_with_budget(2);
        assert!(spec.restore(&StateKey::new()).is_err());
        assert!(spec.restore(&StateKey::from_values([1, 0, 99])).is_err());
    }

    #[test]
    fn reset_returns_to_initial() {
        let (mut spec, e) = spec_with_budget(1);
        let initial = spec.state_key();
        spec.fire(&Step::from_events([e])).expect("fires");
        spec.reset();
        assert_eq!(spec.state_key(), initial);
    }

    #[test]
    fn conjunction_simplifies() {
        let (spec, _) = spec_with_budget(1);
        // one constraint currently allowing everything ⇒ True
        assert_eq!(spec.conjunction(), StepFormula::True);
    }
}
