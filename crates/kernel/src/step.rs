//! [`Step`]: the set of events occurring at one instant of a schedule.

use crate::event::EventId;
use std::fmt;

/// A set of simultaneously occurring events — one instant of a schedule.
///
/// The paper (Sec. II-C) defines a schedule `σ : N → 2^E`; a `Step` is
/// one element of `2^E`. Steps are small dense bitsets, cheap to clone,
/// hash and compare, which the exploration engine relies on.
///
/// # Example
///
/// ```
/// use moccml_kernel::{Step, Universe};
/// let mut u = Universe::new();
/// let r = u.event("read");
/// let w = u.event("write");
/// let step = Step::from_events([r, w]);
/// assert!(step.contains(r));
/// assert_eq!(step.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Step {
    words: Vec<u64>,
}

const WORD_BITS: usize = 64;

impl Step {
    /// Creates the empty step (no event occurs).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a step containing the given events.
    #[must_use]
    pub fn from_events<I: IntoIterator<Item = EventId>>(events: I) -> Self {
        let mut step = Step::new();
        step.extend(events);
        step
    }

    /// Adds `event` to the step. Returns `true` if it was not present.
    pub fn insert(&mut self, event: EventId) -> bool {
        let (w, b) = (event.index() / WORD_BITS, event.index() % WORD_BITS);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes `event` from the step. Returns `true` if it was present.
    pub fn remove(&mut self, event: EventId) -> bool {
        let (w, b) = (event.index() / WORD_BITS, event.index() % WORD_BITS);
        if w >= self.words.len() {
            return false;
        }
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        if present {
            self.normalize();
        }
        present
    }

    /// Whether `event` occurs in this step.
    #[must_use]
    pub fn contains(&self, event: EventId) -> bool {
        let (w, b) = (event.index() / WORD_BITS, event.index() % WORD_BITS);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Number of occurring events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no event occurs (the *stuttering* step).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates over the occurring events in increasing id order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            step: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Whether every event of `self` also occurs in `other`.
    #[must_use]
    pub fn is_subset_of(&self, other: &Step) -> bool {
        self.words.iter().enumerate().all(|(i, &w)| {
            let o = other.words.get(i).copied().unwrap_or(0);
            w & !o == 0
        })
    }

    /// Whether `self` and `other` share no event.
    #[must_use]
    pub fn is_disjoint_from(&self, other: &Step) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(&a, &b)| a & b == 0)
    }

    /// Set union of two steps.
    #[must_use]
    pub fn union(&self, other: &Step) -> Step {
        let mut words = vec![0; self.words.len().max(other.words.len())];
        for (i, slot) in words.iter_mut().enumerate() {
            *slot =
                self.words.get(i).copied().unwrap_or(0) | other.words.get(i).copied().unwrap_or(0);
        }
        let mut s = Step { words };
        s.normalize();
        s
    }

    /// Set intersection of two steps.
    #[must_use]
    pub fn intersection(&self, other: &Step) -> Step {
        let mut words: Vec<u64> = self
            .words
            .iter()
            .zip(other.words.iter())
            .map(|(&a, &b)| a & b)
            .collect();
        while words.last() == Some(&0) {
            words.pop();
        }
        Step { words }
    }

    /// Set difference: the events of `self` that do not occur in
    /// `other`.
    #[must_use]
    pub fn difference(&self, other: &Step) -> Step {
        let words: Vec<u64> = self
            .words
            .iter()
            .enumerate()
            .map(|(i, &a)| a & !other.words.get(i).copied().unwrap_or(0))
            .collect();
        let mut s = Step { words };
        s.normalize();
        s
    }

    /// Symmetric difference: the events occurring in exactly one of
    /// `self` and `other`.
    #[must_use]
    pub fn symmetric_difference(&self, other: &Step) -> Step {
        let mut words = vec![0; self.words.len().max(other.words.len())];
        for (i, slot) in words.iter_mut().enumerate() {
            *slot =
                self.words.get(i).copied().unwrap_or(0) ^ other.words.get(i).copied().unwrap_or(0);
        }
        let mut s = Step { words };
        s.normalize();
        s
    }

    /// Renders the step with event names from `universe`, e.g. `{a, b}`.
    #[must_use]
    pub fn display(&self, universe: &crate::Universe) -> String {
        let names: Vec<&str> = self.iter().map(|e| universe.name(e)).collect();
        format!("{{{}}}", names.join(", "))
    }

    fn normalize(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }
}

impl Extend<EventId> for Step {
    fn extend<I: IntoIterator<Item = EventId>>(&mut self, iter: I) {
        for e in iter {
            self.insert(e);
        }
    }
}

impl FromIterator<EventId> for Step {
    fn from_iter<I: IntoIterator<Item = EventId>>(iter: I) -> Self {
        Step::from_events(iter)
    }
}

impl<'a> IntoIterator for &'a Step {
    type Item = EventId;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ids: Vec<String> = self.iter().map(|e| e.to_string()).collect();
        write!(f, "{{{}}}", ids.join(", "))
    }
}

/// Iterator over the events of a [`Step`], produced by [`Step::iter`].
#[derive(Debug)]
pub struct Iter<'a> {
    step: &'a Step,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = EventId;

    fn next(&mut self) -> Option<EventId> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(EventId::from_index(self.word * WORD_BITS + b));
            }
            self.word += 1;
            self.bits = *self.step.words.get(self.word)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;

    fn ids(indices: &[usize]) -> Vec<EventId> {
        indices.iter().map(|&i| EventId::from_index(i)).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = Step::new();
        let e = EventId::from_index(70); // forces a second word
        assert!(s.insert(e));
        assert!(!s.insert(e));
        assert!(s.contains(e));
        assert!(s.remove(e));
        assert!(!s.remove(e));
        assert!(s.is_empty());
    }

    #[test]
    fn iteration_is_sorted() {
        let s = Step::from_events(ids(&[130, 3, 64, 0]));
        let got: Vec<usize> = s.iter().map(EventId::index).collect();
        assert_eq!(got, vec![0, 3, 64, 130]);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn subset_and_disjoint() {
        let small = Step::from_events(ids(&[1, 65]));
        let big = Step::from_events(ids(&[1, 2, 65]));
        let other = Step::from_events(ids(&[3]));
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.is_disjoint_from(&other));
        assert!(!small.is_disjoint_from(&big));
        assert!(Step::new().is_subset_of(&small));
    }

    #[test]
    fn union_intersection() {
        let a = Step::from_events(ids(&[1, 2]));
        let b = Step::from_events(ids(&[2, 3]));
        assert_eq!(a.union(&b), Step::from_events(ids(&[1, 2, 3])));
        assert_eq!(a.intersection(&b), Step::from_events(ids(&[2])));
    }

    #[test]
    fn difference_and_symmetric_difference() {
        let a = Step::from_events(ids(&[1, 2, 65]));
        let b = Step::from_events(ids(&[2, 3]));
        assert_eq!(a.difference(&b), Step::from_events(ids(&[1, 65])));
        assert_eq!(b.difference(&a), Step::from_events(ids(&[3])));
        assert_eq!(
            a.symmetric_difference(&b),
            Step::from_events(ids(&[1, 3, 65]))
        );
        assert_eq!(a.symmetric_difference(&a), Step::new());
        assert_eq!(a.difference(&Step::new()), a);
        assert_eq!(Step::new().difference(&a), Step::new());
    }

    #[test]
    fn difference_normalizes_trailing_zero_words() {
        // removing the only high event must not leave a trailing zero
        // word that breaks Eq/Hash — the same normalization guarantee as
        // union/intersection
        let a = Step::from_events(ids(&[1, 200]));
        let high = Step::from_events(ids(&[200]));
        assert_eq!(a.difference(&high), Step::from_events(ids(&[1])));
        assert_eq!(a.symmetric_difference(&high), Step::from_events(ids(&[1])));
        let long = Step::from_events(ids(&[1, 200]));
        assert_eq!(
            long.symmetric_difference(&Step::from_events(ids(&[200])))
                .len(),
            1
        );
    }

    #[test]
    fn equality_is_content_based_after_removals() {
        // Removing a high event must not leave a trailing zero word that
        // breaks Eq/Hash against a freshly built step.
        let mut a = Step::from_events(ids(&[1, 200]));
        a.remove(EventId::from_index(200));
        let b = Step::from_events(ids(&[1]));
        assert_eq!(a, b);
    }

    #[test]
    fn display_with_universe() {
        let mut u = Universe::new();
        let r = u.event("read");
        let w = u.event("write");
        let s = Step::from_events([w, r]);
        assert_eq!(s.display(&u), "{read, write}");
        assert_eq!(Step::new().display(&u), "{}");
    }
}
