//! # moccml-kernel
//!
//! Core abstractions for the Rust reproduction of *“Towards a
//! Meta-Language for the Concurrency Concern in DSLs”* (Deantoni,
//! Diallo, Teodorov, Champeau, Combemale — DATE 2015).
//!
//! The paper defines the semantics of a MoCCML specification as a set of
//! discrete events constrained by a set of constraints. A *schedule*
//! `σ : N → 2^E` is a possibly infinite sequence of [`Step`]s, where a
//! step is the set of events occurring at that instant. At every step the
//! specification denotes a boolean formula over event-occurrence
//! variables ([`StepFormula`]); any step satisfying the conjunction of
//! all constraint formulas is acceptable.
//!
//! This crate provides:
//!
//! * [`Universe`] — an interning registry of named events;
//! * [`Step`] — a set of simultaneously occurring events (bitset);
//! * [`Schedule`] — a finite prefix of a run, with analysis helpers
//!   and a serde-free text round-trip (`to_lines` / `parse_lines`);
//! * [`StepPred`] — boolean predicates over one step, the atoms the
//!   verification layer's temporal properties quantify over;
//! * [`StepFormula`] — boolean formulas over events with full and
//!   partial evaluation (the engine's solver builds on partial
//!   evaluation);
//! * [`Constraint`] — the object-safe trait every MoCCML constraint
//!   (declarative or automata-based) implements: it exposes its current
//!   per-step formula, advances its internal state when a step fires,
//!   and snapshots that state for exhaustive exploration;
//! * [`Specification`] — a universe plus a conjunction of constraints:
//!   the *execution model* of the paper's Fig. 1.
//!
//! ## Example
//!
//! ```
//! use moccml_kernel::{Universe, Step, StepFormula};
//!
//! let mut universe = Universe::new();
//! let a = universe.event("a");
//! let b = universe.event("b");
//!
//! // "a sub-event of b" (Sec. II-C of the paper): a ⇒ b.
//! let formula = StepFormula::implies(StepFormula::event(a), StepFormula::event(b));
//!
//! let mut step = Step::new();
//! step.insert(a);
//! assert!(!formula.eval(&step)); // a alone violates the constraint
//! step.insert(b);
//! assert!(formula.eval(&step)); // a and b together is acceptable
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constraint;
mod error;
mod event;
mod formula;
mod pred;
mod schedule;
mod spec;
mod step;

pub use constraint::{Constraint, StateKey};
pub use error::KernelError;
pub use event::{EventId, Universe};
pub use formula::{StepFormula, Ternary};
pub use pred::StepPred;
pub use schedule::Schedule;
pub use spec::Specification;
pub use step::Step;
