//! The metamodel + mapping pipeline for SigPML — the paper's actual
//! architecture (Fig. 1): abstract syntax as a metamodel, the MoCC
//! woven through an ECL-like mapping, execution model generated
//! automatically for any conforming model.
//!
//! [`build_specification`](crate::mocc::build_specification) constructs
//! the same execution model directly; this module goes through the
//! generic [`weave`] machinery instead, and a
//! test asserts both paths agree. Keeping both demonstrates the paper's
//! separation claim: the MoCC (the automata library) is untouched by
//! the DSL wiring.

use crate::error::SdfError;
use crate::graph::{PortDirection, SdfGraph};
use crate::mocc::{sdf_library, MoccVariant};
use moccml_ccsl::Coincidence;
use moccml_kernel::{Constraint, Specification};
use moccml_metamodel::{
    weave, ArgExpr, AttrType, ConstraintRegistry, MappingSpec, MetaClass, Metamodel, Model,
};
use std::sync::Arc;

/// The SigPML metamodel: `Agent`, `InputPort`, `OutputPort`, `Place`.
///
/// MOF-lite has no inheritance, so the two port directions are distinct
/// metaclasses; both carry a `rate` and an `owner` reference.
#[must_use]
pub fn sigpml_metamodel() -> Arc<Metamodel> {
    let mut mm = Metamodel::new("SigPML");
    mm.add_class(MetaClass::new("Agent").with_attr("cycles", AttrType::Int))
        .expect("fresh metamodel accepts Agent");
    mm.add_class(
        MetaClass::new("InputPort")
            .with_attr("rate", AttrType::Int)
            .with_ref("owner", "Agent", false),
    )
    .expect("fresh metamodel accepts InputPort");
    mm.add_class(
        MetaClass::new("OutputPort")
            .with_attr("rate", AttrType::Int)
            .with_ref("owner", "Agent", false),
    )
    .expect("fresh metamodel accepts OutputPort");
    mm.add_class(
        MetaClass::new("Place")
            .with_attr("capacity", AttrType::Int)
            .with_attr("delay", AttrType::Int)
            .with_ref("outputPort", "OutputPort", false)
            .with_ref("inputPort", "InputPort", false),
    )
    .expect("fresh metamodel accepts Place");
    mm.validate().expect("SigPML metamodel is closed");
    Arc::new(mm)
}

/// The SigPML mapping — Listing 1 of the paper, completed with the
/// agent activation invariant and the read/start, write/stop
/// coincidences of Sec. III-A.
#[must_use]
pub fn sigpml_mapping(variant: MoccVariant) -> MappingSpec {
    let place_constraint = match variant {
        MoccVariant::Standard => "PlaceConstraint",
        MoccVariant::Multiport => "PlaceConstraintMultiport",
    };
    MappingSpec::new()
        // context Agent def: start/stop/isExecuting : Event (Listing 1)
        .def_event("Agent", "start")
        .def_event("Agent", "stop")
        .def_event("Agent", "isExecuting")
        .def_event("InputPort", "read")
        .def_event("OutputPort", "write")
        // inv PlaceLimitation (Listing 1, line 6)
        .def_invariant(
            "Place",
            "PlaceLimitation",
            place_constraint,
            vec![
                ArgExpr::event(["outputPort"], "write"),
                ArgExpr::event(["inputPort"], "read"),
                ArgExpr::attr(["outputPort"], "rate"),
                ArgExpr::attr(["inputPort"], "rate"),
                ArgExpr::attr(Vec::<String>::new(), "delay"),
                ArgExpr::attr(Vec::<String>::new(), "capacity"),
            ],
        )
        // the agent automaton of Sec. III-A
        .def_invariant(
            "Agent",
            "Activation",
            "AgentConstraint",
            vec![
                ArgExpr::event(Vec::<String>::new(), "start"),
                ArgExpr::event(Vec::<String>::new(), "stop"),
                ArgExpr::event(Vec::<String>::new(), "isExecuting"),
                ArgExpr::attr(Vec::<String>::new(), "cycles"),
            ],
        )
        // "read is simultaneous to start"
        .def_invariant(
            "InputPort",
            "ReadWithStart",
            "Coincidence",
            vec![
                ArgExpr::event(Vec::<String>::new(), "read"),
                ArgExpr::event(["owner"], "start"),
            ],
        )
        // "stop is simultaneous to a write"
        .def_invariant(
            "OutputPort",
            "WriteWithStop",
            "Coincidence",
            vec![
                ArgExpr::event(Vec::<String>::new(), "write"),
                ArgExpr::event(["owner"], "stop"),
            ],
        )
}

/// The constraint registry for SigPML: the SDF automata library plus
/// the native CCSL coincidence.
#[must_use]
pub fn sigpml_registry() -> ConstraintRegistry {
    let mut registry = ConstraintRegistry::new();
    registry.add_library(sdf_library());
    registry.add_native("Coincidence", |name, events, _ints| match events {
        [left, right] => Ok(Box::new(Coincidence::new(name, *left, *right)) as Box<dyn Constraint>),
        other => Err(format!(
            "Coincidence takes exactly two events, got {}",
            other.len()
        )),
    });
    registry
}

/// Converts an [`SdfGraph`] into a SigPML [`Model`].
///
/// # Errors
///
/// Returns [`SdfError::Build`] if the graph violates the metamodel
/// (cannot happen for graphs built through the `SdfGraph` API).
pub fn to_model(graph: &SdfGraph) -> Result<Model, SdfError> {
    let mut model = Model::new(sigpml_metamodel());
    let mut agent_ids = Vec::new();
    for agent in graph.agents() {
        let id = model.add_object("Agent", &agent.name)?;
        model.set_int(id, "cycles", i64::from(agent.cycles))?;
        agent_ids.push(id);
    }
    let mut port_ids = Vec::new();
    for port in graph.ports() {
        let class = match port.direction {
            PortDirection::Input => "InputPort",
            PortDirection::Output => "OutputPort",
        };
        let id = model.add_object(class, &port.name)?;
        model.set_int(id, "rate", i64::from(port.rate))?;
        model.add_link(id, "owner", agent_ids[port.agent])?;
        port_ids.push(id);
    }
    for place in graph.places() {
        let label = graph.place_label(place);
        let id = model.add_object("Place", &label)?;
        model.set_int(id, "capacity", i64::from(place.capacity))?;
        model.set_int(id, "delay", i64::from(place.delay))?;
        model.add_link(id, "outputPort", port_ids[place.output_port])?;
        model.add_link(id, "inputPort", port_ids[place.input_port])?;
    }
    Ok(model)
}

/// Generates the execution model through the full metamodel pipeline
/// (model → mapping → weave), as Fig. 1 prescribes.
///
/// # Errors
///
/// Returns [`SdfError::Build`] when conversion or weaving fails.
pub fn weave_specification(
    graph: &SdfGraph,
    variant: MoccVariant,
) -> Result<Specification, SdfError> {
    let model = to_model(graph)?;
    Ok(weave(&model, &sigpml_mapping(variant), &sigpml_registry())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mocc::build_specification_with;
    use moccml_engine::{Program, SolverOptions};
    use moccml_kernel::Step;
    use std::collections::BTreeSet;

    fn acceptable_steps(spec: &Specification, options: &SolverOptions) -> Vec<Step> {
        Program::compile(spec).cursor().acceptable_steps(options)
    }

    fn pc_graph() -> SdfGraph {
        let mut g = SdfGraph::new("pc");
        g.add_agent("prod", 0).expect("prod");
        g.add_agent("cons", 0).expect("cons");
        g.connect("prod", "cons", 1, 1, 2, 1).expect("place");
        g
    }

    /// Renders a step as a sorted set of event names (universes of the
    /// two pipelines assign different ids).
    fn step_names(spec: &Specification, step: &Step) -> BTreeSet<String> {
        step.iter()
            .map(|e| spec.universe().name(e).to_owned())
            .collect()
    }

    fn acceptable_names(spec: &Specification) -> BTreeSet<BTreeSet<String>> {
        acceptable_steps(spec, &SolverOptions::default())
            .iter()
            .map(|s| step_names(spec, s))
            .collect()
    }

    #[test]
    fn model_conversion_creates_all_objects() {
        let model = to_model(&pc_graph()).expect("converts");
        assert_eq!(model.objects_of_class("Agent").len(), 2);
        assert_eq!(model.objects_of_class("OutputPort").len(), 1);
        assert_eq!(model.objects_of_class("InputPort").len(), 1);
        assert_eq!(model.objects_of_class("Place").len(), 1);
        let place = model.object_by_name("prod.out0→cons.in0").expect("place");
        assert_eq!(model.int_attr(place.id(), "capacity").expect("attr"), 2);
    }

    #[test]
    fn woven_and_native_specifications_agree_initially() {
        // the central separation claim: weaving the reusable MoCC
        // through the mapping equals wiring it by hand
        let g = pc_graph();
        let native = build_specification_with(&g, MoccVariant::Standard).expect("native");
        let woven = weave_specification(&g, MoccVariant::Standard).expect("woven");
        assert_eq!(native.constraint_count(), woven.constraint_count());
        assert_eq!(acceptable_names(&native), acceptable_names(&woven));
    }

    #[test]
    fn woven_and_native_agree_along_a_run() {
        let g = pc_graph();
        let mut native = build_specification_with(&g, MoccVariant::Standard).expect("native");
        let mut woven = weave_specification(&g, MoccVariant::Standard).expect("woven");
        for _ in 0..5 {
            let steps_native = acceptable_steps(&native, &SolverOptions::default());
            assert!(!steps_native.is_empty(), "no deadlock expected");
            let chosen = steps_native[0].clone();
            let names = step_names(&native, &chosen);
            // replay the same named step in the woven spec
            let replay: Step = names
                .iter()
                .map(|n| woven.universe().lookup(n).expect("same event names"))
                .collect();
            assert!(woven.accepts(&replay), "woven accepts {names:?}");
            native.fire(&chosen).expect("native fires");
            woven.fire(&replay).expect("woven fires");
            assert_eq!(acceptable_names(&native), acceptable_names(&woven));
        }
    }

    #[test]
    fn woven_multiport_variant_differs_from_standard() {
        let mut g = SdfGraph::new("pc");
        g.add_agent("prod", 0).expect("prod");
        g.add_agent("cons", 0).expect("cons");
        g.connect("prod", "cons", 1, 1, 1, 1).expect("place");
        let standard = weave_specification(&g, MoccVariant::Standard).expect("std");
        let multiport = weave_specification(&g, MoccVariant::Multiport).expect("mp");
        let std_steps = acceptable_names(&standard);
        let mp_steps = acceptable_names(&multiport);
        assert!(std_steps.is_subset(&mp_steps));
        assert!(
            mp_steps.len() > std_steps.len(),
            "variant strictly enlarges"
        );
    }

    #[test]
    fn mapping_declares_listing1_events() {
        let mapping = sigpml_mapping(MoccVariant::Standard);
        assert!(mapping.has_event("Agent", "start"));
        assert!(mapping.has_event("Agent", "stop"));
        assert!(mapping.has_event("Agent", "isExecuting"));
        assert!(mapping.has_event("InputPort", "read"));
        assert!(mapping.has_event("OutputPort", "write"));
        assert_eq!(mapping.invariants().len(), 4);
    }
}
