//! Abstract syntax of the SDF extension (SigPML): agents, ports,
//! places.

use crate::error::SdfError;

/// Direction of a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDirection {
    /// Consumes tokens (carries the `read` event).
    Input,
    /// Produces tokens (carries the `write` event).
    Output,
}

/// A data port of an agent, with its SDF rate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    /// Unique port name (`agent.in0` / `agent.out0`).
    pub name: String,
    /// Owning agent index.
    pub agent: usize,
    /// Direction.
    pub direction: PortDirection,
    /// Tokens produced/consumed per activation.
    pub rate: u32,
}

/// An agent (actor) of the application.
///
/// `cycles` is the paper's `N`: the number of `isExecuting` occurrences
/// between `start` and `stop`. `N = 0` recovers the pure SDF
/// abstraction where `read`, `start`, `stop` and `write` are
/// simultaneous; a positive `N` models an execution time, "for example
/// according to a deployment on a specific platform".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Agent {
    /// Unique agent name.
    pub name: String,
    /// Processing cycles per activation (the paper's `N`).
    pub cycles: u32,
    /// Indices of the agent's ports.
    pub ports: Vec<usize>,
}

/// A bounded place buffering tokens between an output and an input
/// port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Place {
    /// Writing (output) port index.
    pub output_port: usize,
    /// Reading (input) port index.
    pub input_port: usize,
    /// Maximum number of stored tokens.
    pub capacity: u32,
    /// Initial tokens (SDF delay).
    pub delay: u32,
}

/// A complete SigPML application model.
///
/// # Example
///
/// ```
/// use moccml_sdf::SdfGraph;
/// let mut g = SdfGraph::new("demo");
/// g.add_agent("src", 0)?;
/// g.add_agent("fft", 2)?;
/// g.connect("src", "fft", 1, 4, 8, 0)?; // src pushes 1, fft pops 4
/// assert_eq!(g.agents().len(), 2);
/// assert_eq!(g.places().len(), 1);
/// # Ok::<(), moccml_sdf::SdfError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdfGraph {
    name: String,
    agents: Vec<Agent>,
    ports: Vec<Port>,
    places: Vec<Place>,
}

impl SdfGraph {
    /// Creates an empty application named `name`.
    #[must_use]
    pub fn new(name: &str) -> Self {
        SdfGraph {
            name: name.to_owned(),
            agents: Vec::new(),
            ports: Vec::new(),
            places: Vec::new(),
        }
    }

    /// Application name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds an agent with `cycles` processing cycles per activation.
    ///
    /// # Errors
    ///
    /// Returns [`SdfError::DuplicateAgent`] on a name collision.
    pub fn add_agent(&mut self, name: &str, cycles: u32) -> Result<usize, SdfError> {
        if self.agent_index(name).is_some() {
            return Err(SdfError::DuplicateAgent {
                name: name.to_owned(),
            });
        }
        self.agents.push(Agent {
            name: name.to_owned(),
            cycles,
            ports: Vec::new(),
        });
        Ok(self.agents.len() - 1)
    }

    /// Connects `src` to `dst` through a new place.
    ///
    /// Creates an output port on `src` with rate `push_rate`, an input
    /// port on `dst` with rate `pop_rate`, and a place of the given
    /// `capacity` pre-loaded with `delay` tokens.
    ///
    /// # Errors
    ///
    /// Returns [`SdfError::UnknownAgent`] for unknown agents and
    /// [`SdfError::InvalidParameter`] when a rate is zero, the capacity
    /// is smaller than either rate, or the delay exceeds the capacity
    /// (the place could never operate).
    pub fn connect(
        &mut self,
        src: &str,
        dst: &str,
        push_rate: u32,
        pop_rate: u32,
        capacity: u32,
        delay: u32,
    ) -> Result<usize, SdfError> {
        let src_idx = self
            .agent_index(src)
            .ok_or_else(|| SdfError::UnknownAgent {
                name: src.to_owned(),
            })?;
        let dst_idx = self
            .agent_index(dst)
            .ok_or_else(|| SdfError::UnknownAgent {
                name: dst.to_owned(),
            })?;
        if push_rate == 0 || pop_rate == 0 {
            return Err(SdfError::InvalidParameter {
                reason: "rates must be positive".to_owned(),
            });
        }
        if capacity < push_rate || capacity < pop_rate {
            return Err(SdfError::InvalidParameter {
                reason: format!(
                    "capacity {capacity} is smaller than a rate ({push_rate}/{pop_rate})"
                ),
            });
        }
        if delay > capacity {
            return Err(SdfError::InvalidParameter {
                reason: format!("delay {delay} exceeds capacity {capacity}"),
            });
        }
        let out_port = self.add_port(src_idx, PortDirection::Output, push_rate);
        let in_port = self.add_port(dst_idx, PortDirection::Input, pop_rate);
        self.places.push(Place {
            output_port: out_port,
            input_port: in_port,
            capacity,
            delay,
        });
        Ok(self.places.len() - 1)
    }

    fn add_port(&mut self, agent: usize, direction: PortDirection, rate: u32) -> usize {
        let count = self.agents[agent]
            .ports
            .iter()
            .filter(|&&p| self.ports[p].direction == direction)
            .count();
        let suffix = match direction {
            PortDirection::Input => format!("in{count}"),
            PortDirection::Output => format!("out{count}"),
        };
        let name = format!("{}.{suffix}", self.agents[agent].name);
        self.ports.push(Port {
            name,
            agent,
            direction,
            rate,
        });
        let idx = self.ports.len() - 1;
        self.agents[agent].ports.push(idx);
        idx
    }

    /// Index of agent `name`.
    #[must_use]
    pub fn agent_index(&self, name: &str) -> Option<usize> {
        self.agents.iter().position(|a| a.name == name)
    }

    /// All agents.
    #[must_use]
    pub fn agents(&self) -> &[Agent] {
        &self.agents
    }

    /// All ports.
    #[must_use]
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// All places.
    #[must_use]
    pub fn places(&self) -> &[Place] {
        &self.places
    }

    /// Renders a place as `src.outK→dst.inL` for diagnostics.
    #[must_use]
    pub fn place_label(&self, place: &Place) -> String {
        format!(
            "{}→{}",
            self.ports[place.output_port].name, self.ports[place.input_port].name
        )
    }

    /// Input ports of agent `agent`.
    #[must_use]
    pub fn input_ports(&self, agent: usize) -> Vec<usize> {
        self.agents[agent]
            .ports
            .iter()
            .copied()
            .filter(|&p| self.ports[p].direction == PortDirection::Input)
            .collect()
    }

    /// Output ports of agent `agent`.
    #[must_use]
    pub fn output_ports(&self, agent: usize) -> Vec<usize> {
        self.agents[agent]
            .ports
            .iter()
            .copied()
            .filter(|&p| self.ports[p].direction == PortDirection::Output)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> SdfGraph {
        let mut g = SdfGraph::new("chain");
        g.add_agent("a", 0).expect("a");
        g.add_agent("b", 1).expect("b");
        g.connect("a", "b", 2, 3, 6, 0).expect("place");
        g
    }

    #[test]
    fn builder_assigns_port_names_and_rates() {
        let g = chain();
        assert_eq!(g.ports()[0].name, "a.out0");
        assert_eq!(g.ports()[0].rate, 2);
        assert_eq!(g.ports()[1].name, "b.in0");
        assert_eq!(g.ports()[1].rate, 3);
        assert_eq!(g.place_label(&g.places()[0]), "a.out0→b.in0");
    }

    #[test]
    fn duplicate_and_unknown_agents_error() {
        let mut g = chain();
        assert!(matches!(
            g.add_agent("a", 0),
            Err(SdfError::DuplicateAgent { .. })
        ));
        assert!(matches!(
            g.connect("a", "ghost", 1, 1, 1, 0),
            Err(SdfError::UnknownAgent { .. })
        ));
    }

    #[test]
    fn parameter_validation() {
        let mut g = chain();
        assert!(g.connect("a", "b", 0, 1, 1, 0).is_err()); // zero rate
        assert!(g.connect("a", "b", 2, 1, 1, 0).is_err()); // capacity < rate
        assert!(g.connect("a", "b", 1, 1, 2, 3).is_err()); // delay > capacity
    }

    #[test]
    fn multiple_ports_get_distinct_names() {
        let mut g = SdfGraph::new("fanout");
        g.add_agent("s", 0).expect("s");
        g.add_agent("t", 0).expect("t");
        g.connect("s", "t", 1, 1, 1, 0).expect("p0");
        g.connect("s", "t", 1, 1, 1, 0).expect("p1");
        assert_eq!(g.ports()[0].name, "s.out0");
        assert_eq!(g.ports()[2].name, "s.out1");
        assert_eq!(g.ports()[3].name, "t.in1");
        assert_eq!(g.output_ports(0).len(), 2);
        assert_eq!(g.input_ports(1).len(), 2);
    }

    #[test]
    fn self_loop_is_allowed() {
        // SDF self-loops model state; the builder must accept them
        let mut g = SdfGraph::new("loop");
        g.add_agent("a", 0).expect("a");
        g.connect("a", "a", 1, 1, 1, 1).expect("self place");
        assert_eq!(g.places().len(), 1);
        assert_eq!(g.input_ports(0).len(), 1);
        assert_eq!(g.output_ports(0).len(), 1);
    }
}
