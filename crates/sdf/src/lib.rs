//! # moccml-sdf
//!
//! The paper's illustrative DSL (Sec. III): a lightweight extension of
//! Synchronous Data Flow — the authors call the extended language
//! *SigPML*. An application is a set of [`Agent`]s; upon activation an
//! agent reads its input ports, executes `N` processing cycles and
//! writes its output ports; data in transit is stored in bounded
//! [`Place`]s.
//!
//! This crate provides:
//!
//! * [`SdfGraph`] — the abstract syntax (agents, ports with rates,
//!   places with capacity and delay) with a builder API;
//! * [`analysis`] — classical SDF static analysis: topology matrix,
//!   repetition vector, consistency;
//! * [`mocc`] — the SDF MoCC exactly as the paper defines it: the
//!   `PlaceConstraint` automaton of Fig. 3, the agent automaton of
//!   Sec. III-A (`read` simultaneous to `start`, `isExecuting` only
//!   between `start` and `stop`, `stop` at the N-th `isExecuting`,
//!   `write` simultaneous to `stop`), the *multiport memory* variant the
//!   paper mentions, and the generation of the execution model — both
//!   natively and through the metamodel+mapping pipeline;
//! * [`platform`] — the deployment extension sketched in the
//!   conclusion: processors, allocations and the mutual-exclusion
//!   constraint they induce;
//! * [`pam`] — the Passive Acoustic Monitoring case study: the
//!   application under an infinite-resource assumption and three
//!   deployments, evaluated by simulation and exhaustive exploration.
//!
//! ## Example
//!
//! ```
//! use moccml_sdf::SdfGraph;
//! use moccml_engine::{MaxParallel, Simulator};
//!
//! // producer → consumer through a 2-slot place
//! let mut g = SdfGraph::new("pc");
//! g.add_agent("prod", 0)?;
//! g.add_agent("cons", 0)?;
//! g.connect("prod", "cons", 1, 1, 2, 0)?;
//!
//! let spec = moccml_sdf::mocc::build_specification(&g)?;
//! let report = Simulator::new(spec, MaxParallel).run(8);
//! assert!(!report.deadlocked);
//! # Ok::<(), moccml_sdf::SdfError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod error;
mod graph;
pub mod mocc;
pub mod model_bridge;
pub mod pam;
pub mod platform;
pub mod scheduler;

pub use error::SdfError;
pub use graph::{Agent, Place, Port, PortDirection, SdfGraph};
