//! The SDF MoCC, expressed in MoCCML exactly as in the paper.
//!
//! Two constraint automata reproduce the SDF semantics (Sec. III-A):
//!
//! * **`PlaceConstraint`** (Fig. 3) — between the `write` event of an
//!   output port and the `read` event of an input port linked by a
//!   place: `read` cannot occur without enough tokens, `write` cannot
//!   occur without enough room; `size` starts at `itsDelay`.
//! * **`AgentConstraint`** — for every agent: `isExecuting` occurs only
//!   between `start` and `stop`, `stop` occurs at the N-th `isExecuting`
//!   after `start`, and when `N = 0` the activation collapses to a
//!   single instant (`start` and `stop` simultaneous).
//!
//! The couplings "`read` is simultaneous to `start`" and "`stop` is
//! simultaneous to a `write`" are declarative coincidences, part of the
//! mapping.
//!
//! The paper notes the automaton "could be modified to provide variants
//! of the semantics. For instance, one could add a transition to specify
//! that read and write can be done simultaneously (as supported by
//! multiport memories)" — [`MoccVariant::Multiport`] is that variant.

use crate::error::SdfError;
use crate::graph::SdfGraph;
use moccml_automata::{parse_library, RelationLibrary};
use moccml_ccsl::Coincidence;
use moccml_kernel::{Specification, Universe};
use std::sync::Arc;

/// Textual MoCCML source of the SDF relation library.
///
/// `PlaceConstraint` transcribes Fig. 3 of the paper;
/// `PlaceConstraintMultiport` adds the simultaneous read/write
/// transition; `AgentConstraint` implements the four rules of
/// Sec. III-A.
pub const SDF_LIBRARY_SOURCE: &str = r#"
library SimpleSDFRelationLibrary {
  // Fig. 3: bounded place between a writing and a reading port
  constraint PlaceConstraint(write: event, read: event,
                             pushRate: int, popRate: int,
                             itsDelay: int, itsCapacity: int)
  automaton PlaceConstraintDef implements PlaceConstraint {
    var size: int = itsDelay;
    initial state S0;
    final state S0;
    from S0 to S0 when {write} forbid {read}
      guard [size <= itsCapacity - pushRate] do size += pushRate;
    from S0 to S0 when {read} forbid {write}
      guard [size >= popRate] do size -= popRate;
  }

  // Variant: multiport memory, read and write may happen simultaneously
  constraint PlaceConstraintMultiport(write: event, read: event,
                                      pushRate: int, popRate: int,
                                      itsDelay: int, itsCapacity: int)
  automaton PlaceConstraintMultiportDef implements PlaceConstraintMultiport {
    var size: int = itsDelay;
    initial state S0;
    final state S0;
    from S0 to S0 when {write} forbid {read}
      guard [size <= itsCapacity - pushRate] do size += pushRate;
    from S0 to S0 when {read} forbid {write}
      guard [size >= popRate] do size -= popRate;
    from S0 to S0 when {write, read}
      guard [size >= popRate && size + pushRate - popRate <= itsCapacity]
      do size += pushRate - popRate;
  }

  // Sec. III-A: activation protocol of an agent
  constraint AgentConstraint(start: event, stop: event, exec: event, n: int)
  automaton AgentConstraintDef implements AgentConstraint {
    var c: int = 0;
    initial state Idle;
    final state Idle;
    state Busy;
    // N = 0: the SDF abstraction, start and stop are simultaneous
    from Idle to Idle when {start, stop} forbid {exec} guard [n == 0];
    // N > 0: start opens the activation
    from Idle to Busy when {start} forbid {stop, exec} guard [n > 0] do c = 0;
    // processing cycles strictly before the last one
    from Busy to Busy when {exec} forbid {start, stop} guard [c < n - 1] do c += 1;
    // stop occurs at the N-th occurrence of isExecuting after start
    from Busy to Idle when {exec, stop} forbid {start} guard [c == n - 1] do c = 0;
  }
}
"#;

/// Parses [`SDF_LIBRARY_SOURCE`] into a relation library.
///
/// # Panics
///
/// Never panics in practice: the embedded source is covered by tests.
#[must_use]
pub fn sdf_library() -> Arc<RelationLibrary> {
    Arc::new(parse_library(SDF_LIBRARY_SOURCE).expect("embedded SDF library parses"))
}

/// Which place semantics to weave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MoccVariant {
    /// Fig. 3 as printed: a place serves one port per step.
    #[default]
    Standard,
    /// The multiport-memory variant: simultaneous read and write.
    Multiport,
}

impl MoccVariant {
    fn place_constraint_name(self) -> &'static str {
        match self {
            MoccVariant::Standard => "PlaceConstraint",
            MoccVariant::Multiport => "PlaceConstraintMultiport",
        }
    }
}

/// Name of an agent event (`start`, `stop`, `isExecuting`).
#[must_use]
pub fn agent_event(agent: &str, event: &str) -> String {
    format!("{agent}.{event}")
}

/// Name of a port event (`read`, `write`); `port` is already
/// `agent.inK` / `agent.outK`.
#[must_use]
pub fn port_event(port: &str, event: &str) -> String {
    format!("{port}.{event}")
}

/// Builds the execution model of `graph` with the standard (Fig. 3)
/// place semantics.
///
/// # Errors
///
/// Returns [`SdfError::Build`] when constraint instantiation fails
/// (which would indicate an internal inconsistency).
pub fn build_specification(graph: &SdfGraph) -> Result<Specification, SdfError> {
    build_specification_with(graph, MoccVariant::Standard)
}

/// Builds the execution model of `graph` with an explicit MoCC variant.
///
/// Generated events, per agent `a`: `a.start`, `a.stop`,
/// `a.isExecuting`; per port `p`: `p.read` or `p.write`. Instantiated
/// constraints: one `PlaceConstraint` per place, one `AgentConstraint`
/// per agent, and coincidences `read = start` (input ports) and
/// `write = stop` (output ports).
///
/// # Errors
///
/// Returns [`SdfError::Build`] when constraint instantiation fails.
pub fn build_specification_with(
    graph: &SdfGraph,
    variant: MoccVariant,
) -> Result<Specification, SdfError> {
    let library = sdf_library();
    let mut universe = Universe::new();

    for agent in graph.agents() {
        universe.event(&agent_event(&agent.name, "start"));
        universe.event(&agent_event(&agent.name, "stop"));
        universe.event(&agent_event(&agent.name, "isExecuting"));
    }
    for port in graph.ports() {
        match port.direction {
            crate::graph::PortDirection::Input => universe.event(&port_event(&port.name, "read")),
            crate::graph::PortDirection::Output => universe.event(&port_event(&port.name, "write")),
        };
    }

    let mut spec = Specification::new(graph.name(), universe);

    // PlaceConstraint per place (Listing 1's inv PlaceLimitation)
    for place in graph.places() {
        let out = &graph.ports()[place.output_port];
        let inp = &graph.ports()[place.input_port];
        let w = spec
            .universe()
            .lookup(&port_event(&out.name, "write"))
            .expect("event generated above");
        let r = spec
            .universe()
            .lookup(&port_event(&inp.name, "read"))
            .expect("event generated above");
        let instance = library
            .instantiate(
                variant.place_constraint_name(),
                &format!("{}.PlaceLimitation", graph.place_label(place)),
            )?
            .bind_event("write", w)
            .bind_event("read", r)
            .bind_int("pushRate", i64::from(out.rate))
            .bind_int("popRate", i64::from(inp.rate))
            .bind_int("itsDelay", i64::from(place.delay))
            .bind_int("itsCapacity", i64::from(place.capacity))
            .finish()?;
        spec.add_constraint(Box::new(instance));
    }

    // AgentConstraint per agent + read/write coincidences
    for (a, agent) in graph.agents().iter().enumerate() {
        let start = spec
            .universe()
            .lookup(&agent_event(&agent.name, "start"))
            .expect("event generated above");
        let stop = spec
            .universe()
            .lookup(&agent_event(&agent.name, "stop"))
            .expect("event generated above");
        let exec = spec
            .universe()
            .lookup(&agent_event(&agent.name, "isExecuting"))
            .expect("event generated above");
        let instance = library
            .instantiate("AgentConstraint", &format!("{}.Activation", agent.name))?
            .bind_event("start", start)
            .bind_event("stop", stop)
            .bind_event("exec", exec)
            .bind_int("n", i64::from(agent.cycles))
            .finish()?;
        spec.add_constraint(Box::new(instance));

        // Sec. III-A items 1 and 4
        for p in graph.input_ports(a) {
            let read = spec
                .universe()
                .lookup(&port_event(&graph.ports()[p].name, "read"))
                .expect("event generated above");
            spec.add_constraint(Box::new(Coincidence::new(
                &format!("{}.readWithStart", graph.ports()[p].name),
                read,
                start,
            )));
        }
        for p in graph.output_ports(a) {
            let write = spec
                .universe()
                .lookup(&port_event(&graph.ports()[p].name, "write"))
                .expect("event generated above");
            spec.add_constraint(Box::new(Coincidence::new(
                &format!("{}.writeWithStop", graph.ports()[p].name),
                write,
                stop,
            )));
        }
    }

    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_engine::{
        ExploreOptions, Lexicographic, Program, Simulator, SolverOptions, StateSpace,
    };
    use moccml_kernel::{Specification, Step};

    fn acceptable_steps(spec: &Specification, options: &SolverOptions) -> Vec<Step> {
        Program::compile(spec).cursor().acceptable_steps(options)
    }

    fn explore(spec: &Specification, options: &ExploreOptions) -> StateSpace {
        Program::compile(spec).explore(options)
    }

    fn producer_consumer(capacity: u32, delay: u32) -> SdfGraph {
        let mut g = SdfGraph::new("pc");
        g.add_agent("prod", 0).expect("prod");
        g.add_agent("cons", 0).expect("cons");
        g.connect("prod", "cons", 1, 1, capacity, delay)
            .expect("place");
        g
    }

    #[test]
    fn library_parses_and_contains_three_constraints() {
        let lib = sdf_library();
        assert!(lib.definition_for("PlaceConstraint").is_some());
        assert!(lib.definition_for("PlaceConstraintMultiport").is_some());
        assert!(lib.definition_for("AgentConstraint").is_some());
        for def in lib.definitions() {
            assert!(
                def.determinism_warnings().is_empty(),
                "{}: {:?}",
                def.name(),
                def.determinism_warnings()
            );
        }
    }

    #[test]
    fn n_zero_collapses_activation_to_one_instant() {
        // Sec. III-A: "In the case where N equals 0 (i.e., the SDF
        // abstraction), then the read, the start, the stop and the
        // write are simultaneous."
        let g = producer_consumer(2, 0);
        let spec = build_specification(&g).expect("builds");
        let steps = acceptable_steps(&spec, &SolverOptions::default());
        let u = spec.universe();
        let prod_fire: Step = [
            u.lookup("prod.start").expect("e"),
            u.lookup("prod.stop").expect("e"),
            u.lookup("prod.out0.write").expect("e"),
        ]
        .into_iter()
        .collect();
        // empty place: the only acceptable step is the producer's
        // atomic activation
        assert_eq!(steps, vec![prod_fire]);
    }

    #[test]
    fn consumer_fires_only_after_producer() {
        let g = producer_consumer(2, 0);
        let mut sim = Simulator::new(build_specification(&g).expect("builds"), Lexicographic);
        let report = sim.run(6);
        assert!(!report.deadlocked);
        let u = sim.specification().universe();
        let cons_start = u.lookup("cons.start").expect("e");
        let prod_start = u.lookup("prod.start").expect("e");
        let first_cons = report.schedule.first_occurrence(cons_start).expect("fired");
        let first_prod = report.schedule.first_occurrence(prod_start).expect("fired");
        assert!(first_prod < first_cons);
    }

    #[test]
    fn delay_lets_consumer_fire_first() {
        let g = producer_consumer(2, 1);
        let spec = build_specification(&g).expect("builds");
        let u = spec.universe();
        let cons_fire: Step = [
            u.lookup("cons.start").expect("e"),
            u.lookup("cons.stop").expect("e"),
            u.lookup("cons.in0.read").expect("e"),
        ]
        .into_iter()
        .collect();
        assert!(spec.accepts(&cons_fire));
    }

    #[test]
    fn capacity_back_pressures_producer() {
        let g = producer_consumer(1, 0);
        let mut spec = build_specification(&g).expect("builds");
        let u = spec.universe();
        let prod_fire: Step = [
            u.lookup("prod.start").expect("e"),
            u.lookup("prod.stop").expect("e"),
            u.lookup("prod.out0.write").expect("e"),
        ]
        .into_iter()
        .collect();
        spec.fire(&prod_fire).expect("first activation");
        assert!(!spec.accepts(&prod_fire), "place full: write forbidden");
    }

    #[test]
    fn standard_variant_forbids_simultaneous_read_write() {
        let g = producer_consumer(1, 0);
        let mut spec = build_specification(&g).expect("builds");
        let u = spec.universe();
        let all: Step = [
            u.lookup("prod.start").expect("e"),
            u.lookup("prod.stop").expect("e"),
            u.lookup("prod.out0.write").expect("e"),
            u.lookup("cons.start").expect("e"),
            u.lookup("cons.stop").expect("e"),
            u.lookup("cons.in0.read").expect("e"),
        ]
        .into_iter()
        .collect();
        let prod_fire: Step = [
            u.lookup("prod.start").expect("e"),
            u.lookup("prod.stop").expect("e"),
            u.lookup("prod.out0.write").expect("e"),
        ]
        .into_iter()
        .collect();
        spec.fire(&prod_fire).expect("fill");
        assert!(!spec.accepts(&all), "Fig. 3 place serves one port per step");
    }

    #[test]
    fn multiport_variant_allows_simultaneous_read_write() {
        // E4: the paper's multiport-memory variant strictly enlarges
        // the acceptable steps.
        let g = producer_consumer(1, 0);
        let mut spec = build_specification_with(&g, MoccVariant::Multiport).expect("builds");
        let u = spec.universe();
        let prod_fire: Step = [
            u.lookup("prod.start").expect("e"),
            u.lookup("prod.stop").expect("e"),
            u.lookup("prod.out0.write").expect("e"),
        ]
        .into_iter()
        .collect();
        let all: Step = [
            u.lookup("prod.start").expect("e"),
            u.lookup("prod.stop").expect("e"),
            u.lookup("prod.out0.write").expect("e"),
            u.lookup("cons.start").expect("e"),
            u.lookup("cons.stop").expect("e"),
            u.lookup("cons.in0.read").expect("e"),
        ]
        .into_iter()
        .collect();
        spec.fire(&prod_fire).expect("fill");
        assert!(spec.accepts(&all), "multiport place pipelines");
    }

    #[test]
    fn execution_time_stretches_activations() {
        // E5: N > 0 — stop at the N-th isExecuting after start.
        let mut g = SdfGraph::new("timed");
        g.add_agent("a", 2).expect("a");
        let mut spec = build_specification(&g).expect("builds");
        let u = spec.universe();
        let start = u.lookup("a.start").expect("e");
        let stop = u.lookup("a.stop").expect("e");
        let exec = u.lookup("a.isExecuting").expect("e");
        // atomic activation is now forbidden
        assert!(!spec.accepts(&Step::from_events([start, stop])));
        spec.fire(&Step::from_events([start])).expect("start");
        // first cycle: no stop yet
        assert!(!spec.accepts(&Step::from_events([exec, stop])));
        spec.fire(&Step::from_events([exec])).expect("cycle 1");
        // second (=N-th) cycle must carry the stop
        assert!(!spec.accepts(&Step::from_events([exec])));
        spec.fire(&Step::from_events([exec, stop]))
            .expect("cycle 2 + stop");
    }

    #[test]
    fn is_executing_only_between_start_and_stop() {
        let mut g = SdfGraph::new("timed");
        g.add_agent("a", 1).expect("a");
        let spec = build_specification(&g).expect("builds");
        let u = spec.universe();
        let exec = u.lookup("a.isExecuting").expect("e");
        assert!(!spec.accepts(&Step::from_events([exec])), "not started yet");
    }

    #[test]
    fn multirate_graph_respects_rates() {
        // a pushes 2 per activation, b pops 3: b needs two a-activations
        let mut g = SdfGraph::new("mr");
        g.add_agent("a", 0).expect("a");
        g.add_agent("b", 0).expect("b");
        g.connect("a", "b", 2, 3, 6, 0).expect("place");
        let mut sim = Simulator::new(build_specification(&g).expect("builds"), Lexicographic);
        let report = sim.run(10);
        assert!(!report.deadlocked);
        let u = sim.specification().universe();
        let a_start = u.lookup("a.start").expect("e");
        let b_start = u.lookup("b.start").expect("e");
        let a_count = report.schedule.occurrences(a_start);
        let b_count = report.schedule.occurrences(b_start);
        // token conservation: 2·#a − 3·#b must be within [0, capacity]
        let balance = 2 * a_count as i64 - 3 * b_count as i64;
        assert!((0..=6).contains(&balance), "balance = {balance}");
        assert!(b_count >= 1, "consumer fired at least once");
    }

    #[test]
    fn zero_delay_cycle_deadlocks() {
        let mut g = SdfGraph::new("cycle");
        g.add_agent("a", 0).expect("a");
        g.add_agent("b", 0).expect("b");
        g.connect("a", "b", 1, 1, 1, 0).expect("p1");
        g.connect("b", "a", 1, 1, 1, 0).expect("p2");
        let spec = build_specification(&g).expect("builds");
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 1);
        assert_eq!(space.deadlocks(), &[0], "no delay: classic SDF deadlock");
    }

    #[test]
    fn delayed_cycle_runs_forever() {
        let mut g = SdfGraph::new("ring");
        g.add_agent("a", 0).expect("a");
        g.add_agent("b", 0).expect("b");
        g.connect("a", "b", 1, 1, 1, 0).expect("p1");
        g.connect("b", "a", 1, 1, 1, 1).expect("p2");
        let spec = build_specification(&g).expect("builds");
        let space = explore(&spec, &ExploreOptions::default());
        assert!(space.deadlocks().is_empty());
        assert!(!space.truncated());
    }

    #[test]
    fn exploration_state_count_matches_place_occupancies() {
        // one place, capacity 2, rates 1: states = size ∈ {0,1,2}
        let g = producer_consumer(2, 0);
        let spec = build_specification(&g).expect("builds");
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 3);
        assert!(!space.truncated());
        assert!(space.deadlocks().is_empty());
    }
}
