//! The Passive Acoustic Monitoring (PAM) case study.
//!
//! The paper's conclusion reports: *"the SDF extension is used to model
//! and validate an application from the Passive Acoustic Monitoring
//! (PAM) domain. We first model a PAM system under an infinite resource
//! assumption before studying three different deployments on different
//! platforms. The extended MoCC has been used to evaluate, through
//! simulation traces and exhaustive exploration, the impact of the
//! different allocations on the valid scheduling of the application."*
//!
//! The concrete application lived on a companion website that is no
//! longer available; this module rebuilds a faithful synthetic stand-in
//! (see DESIGN.md): a two-channel hydrophone front-end feeding
//! per-channel band-pass filters, a beamforming/fusion stage, a
//! detector and a reporting sink:
//!
//! ```text
//! hydroA ─▶ filterA ─▶╮
//!                     ├─▶ fusion ─▶ detect ─▶ report
//! hydroB ─▶ filterB ─▶╯
//! ```
//!
//! Three deployments mirror the paper's protocol: a single-core DSP, a
//! dual-core split (front-end vs. back-end) and a quad-core spread.

use crate::error::SdfError;
use crate::graph::SdfGraph;
use crate::platform::{deploy, Deployment, Platform};
use moccml_kernel::Specification;

/// Builds the PAM application graph (6 agents, 5 places).
///
/// All rates are 1 and capacities 1 so that the scheduling state-space
/// stays exhaustively explorable, which is what the paper's study
/// needs; `cycles` is 0 everywhere (infinite-resource abstraction).
///
/// # Example
///
/// ```
/// let g = moccml_sdf::pam::pam_application();
/// assert_eq!(g.agents().len(), 6);
/// assert!(moccml_sdf::analysis::is_consistent(&g));
/// ```
#[must_use]
pub fn pam_application() -> SdfGraph {
    let mut g = SdfGraph::new("pam");
    for name in ["hydroA", "hydroB", "filterA", "filterB", "fusion", "detect"] {
        g.add_agent(name, 0).expect("fresh graph accepts agents");
    }
    // per-channel front-end
    g.connect("hydroA", "filterA", 1, 1, 1, 0)
        .expect("valid place");
    g.connect("hydroB", "filterB", 1, 1, 1, 0)
        .expect("valid place");
    // beamforming fusion of the two channels
    g.connect("filterA", "fusion", 1, 1, 1, 0)
        .expect("valid place");
    g.connect("filterB", "fusion", 1, 1, 1, 0)
        .expect("valid place");
    // detection chain
    g.connect("fusion", "detect", 1, 1, 1, 0)
        .expect("valid place");
    g
}

/// The infinite-resource execution model: the application MoCC alone,
/// no platform constraint (every agent with `N = 0`).
///
/// # Errors
///
/// Propagates [`SdfError::Build`] (does not happen for the embedded
/// application).
pub fn infinite_resources() -> Result<Specification, SdfError> {
    crate::mocc::build_specification(&pam_application())
}

/// Deployment 1: a single-core DSP — every agent on the one processor,
/// one cycle of execution time each.
#[must_use]
pub fn deployment_single_core() -> (Platform, Deployment) {
    let platform = Platform::new("mono-dsp", 1);
    let mut d = Deployment::new();
    for agent in pam_application().agents() {
        d = d.assign(&agent.name, 0, 1);
    }
    (platform, d)
}

/// Deployment 2: a dual-core platform — acquisition front-end
/// (hydrophones + filters) on core 0, fusion/detection back-end on
/// core 1.
#[must_use]
pub fn deployment_dual_core() -> (Platform, Deployment) {
    let platform = Platform::new("dual-core", 2);
    let d = Deployment::new()
        .assign("hydroA", 0, 1)
        .assign("hydroB", 0, 1)
        .assign("filterA", 0, 1)
        .assign("filterB", 0, 1)
        .assign("fusion", 1, 1)
        .assign("detect", 1, 1);
    (platform, d)
}

/// Deployment 3: a quad-core platform — one core per channel chain,
/// one for fusion, one for detection.
#[must_use]
pub fn deployment_quad_core() -> (Platform, Deployment) {
    let platform = Platform::new("quad-core", 4);
    let d = Deployment::new()
        .assign("hydroA", 0, 1)
        .assign("filterA", 0, 1)
        .assign("hydroB", 1, 1)
        .assign("filterB", 1, 1)
        .assign("fusion", 2, 1)
        .assign("detect", 3, 1);
    (platform, d)
}

/// Builds the deployed execution model for one of the three platforms.
///
/// # Errors
///
/// Propagates deployment validation errors from
/// [`deploy`].
pub fn deployed(platform: &Platform, deployment: &Deployment) -> Result<Specification, SdfError> {
    deploy(&pam_application(), platform, deployment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::repetition_vector;
    use moccml_engine::{
        ExploreOptions, MaxParallel, Program, SafeMaxParallel, Simulator, StateSpace,
    };
    use moccml_kernel::Specification;

    fn explore(spec: &Specification, options: &ExploreOptions) -> StateSpace {
        Program::compile(spec).explore(options)
    }

    #[test]
    fn application_is_consistent_and_uniform() {
        let g = pam_application();
        assert_eq!(
            repetition_vector(&g).expect("consistent"),
            vec![1; g.agents().len()]
        );
    }

    #[test]
    fn infinite_resources_run_never_deadlocks() {
        let spec = infinite_resources().expect("builds");
        let report = Simulator::new(spec, MaxParallel).run(20);
        assert!(!report.deadlocked);
    }

    #[test]
    fn all_deployments_run_with_deadlock_avoidance() {
        // greedy (MaxParallel) scheduling can wedge on the constrained
        // platforms — starting an agent whose output place is full while
        // it holds the processor. The one-step-lookahead policy avoids
        // every such trap in PAM.
        for (platform, deployment) in [
            deployment_single_core(),
            deployment_dual_core(),
            deployment_quad_core(),
        ] {
            let spec = deployed(&platform, &deployment).expect("deploys");
            let report = Simulator::new(spec, SafeMaxParallel).run(30);
            assert!(!report.deadlocked, "{} deadlocked", platform.name());
            assert_eq!(report.steps_taken, 30);
        }
    }

    #[test]
    fn greedy_scheduling_wedges_on_the_single_core() {
        let (platform, deployment) = deployment_single_core();
        let spec = deployed(&platform, &deployment).expect("deploys");
        let report = Simulator::new(spec, MaxParallel).run(30);
        assert!(report.deadlocked, "greedy schedule hits the wedge");
    }

    #[test]
    fn allocation_restricts_parallelism() {
        // the headline claim of the PAM study: deployments restrict the
        // attainable parallelism, visible in the explored state space.
        let infinite = infinite_resources().expect("builds");
        let space_inf = explore(
            &infinite,
            &ExploreOptions::default().with_max_states(20_000),
        );
        let (p1, d1) = deployment_single_core();
        let mono = deployed(&p1, &d1).expect("deploys");
        let space_mono = explore(&mono, &ExploreOptions::default().with_max_states(20_000));
        let (p4, d4) = deployment_quad_core();
        let quad = deployed(&p4, &d4).expect("deploys");
        let space_quad = explore(&quad, &ExploreOptions::default().with_max_states(20_000));

        let par_inf = space_inf.stats().max_step_parallelism;
        let par_mono = space_mono.stats().max_step_parallelism;
        let par_quad = space_quad.stats().max_step_parallelism;
        assert!(
            par_mono < par_quad && par_quad <= par_inf,
            "mono {par_mono} < quad {par_quad} <= inf {par_inf}"
        );
    }

    #[test]
    fn deadlock_states_shrink_with_core_count() {
        // the quantitative state-space result of the study: allocation
        // introduces reachable deadlock states (blocked writes while
        // holding the processor); more cores mean fewer of them, and the
        // infinite-resource model has none.
        let infinite = infinite_resources().expect("builds");
        let d_inf = explore(&infinite, &ExploreOptions::default())
            .deadlocks()
            .len();
        let mut counts = Vec::new();
        for (platform, deployment) in [
            deployment_single_core(),
            deployment_dual_core(),
            deployment_quad_core(),
        ] {
            let spec = deployed(&platform, &deployment).expect("deploys");
            let space = explore(&spec, &ExploreOptions::default().with_max_states(50_000));
            assert!(!space.truncated());
            counts.push(space.deadlocks().len());
        }
        assert_eq!(d_inf, 0);
        assert!(
            counts[0] > counts[1] && counts[1] > counts[2] && counts[2] > d_inf,
            "mono {} > dual {} > quad {} > inf {}",
            counts[0],
            counts[1],
            counts[2],
            d_inf
        );
    }
}
