//! Classical SDF static analysis: topology matrix, repetition vector,
//! consistency (Lee & Messerschmitt 1987, the paper's reference \[1\]).

use crate::error::SdfError;
use crate::graph::SdfGraph;

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    a / gcd(a, b) * b
}

/// The topology matrix `Γ`: one row per place, one column per agent;
/// `Γ[p][a] = +push` if agent `a` writes place `p`, `−pop` if it reads
/// it (a self-loop contributes `push − pop`).
#[must_use]
pub fn topology_matrix(graph: &SdfGraph) -> Vec<Vec<i64>> {
    let mut matrix = vec![vec![0i64; graph.agents().len()]; graph.places().len()];
    for (p, place) in graph.places().iter().enumerate() {
        let out = &graph.ports()[place.output_port];
        let inp = &graph.ports()[place.input_port];
        matrix[p][out.agent] += i64::from(out.rate);
        matrix[p][inp.agent] -= i64::from(inp.rate);
    }
    matrix
}

/// Computes the repetition vector: the smallest positive integer vector
/// `r` with `Γ·r = 0`, i.e. `r[src]·push = r[dst]·pop` for every place.
///
/// Agents disconnected from the rest get their own component (solved
/// per weakly-connected component).
///
/// # Errors
///
/// Returns [`SdfError::Inconsistent`] when no such vector exists (the
/// graph has no periodic bounded-memory schedule).
pub fn repetition_vector(graph: &SdfGraph) -> Result<Vec<u64>, SdfError> {
    let n = graph.agents().len();
    // rational solution r[a] = num[a]/den[a], propagated by BFS
    let mut num = vec![0u64; n];
    let mut den = vec![1u64; n];
    let mut visited = vec![false; n];

    // adjacency: (neighbor, my_rate, neighbor_rate, place_index)
    let mut adj: Vec<Vec<(usize, u64, u64, usize)>> = vec![Vec::new(); n];
    for (p, place) in graph.places().iter().enumerate() {
        let out = &graph.ports()[place.output_port];
        let inp = &graph.ports()[place.input_port];
        // r[src]·push = r[dst]·pop
        adj[out.agent].push((inp.agent, u64::from(out.rate), u64::from(inp.rate), p));
        adj[inp.agent].push((out.agent, u64::from(inp.rate), u64::from(out.rate), p));
    }

    for start in 0..n {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        num[start] = 1;
        den[start] = 1;
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(a) = queue.pop_front() {
            for &(b, rate_a, rate_b, place) in &adj[a] {
                // r[a]·rate_a = r[b]·rate_b  ⇒  r[b] = r[a]·rate_a/rate_b
                let nb = num[a] * rate_a;
                let db = den[a] * rate_b;
                let g = gcd(nb, db);
                let (nb, db) = (nb / g, db / g);
                if !visited[b] {
                    visited[b] = true;
                    num[b] = nb;
                    den[b] = db;
                    queue.push_back(b);
                } else if num[b] * db != nb * den[b] {
                    return Err(SdfError::Inconsistent {
                        place: graph.place_label(&graph.places()[place]),
                    });
                }
            }
        }
    }

    // scale to the least integer vector
    let denominator_lcm = den.iter().copied().fold(1u64, lcm);
    let mut r: Vec<u64> = num
        .iter()
        .zip(&den)
        .map(|(&n_i, &d_i)| n_i * (denominator_lcm / d_i))
        .collect();
    let overall_gcd = r.iter().copied().fold(0u64, gcd);
    if overall_gcd > 1 {
        for v in &mut r {
            *v /= overall_gcd;
        }
    }
    Ok(r)
}

/// Whether the graph admits a periodic bounded-memory schedule.
#[must_use]
pub fn is_consistent(graph: &SdfGraph) -> bool {
    repetition_vector(graph).is_ok()
}

/// Total activations in one iteration of the periodic schedule
/// (the sum of the repetition vector).
///
/// # Errors
///
/// Propagates [`SdfError::Inconsistent`] from the repetition vector.
pub fn iteration_length(graph: &SdfGraph) -> Result<u64, SdfError> {
    Ok(repetition_vector(graph)?.iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_chain(k: usize) -> SdfGraph {
        let mut g = SdfGraph::new("chain");
        for i in 0..k {
            g.add_agent(&format!("a{i}"), 0).expect("agent");
        }
        for i in 0..k.saturating_sub(1) {
            g.connect(&format!("a{i}"), &format!("a{}", i + 1), 1, 1, 2, 0)
                .expect("place");
        }
        g
    }

    #[test]
    fn uniform_chain_has_unit_vector() {
        let g = uniform_chain(4);
        assert_eq!(repetition_vector(&g).expect("consistent"), vec![1, 1, 1, 1]);
        assert_eq!(iteration_length(&g).expect("consistent"), 4);
    }

    #[test]
    fn multirate_chain_scales() {
        // a --2:3--> b : r = [3, 2]
        let mut g = SdfGraph::new("mr");
        g.add_agent("a", 0).expect("a");
        g.add_agent("b", 0).expect("b");
        g.connect("a", "b", 2, 3, 6, 0).expect("place");
        assert_eq!(repetition_vector(&g).expect("consistent"), vec![3, 2]);
    }

    #[test]
    fn classic_lee_messerschmitt_example() {
        // rates chosen so r = [3, 2, 6]? check: a→b 2:3 (3·2=2·3 ✓ with
        // r=[3,2]); b→c 3:1 gives r[c] = 2·3 = 6.
        let mut g = SdfGraph::new("lm");
        g.add_agent("a", 0).expect("a");
        g.add_agent("b", 0).expect("b");
        g.add_agent("c", 0).expect("c");
        g.connect("a", "b", 2, 3, 6, 0).expect("p1");
        g.connect("b", "c", 3, 1, 3, 0).expect("p2");
        assert_eq!(repetition_vector(&g).expect("consistent"), vec![3, 2, 6]);
    }

    #[test]
    fn inconsistent_cycle_is_detected() {
        // a→b 1:1, b→a 2:1 ⇒ r[a]=r[b] and 2r[b]=r[a]: impossible
        let mut g = SdfGraph::new("bad");
        g.add_agent("a", 0).expect("a");
        g.add_agent("b", 0).expect("b");
        g.connect("a", "b", 1, 1, 2, 0).expect("p1");
        g.connect("b", "a", 2, 1, 2, 1).expect("p2");
        assert!(matches!(
            repetition_vector(&g),
            Err(SdfError::Inconsistent { .. })
        ));
        assert!(!is_consistent(&g));
    }

    #[test]
    fn consistent_cycle_works() {
        let mut g = SdfGraph::new("ring");
        g.add_agent("a", 0).expect("a");
        g.add_agent("b", 0).expect("b");
        g.connect("a", "b", 1, 1, 1, 0).expect("p1");
        g.connect("b", "a", 1, 1, 1, 1).expect("p2");
        assert_eq!(repetition_vector(&g).expect("consistent"), vec![1, 1]);
    }

    #[test]
    fn disconnected_components_each_get_ones() {
        let mut g = SdfGraph::new("two");
        g.add_agent("a", 0).expect("a");
        g.add_agent("b", 0).expect("b");
        assert_eq!(repetition_vector(&g).expect("consistent"), vec![1, 1]);
    }

    #[test]
    fn topology_matrix_signs() {
        let mut g = SdfGraph::new("mr");
        g.add_agent("a", 0).expect("a");
        g.add_agent("b", 0).expect("b");
        g.connect("a", "b", 2, 3, 6, 0).expect("place");
        assert_eq!(topology_matrix(&g), vec![vec![2, -3]]);
    }

    #[test]
    fn self_loop_contributes_net_rate() {
        let mut g = SdfGraph::new("loop");
        g.add_agent("a", 0).expect("a");
        g.connect("a", "a", 1, 1, 1, 1).expect("place");
        assert_eq!(topology_matrix(&g), vec![vec![0]]);
        assert_eq!(repetition_vector(&g).expect("consistent"), vec![1]);
    }
}
