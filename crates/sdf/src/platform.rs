//! The deployment extension sketched in the paper's conclusion: "we
//! also extended SDF (i.e., the syntax and the MoCC) to define a
//! deployment on a simple platform", taking "into account the
//! unavoidable impacts introduced by the choice of a deployment platform
//! on concurrency and timing".
//!
//! A [`Platform`] is a set of processors; a [`Deployment`] allocates
//! agents to processors and assigns each an execution time (processing
//! cycles). Deploying adds two effects to the application MoCC:
//!
//! * every deployed agent's `N` becomes its platform execution time, so
//!   activations occupy the processor for `N` `isExecuting` cycles;
//! * agents allocated to the same processor are serialized by a
//!   [`ProcessorMutex`] constraint: while one executes, no co-located
//!   agent may start.

use crate::error::SdfError;
use crate::graph::SdfGraph;
use crate::mocc::{agent_event, build_specification_with, MoccVariant};
use moccml_kernel::{Constraint, EventId, KernelError, Specification, StateKey, Step, StepFormula};
use std::collections::HashMap;

/// An execution platform: a named set of processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Platform {
    name: String,
    processors: Vec<String>,
}

impl Platform {
    /// Creates a platform with `processor_count` processors named
    /// `p0…p{n−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `processor_count` is zero.
    #[must_use]
    pub fn new(name: &str, processor_count: usize) -> Self {
        assert!(
            processor_count > 0,
            "a platform needs at least one processor"
        );
        Platform {
            name: name.to_owned(),
            processors: (0..processor_count).map(|i| format!("p{i}")).collect(),
        }
    }

    /// Platform name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Processor names.
    #[must_use]
    pub fn processors(&self) -> &[String] {
        &self.processors
    }
}

/// An allocation of agents onto a platform, with per-agent execution
/// times.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Deployment {
    /// `agent → processor index`.
    allocation: HashMap<String, usize>,
    /// `agent → processing cycles on its processor` (the paper's `N`).
    exec_cycles: HashMap<String, u32>,
}

impl Deployment {
    /// Creates an empty deployment.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `agent` to `processor` with `cycles` execution cycles
    /// (builder style).
    #[must_use]
    pub fn assign(mut self, agent: &str, processor: usize, cycles: u32) -> Self {
        self.allocation.insert(agent.to_owned(), processor);
        self.exec_cycles.insert(agent.to_owned(), cycles);
        self
    }

    /// The processor of `agent`, if allocated.
    #[must_use]
    pub fn processor_of(&self, agent: &str) -> Option<usize> {
        self.allocation.get(agent).copied()
    }

    /// The execution time of `agent`, if allocated.
    #[must_use]
    pub fn cycles_of(&self, agent: &str) -> Option<u32> {
        self.exec_cycles.get(agent).copied()
    }

    /// Agents allocated to `processor`, in graph order.
    #[must_use]
    pub fn agents_on(&self, graph: &SdfGraph, processor: usize) -> Vec<String> {
        graph
            .agents()
            .iter()
            .filter(|a| self.allocation.get(&a.name) == Some(&processor))
            .map(|a| a.name.clone())
            .collect()
    }
}

/// Mutual exclusion of agents sharing one processor.
///
/// The constraint watches the `start` and `stop` events of the
/// co-located agents: while agent `i` executes (it has started and not
/// yet stopped), no other co-located agent may start — and two
/// co-located agents can never start in the same step. An atomic
/// activation (`start` and `stop` simultaneous, the `N = 0` case)
/// occupies the processor for that single step only.
#[derive(Debug, Clone)]
pub struct ProcessorMutex {
    name: String,
    starts: Vec<EventId>,
    stops: Vec<EventId>,
    /// Index into `starts` of the executing agent, if any.
    busy: Option<usize>,
}

impl ProcessorMutex {
    /// Creates a mutex over co-located agents given as
    /// `(start, stop)` event pairs.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two agents are given (the mutex would be
    /// vacuous).
    #[must_use]
    pub fn new(name: &str, agents: &[(EventId, EventId)]) -> Self {
        assert!(agents.len() >= 2, "a mutex needs at least two agents");
        ProcessorMutex {
            name: name.to_owned(),
            starts: agents.iter().map(|(s, _)| *s).collect(),
            stops: agents.iter().map(|(_, t)| *t).collect(),
            busy: None,
        }
    }

    /// Index of the currently executing agent, if any.
    #[must_use]
    pub fn busy_agent(&self) -> Option<usize> {
        self.busy
    }
}

impl Constraint for ProcessorMutex {
    fn name(&self) -> &str {
        &self.name
    }

    fn constrained_events(&self) -> Vec<EventId> {
        self.starts.iter().chain(&self.stops).copied().collect()
    }

    fn current_formula(&self) -> StepFormula {
        match self.busy {
            Some(_) => {
                // the processor is taken: no agent may start
                StepFormula::none_of(self.starts.iter().copied())
            }
            None => {
                // pairwise exclusion of starts
                let mut clauses = Vec::new();
                for (i, &a) in self.starts.iter().enumerate() {
                    for &b in &self.starts[i + 1..] {
                        clauses.push(StepFormula::not(StepFormula::and(vec![
                            StepFormula::event(a),
                            StepFormula::event(b),
                        ])));
                    }
                }
                StepFormula::and(clauses)
            }
        }
    }

    fn fire(&mut self, step: &Step) -> Result<(), KernelError> {
        if !self.current_formula().eval(step) {
            return Err(KernelError::StepRejected {
                constraint: self.name.clone(),
                step: step.to_string(),
            });
        }
        match self.busy {
            Some(i) => {
                if step.contains(self.stops[i]) {
                    self.busy = None;
                }
            }
            None => {
                if let Some(i) = (0..self.starts.len()).find(|&i| step.contains(self.starts[i])) {
                    // an atomic activation (start with simultaneous
                    // stop) frees the processor within the step
                    if !step.contains(self.stops[i]) {
                        self.busy = Some(i);
                    }
                }
            }
        }
        Ok(())
    }

    fn state_key(&self) -> StateKey {
        StateKey::from_values([self.busy.map_or(-1, |i| i as i64)])
    }

    fn restore(&mut self, key: &StateKey) -> Result<(), KernelError> {
        match key.values() {
            [-1] => {
                self.busy = None;
                Ok(())
            }
            [i] if *i >= 0 && (*i as usize) < self.starts.len() => {
                self.busy = Some(*i as usize);
                Ok(())
            }
            _ => Err(KernelError::InvalidStateKey {
                constraint: self.name.clone(),
                reason: "expected one value in {-1, 0..agents}".to_owned(),
            }),
        }
    }

    fn reset(&mut self) {
        self.busy = None;
    }

    fn boxed_clone(&self) -> Box<dyn Constraint> {
        Box::new(self.clone())
    }
}

/// Builds the execution model of `graph` deployed on `platform`
/// according to `deployment`.
///
/// The returned specification is the application MoCC (with each
/// agent's `N` replaced by its deployment execution time) conjoined
/// with one [`ProcessorMutex`] per processor hosting at least two
/// agents.
///
/// # Errors
///
/// Returns [`SdfError::UnknownAgent`] if the deployment names an agent
/// missing from the graph, [`SdfError::InvalidParameter`] if an agent is
/// not allocated or its processor is out of range, and [`SdfError::Build`]
/// for lower-level failures.
pub fn deploy(
    graph: &SdfGraph,
    platform: &Platform,
    deployment: &Deployment,
) -> Result<Specification, SdfError> {
    for (agent, &proc) in &deployment.allocation {
        if graph.agent_index(agent).is_none() {
            return Err(SdfError::UnknownAgent {
                name: agent.clone(),
            });
        }
        if proc >= platform.processors().len() {
            return Err(SdfError::InvalidParameter {
                reason: format!(
                    "agent `{agent}` allocated to processor {proc}, platform `{}` has {}",
                    platform.name(),
                    platform.processors().len()
                ),
            });
        }
    }
    // rebuild the graph with the deployment's execution times; every
    // agent must be allocated
    let deployed = {
        let mut g = SdfGraph::new(&format!("{}@{}", graph.name(), platform.name()));
        for agent in graph.agents() {
            let cycles =
                deployment
                    .cycles_of(&agent.name)
                    .ok_or_else(|| SdfError::InvalidParameter {
                        reason: format!("agent `{}` is not allocated", agent.name),
                    })?;
            g.add_agent(&agent.name, cycles)?;
        }
        for place in graph.places() {
            let out = &graph.ports()[place.output_port];
            let inp = &graph.ports()[place.input_port];
            g.connect(
                &graph.agents()[out.agent].name,
                &graph.agents()[inp.agent].name,
                out.rate,
                inp.rate,
                place.capacity,
                place.delay,
            )?;
        }
        g
    };
    let mut spec = build_specification_with(&deployed, MoccVariant::Standard)?;
    for (proc_idx, proc_name) in platform.processors().iter().enumerate() {
        let agents = deployment.agents_on(&deployed, proc_idx);
        if agents.len() < 2 {
            continue;
        }
        let pairs: Vec<(EventId, EventId)> = agents
            .iter()
            .map(|a| {
                let start = spec
                    .universe()
                    .lookup(&agent_event(a, "start"))
                    .expect("agent events generated by build_specification");
                let stop = spec
                    .universe()
                    .lookup(&agent_event(a, "stop"))
                    .expect("agent events generated by build_specification");
                (start, stop)
            })
            .collect();
        spec.add_constraint(Box::new(ProcessorMutex::new(
            &format!("{proc_name}.mutex"),
            &pairs,
        )));
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_engine::{ExploreOptions, MaxParallel, Program, Simulator, StateSpace};
    use moccml_kernel::{Specification, Universe};

    fn explore(spec: &Specification, options: &ExploreOptions) -> StateSpace {
        Program::compile(spec).explore(options)
    }

    fn two_agent_graph() -> SdfGraph {
        let mut g = SdfGraph::new("pair");
        g.add_agent("a", 0).expect("a");
        g.add_agent("b", 0).expect("b");
        g
    }

    fn mutex_fixture() -> (ProcessorMutex, EventId, EventId, EventId, EventId) {
        let mut u = Universe::new();
        let sa = u.event("a.start");
        let ta = u.event("a.stop");
        let sb = u.event("b.start");
        let tb = u.event("b.stop");
        let m = ProcessorMutex::new("p0.mutex", &[(sa, ta), (sb, tb)]);
        (m, sa, ta, sb, tb)
    }

    #[test]
    fn mutex_blocks_simultaneous_starts() {
        let (m, sa, _, sb, _) = mutex_fixture();
        assert!(m.current_formula().eval(&Step::from_events([sa])));
        assert!(!m.current_formula().eval(&Step::from_events([sa, sb])));
    }

    #[test]
    fn mutex_blocks_start_while_busy() {
        let (mut m, sa, ta, sb, _) = mutex_fixture();
        m.fire(&Step::from_events([sa])).expect("a starts");
        assert_eq!(m.busy_agent(), Some(0));
        assert!(!m.current_formula().eval(&Step::from_events([sb])));
        m.fire(&Step::from_events([ta])).expect("a stops");
        assert_eq!(m.busy_agent(), None);
        assert!(m.current_formula().eval(&Step::from_events([sb])));
    }

    #[test]
    fn atomic_activation_does_not_hold_the_processor() {
        let (mut m, sa, ta, sb, _) = mutex_fixture();
        m.fire(&Step::from_events([sa, ta])).expect("atomic");
        assert_eq!(m.busy_agent(), None);
        assert!(m.current_formula().eval(&Step::from_events([sb])));
    }

    #[test]
    fn mutex_state_round_trip() {
        let (mut m, sa, _, _, _) = mutex_fixture();
        m.fire(&Step::from_events([sa])).expect("start");
        let key = m.state_key();
        m.reset();
        assert_eq!(m.busy_agent(), None);
        m.restore(&key).expect("restore");
        assert_eq!(m.busy_agent(), Some(0));
        assert!(m.restore(&StateKey::from_values([9])).is_err());
        assert!(m.restore(&StateKey::new()).is_err());
    }

    #[test]
    fn deployment_requires_full_allocation() {
        let g = two_agent_graph();
        let platform = Platform::new("mono", 1);
        let d = Deployment::new().assign("a", 0, 1); // b missing
        assert!(matches!(
            deploy(&g, &platform, &d),
            Err(SdfError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn deployment_validates_agent_and_processor() {
        let g = two_agent_graph();
        let platform = Platform::new("mono", 1);
        let d = Deployment::new()
            .assign("ghost", 0, 1)
            .assign("a", 0, 1)
            .assign("b", 0, 1);
        assert!(matches!(
            deploy(&g, &platform, &d),
            Err(SdfError::UnknownAgent { .. })
        ));
        let d = Deployment::new().assign("a", 5, 1).assign("b", 0, 1);
        assert!(matches!(
            deploy(&g, &platform, &d),
            Err(SdfError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn colocated_independent_agents_are_serialized() {
        // without a platform both agents can fire in one step; on one
        // processor they cannot — the deployment's impact on
        // parallelism, observable in the state space.
        let g = two_agent_graph();
        let infinite = crate::mocc::build_specification(&g).expect("builds");
        let space_inf = explore(&infinite, &ExploreOptions::default());
        // both port-less agents fire atomically: {start, stop} × 2
        assert_eq!(space_inf.stats().max_step_parallelism, 4);

        let platform = Platform::new("mono", 1);
        let d = Deployment::new().assign("a", 0, 0).assign("b", 0, 0);
        let deployed = deploy(&g, &platform, &d).expect("deploys");
        let space_mono = explore(&deployed, &ExploreOptions::default());
        assert_eq!(space_mono.stats().max_step_parallelism, 2); // one at a time
    }

    #[test]
    fn execution_time_serializes_across_steps() {
        let g = two_agent_graph();
        let platform = Platform::new("mono", 1);
        let d = Deployment::new().assign("a", 0, 2).assign("b", 0, 2);
        let deployed = deploy(&g, &platform, &d).expect("deploys");
        let mut sim = Simulator::new(deployed, MaxParallel);
        let report = sim.run(12);
        assert!(!report.deadlocked);
        let u = sim.specification().universe();
        let sa = u.lookup("a.start").expect("e");
        let sb = u.lookup("b.start").expect("e");
        // while one agent executes (2 cycles) the other cannot start:
        // the two starts never coincide
        for step in report.schedule.iter() {
            assert!(!(step.contains(sa) && step.contains(sb)));
        }
        // the processor is never idle for long: activations do happen
        assert!(report.schedule.occurrences(sa) + report.schedule.occurrences(sb) >= 2);
    }

    #[test]
    fn separate_processors_preserve_parallelism() {
        let g = two_agent_graph();
        let platform = Platform::new("dual", 2);
        let d = Deployment::new().assign("a", 0, 0).assign("b", 1, 0);
        let deployed = deploy(&g, &platform, &d).expect("deploys");
        let space = explore(&deployed, &ExploreOptions::default());
        // no mutex instantiated: same parallelism as infinite resources
        assert_eq!(space.stats().max_step_parallelism, 4);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn mutex_needs_two_agents() {
        let mut u = Universe::new();
        let s = u.event("s");
        let t = u.event("t");
        let _ = ProcessorMutex::new("m", &[(s, t)]);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn platform_needs_processors() {
        let _ = Platform::new("empty", 0);
    }
}
