//! Static SDF scheduling (Lee & Messerschmitt 1987): construction of a
//! periodic admissible sequential schedule (PASS) and buffer-bound
//! analysis.
//!
//! The paper's MoCC makes *all* valid schedules explorable at run time;
//! the classical static scheduler computes one particular valid
//! schedule at compile time. Having both lets the test-suite check that
//! the static schedule is accepted by the woven execution model — the
//! two semantics agree.

use crate::analysis::repetition_vector;
use crate::error::SdfError;
use crate::graph::SdfGraph;

/// A periodic admissible sequential schedule: one iteration as an
/// ordered list of agent indices (each agent `a` appears exactly
/// `repetition_vector[a]` times).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pass {
    firings: Vec<usize>,
}

impl Pass {
    /// The firing order (agent indices).
    #[must_use]
    pub fn firings(&self) -> &[usize] {
        &self.firings
    }

    /// Number of firings in one iteration.
    #[must_use]
    pub fn len(&self) -> usize {
        self.firings.len()
    }

    /// Whether the schedule is empty (graph without agents).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.firings.is_empty()
    }

    /// Renders the schedule with agent names, e.g. `a b a c`.
    #[must_use]
    pub fn display(&self, graph: &SdfGraph) -> String {
        self.firings
            .iter()
            .map(|&a| graph.agents()[a].name.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// State of the places during a symbolic execution.
struct TokenState {
    sizes: Vec<i64>,
}

impl TokenState {
    fn new(graph: &SdfGraph) -> Self {
        TokenState {
            sizes: graph.places().iter().map(|p| i64::from(p.delay)).collect(),
        }
    }

    /// Whether agent `a` can fire: enough tokens on every input, enough
    /// room on every output (`bounded` selects capacity enforcement).
    fn can_fire(&self, graph: &SdfGraph, a: usize, bounded: bool) -> bool {
        graph.places().iter().enumerate().all(|(i, place)| {
            let out = &graph.ports()[place.output_port];
            let inp = &graph.ports()[place.input_port];
            let mut size = self.sizes[i];
            // reads happen before writes within one firing
            if inp.agent == a {
                size -= i64::from(inp.rate);
                if size < 0 {
                    return false;
                }
            }
            if out.agent == a {
                size += i64::from(out.rate);
                if bounded && size > i64::from(place.capacity) {
                    return false;
                }
            }
            true
        })
    }

    fn fire(&mut self, graph: &SdfGraph, a: usize) {
        for (i, place) in graph.places().iter().enumerate() {
            let out = &graph.ports()[place.output_port];
            let inp = &graph.ports()[place.input_port];
            if inp.agent == a {
                self.sizes[i] -= i64::from(inp.rate);
            }
            if out.agent == a {
                self.sizes[i] += i64::from(out.rate);
            }
        }
    }
}

/// Constructs a PASS by demand-driven list scheduling, honouring place
/// capacities.
///
/// # Errors
///
/// Returns [`SdfError::Inconsistent`] for inconsistent graphs and
/// [`SdfError::InvalidParameter`] when no admissible schedule exists
/// under the declared capacities/delays (the classical SDF deadlock).
pub fn sequential_schedule(graph: &SdfGraph) -> Result<Pass, SdfError> {
    let r = repetition_vector(graph)?;
    let mut remaining: Vec<u64> = r.clone();
    let mut state = TokenState::new(graph);
    let mut firings = Vec::new();
    let total: u64 = r.iter().sum();
    while (firings.len() as u64) < total {
        let fired =
            (0..graph.agents().len()).find(|&a| remaining[a] > 0 && state.can_fire(graph, a, true));
        match fired {
            Some(a) => {
                state.fire(graph, a);
                remaining[a] -= 1;
                firings.push(a);
            }
            None => {
                return Err(SdfError::InvalidParameter {
                    reason: "no admissible sequential schedule: the graph deadlocks \
                             under the declared delays/capacities"
                        .to_owned(),
                })
            }
        }
    }
    // a full iteration must return every place to its initial marking
    debug_assert_eq!(
        state.sizes,
        graph
            .places()
            .iter()
            .map(|p| i64::from(p.delay))
            .collect::<Vec<_>>()
    );
    Ok(Pass { firings })
}

/// Computes, per place, the maximum occupancy reached by the
/// capacity-unbounded PASS — the minimal capacities under which that
/// schedule stays admissible (classical buffer-sizing analysis).
///
/// # Errors
///
/// Returns [`SdfError::Inconsistent`] for inconsistent graphs and
/// [`SdfError::InvalidParameter`] when even unbounded buffers admit no
/// schedule (a delay-free cycle).
pub fn minimal_buffer_bounds(graph: &SdfGraph) -> Result<Vec<u32>, SdfError> {
    let r = repetition_vector(graph)?;
    let mut remaining: Vec<u64> = r.clone();
    let mut state = TokenState::new(graph);
    let mut maxima: Vec<i64> = state.sizes.clone();
    let total: u64 = r.iter().sum();
    let mut fired_count = 0u64;
    while fired_count < total {
        let fired = (0..graph.agents().len())
            .find(|&a| remaining[a] > 0 && state.can_fire(graph, a, false));
        match fired {
            Some(a) => {
                state.fire(graph, a);
                remaining[a] -= 1;
                fired_count += 1;
                for (m, s) in maxima.iter_mut().zip(&state.sizes) {
                    *m = (*m).max(*s);
                }
            }
            None => {
                return Err(SdfError::InvalidParameter {
                    reason: "graph deadlocks even with unbounded buffers".to_owned(),
                })
            }
        }
    }
    Ok(maxima
        .into_iter()
        .map(|m| u32::try_from(m).expect("occupancy is non-negative"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mocc::build_specification;
    use moccml_kernel::Step;

    fn multirate() -> SdfGraph {
        let mut g = SdfGraph::new("mr");
        g.add_agent("a", 0).expect("fresh");
        g.add_agent("b", 0).expect("fresh");
        g.connect("a", "b", 2, 3, 6, 0).expect("valid");
        g
    }

    #[test]
    fn pass_respects_repetition_vector() {
        let g = multirate();
        let pass = sequential_schedule(&g).expect("schedulable");
        assert_eq!(pass.len(), 5); // r = [3, 2]
        let a_count = pass.firings().iter().filter(|&&x| x == 0).count();
        let b_count = pass.firings().iter().filter(|&&x| x == 1).count();
        assert_eq!((a_count, b_count), (3, 2));
        // list scheduling in agent order: `a` fires while capacity lasts
        assert_eq!(pass.display(&g), "a a a b b");
    }

    #[test]
    fn deadlocked_graph_has_no_pass() {
        let mut g = SdfGraph::new("dead");
        g.add_agent("a", 0).expect("fresh");
        g.add_agent("b", 0).expect("fresh");
        g.connect("a", "b", 1, 1, 1, 0).expect("valid");
        g.connect("b", "a", 1, 1, 1, 0).expect("valid");
        assert!(matches!(
            sequential_schedule(&g),
            Err(SdfError::InvalidParameter { .. })
        ));
        assert!(matches!(
            minimal_buffer_bounds(&g),
            Err(SdfError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn buffer_bounds_match_peak_occupancy() {
        let g = multirate();
        let bounds = minimal_buffer_bounds(&g).expect("schedulable");
        // the unbounded list schedule fires a a a first: peak 6 tokens
        assert_eq!(bounds, vec![6]);
    }

    #[test]
    fn bounds_make_tight_graphs_schedulable() {
        // shrink capacities to the computed bounds and re-schedule
        let g = multirate();
        let bounds = minimal_buffer_bounds(&g).expect("schedulable");
        let mut tight = SdfGraph::new("tight");
        tight.add_agent("a", 0).expect("fresh");
        tight.add_agent("b", 0).expect("fresh");
        tight.connect("a", "b", 2, 3, bounds[0], 0).expect("valid");
        assert!(sequential_schedule(&tight).is_ok());
    }

    #[test]
    fn pass_is_accepted_by_the_execution_model() {
        // the bridge theorem: replaying the static schedule as atomic
        // activations is a valid run of the woven MoCC.
        let g = multirate();
        let pass = sequential_schedule(&g).expect("schedulable");
        let mut spec = build_specification(&g).expect("builds");
        for &agent in pass.firings() {
            let name = &g.agents()[agent].name;
            let u = spec.universe();
            let mut step = Step::new();
            step.insert(u.lookup(&format!("{name}.start")).expect("event"));
            step.insert(u.lookup(&format!("{name}.stop")).expect("event"));
            for p in g.input_ports(agent) {
                step.insert(
                    u.lookup(&format!("{}.read", g.ports()[p].name))
                        .expect("event"),
                );
            }
            for p in g.output_ports(agent) {
                step.insert(
                    u.lookup(&format!("{}.write", g.ports()[p].name))
                        .expect("event"),
                );
            }
            assert!(spec.accepts(&step), "PASS firing of `{name}` accepted");
            spec.fire(&step).expect("accepted step fires");
        }
    }

    #[test]
    fn delays_unlock_cycles() {
        let mut g = SdfGraph::new("ring");
        g.add_agent("a", 0).expect("fresh");
        g.add_agent("b", 0).expect("fresh");
        g.connect("a", "b", 1, 1, 1, 0).expect("valid");
        g.connect("b", "a", 1, 1, 1, 1).expect("valid");
        let pass = sequential_schedule(&g).expect("delay unlocks the ring");
        assert_eq!(pass.display(&g), "a b");
    }
}
