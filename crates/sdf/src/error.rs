//! Error type of the SDF crate.

use std::error::Error;
use std::fmt;

/// Errors raised while building or analysing SDF graphs and their
/// execution models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SdfError {
    /// An agent name was used twice.
    DuplicateAgent {
        /// The colliding name.
        name: String,
    },
    /// An agent was referenced but never added.
    UnknownAgent {
        /// The missing name.
        name: String,
    },
    /// A structural parameter was out of range (zero rate, zero
    /// capacity, capacity smaller than rates or delay…).
    InvalidParameter {
        /// What was wrong.
        reason: String,
    },
    /// The graph is not consistent (no repetition vector exists).
    Inconsistent {
        /// The offending place, rendered as `src→dst`.
        place: String,
    },
    /// A lower layer failed while generating the execution model.
    Build {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for SdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdfError::DuplicateAgent { name } => write!(f, "duplicate agent `{name}`"),
            SdfError::UnknownAgent { name } => write!(f, "unknown agent `{name}`"),
            SdfError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            SdfError::Inconsistent { place } => {
                write!(f, "graph is not consistent at place {place}")
            }
            SdfError::Build { reason } => write!(f, "cannot build execution model: {reason}"),
        }
    }
}

impl Error for SdfError {}

impl From<moccml_automata::AutomataError> for SdfError {
    fn from(e: moccml_automata::AutomataError) -> Self {
        SdfError::Build {
            reason: e.to_string(),
        }
    }
}

impl From<moccml_metamodel::MetamodelError> for SdfError {
    fn from(e: moccml_metamodel::MetamodelError) -> Self {
        SdfError::Build {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_subject() {
        assert!(SdfError::DuplicateAgent { name: "a".into() }
            .to_string()
            .contains("`a`"));
        assert!(SdfError::Inconsistent {
            place: "a→b".into()
        }
        .to_string()
        .contains("a→b"));
    }
}
