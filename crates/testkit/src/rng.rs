//! The deterministic value source handed to property closures.

/// A seeded pseudo-random generator with value-generation helpers.
///
/// The core is xorshift64* over a SplitMix64-scrambled seed: SplitMix64
/// guarantees a well-mixed non-zero state even for tiny or correlated
/// seeds (case indices), xorshift64* then gives a cheap full-period
/// stream. The design follows `moccml_engine::SplitMix64`, which the
/// engine uses for reproducible simulation policies.
///
/// # Example
///
/// ```
/// use moccml_testkit::TestRng;
///
/// let mut rng = TestRng::new(7);
/// let v = rng.u32_in(1..3);
/// assert!((1..3).contains(&v));
/// // same seed ⇒ same stream
/// assert_eq!(TestRng::new(7).u32_in(1..3), v);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestRng {
    state: u64,
}

/// One SplitMix64 output step (Steele, Lea & Flood 2014).
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Creates a generator from a seed; any seed (including 0) is fine.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        // xorshift needs a non-zero state; splitmix64(0) != 0.
        let mut state = splitmix64(seed);
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        TestRng { state }
    }

    /// Next 64 pseudo-random bits (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A uniformly random `u64` over the full range (the ported
    /// equivalent of proptest's `any::<u64>()`).
    pub fn any_u64(&mut self) -> u64 {
        self.next_u64()
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // multiply-shift bounded sampling (Lemire); bias is negligible
        // for the small bounds used by test-case generation.
        let x = u128::from(self.next_u64());
        ((x * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in the half-open range (e.g. `1..4`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u64_in(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range {range:?}");
        range.start + self.u64_below(range.end - range.start)
    }

    /// Uniform `u32` in the half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u32_in(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.u64_in(u64::from(range.start)..u64::from(range.end)) as u32
    }

    /// Uniform `u8` in the half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn u8_in(&mut self, range: std::ops::Range<u8>) -> u8 {
        self.u64_in(u64::from(range.start)..u64::from(range.end)) as u8
    }

    /// Uniform `usize` in the half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        self.u64_in(range.start as u64..range.end as u64) as usize
    }

    /// A random boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A vector whose length is drawn from `len`, with every element
    /// produced by `item` (the ported equivalent of
    /// `proptest::collection::vec(strategy, len)`).
    ///
    /// # Panics
    ///
    /// Panics if the length range is empty.
    pub fn vec_of<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut item: impl FnMut(&mut Self) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| item(self)).collect()
    }

    /// A vector of exactly `n` elements produced by `item`.
    pub fn vec_exact<T>(&mut self, n: usize, mut item: impl FnMut(&mut Self) -> T) -> Vec<T> {
        (0..n).map(|_| item(self)).collect()
    }

    /// A uniformly chosen reference into a non-empty slice (the ported
    /// equivalent of `prop_oneof!` over constant alternatives).
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choice<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choice over an empty slice");
        &items[self.usize_in(0..items.len())]
    }

    /// Forks an independent child stream identified by `stream_id`
    /// (SplitMix64 stream splitting). Forking reads but does not
    /// advance the parent, so `fork(i)` is a pure function of the
    /// parent's current state: the same parent forked with the same id
    /// always yields the same stream, regardless of how many other
    /// forks were taken in between — exactly what per-trace seeding
    /// needs to stay deterministic for any worker count.
    ///
    /// Adjacent ids are hashed apart the same way the case runner
    /// spreads case indices: multiply by the golden-ratio increment,
    /// then scramble through SplitMix64.
    #[must_use]
    pub fn fork(&self, stream_id: u64) -> TestRng {
        TestRng::new(splitmix64(
            self.state ^ stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        // adjacent seeds (the runner derives case seeds from indices)
        // must still give unrelated streams.
        let first: Vec<u64> = (0..8).map(|s| TestRng::new(s).next_u64()).collect();
        let mut sorted = first.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), first.len(), "collisions across seeds");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = TestRng::new(0);
        assert_ne!(rng.next_u64(), rng.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = TestRng::new(9);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.usize_in(2..7);
            assert!((2..7).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reached: {seen:?}");
    }

    #[test]
    fn vec_of_respects_length_range() {
        let mut rng = TestRng::new(5);
        for _ in 0..100 {
            let v = rng.vec_of(0..8, |r| r.u32_in(1..3));
            assert!(v.len() < 8);
            assert!(v.iter().all(|&x| (1..3).contains(&x)));
        }
    }

    #[test]
    fn choice_covers_all_alternatives() {
        let mut rng = TestRng::new(11);
        let items = ["a", "b", "c"];
        let mut seen = [false; 3];
        for _ in 0..100 {
            let c = rng.choice(&items);
            seen[items.iter().position(|i| i == c).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        TestRng::new(1).u64_in(3..3);
    }

    #[test]
    fn fork_is_deterministic_and_leaves_the_parent_untouched() {
        let parent = TestRng::new(42);
        let before = parent.clone();
        let a: Vec<u64> = {
            let mut f = parent.fork(3);
            (0..16).map(|_| f.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut f = parent.fork(3);
            (0..16).map(|_| f.next_u64()).collect()
        };
        assert_eq!(a, b, "same parent + same id ⇒ same stream");
        assert_eq!(parent, before, "fork must not advance the parent");
    }

    #[test]
    fn forks_with_adjacent_ids_do_not_overlap() {
        let parent = TestRng::new(7);
        let mut all = Vec::new();
        for id in 0..8u64 {
            let mut f = parent.fork(id);
            for _ in 0..64 {
                all.push(f.next_u64());
            }
        }
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "values shared across adjacent forks");
    }
}
