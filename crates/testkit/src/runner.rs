//! The `cases(n)` runner: derives one seeded [`TestRng`] per case and
//! reports failures with a replay recipe.

use crate::rng::{splitmix64, TestRng};
use crate::PropResult;

/// Environment variable that replays a single case: set it to the case
/// seed printed by a failure report and re-run the test.
pub const REPLAY_ENV: &str = "MOCCML_TESTKIT_SEED";

/// Default base seed; suites can pin a different one with
/// [`Cases::with_seed`] so distinct suites explore distinct streams.
const DEFAULT_BASE_SEED: u64 = 0x4D6F_4343_4D4C_2015; // "MoCCML" 2015

/// A configured property run: how many cases, from which base seed.
///
/// Built by [`cases`]; consumed by [`Cases::run`].
#[derive(Debug, Clone)]
pub struct Cases {
    n: usize,
    base_seed: u64,
}

/// Configures a property run of `n` cases with the default base seed.
///
/// # Example
///
/// ```
/// use moccml_testkit::{cases, prop_assert};
///
/// cases(32).with_seed(7).run("xor is involutive", |rng| {
///     let (a, b) = (rng.any_u64(), rng.any_u64());
///     prop_assert!((a ^ b) ^ b == a);
///     Ok(())
/// });
/// ```
#[must_use]
pub fn cases(n: usize) -> Cases {
    Cases {
        n,
        base_seed: DEFAULT_BASE_SEED,
    }
}

impl Cases {
    /// Pins a suite-specific base seed (cases stay deterministic, but
    /// the explored stream differs from other suites).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Number of cases this run will execute.
    #[must_use]
    pub fn count(&self) -> usize {
        self.n
    }

    /// The seed of case `i` — what a failure report prints and what
    /// [`REPLAY_ENV`] accepts.
    #[must_use]
    pub fn case_seed(&self, i: usize) -> u64 {
        // hash, don't add: adjacent case indices must not produce
        // overlapping xorshift streams.
        splitmix64(self.base_seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Runs `property` once per case, each with a fresh [`TestRng`]
    /// seeded from the case index.
    ///
    /// If [`REPLAY_ENV`] is set, only that seed is run — the exact
    /// replay of one failing case.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, reporting the property name,
    /// case index, case seed, the failure message, and the replay
    /// recipe.
    pub fn run(self, name: &str, property: impl FnMut(&mut TestRng) -> PropResult) {
        self.run_with_replay(name, property, replay_seed());
    }

    fn run_with_replay(
        self,
        name: &str,
        mut property: impl FnMut(&mut TestRng) -> PropResult,
        replay: Option<u64>,
    ) {
        if let Some(seed) = replay {
            // a leftover exported var silently reduces every suite to
            // one case — make replay mode loudly visible
            eprintln!("moccml-testkit: {REPLAY_ENV} set, replaying single seed {seed:#018x}");
            let mut rng = TestRng::new(seed);
            if let Err(msg) = property(&mut rng) {
                panic!("property '{name}' failed on replay seed {seed:#018x}:\n{msg}");
            }
            return;
        }
        for i in 0..self.n {
            let seed = self.case_seed(i);
            let mut rng = TestRng::new(seed);
            if let Err(msg) = property(&mut rng) {
                // a whitespace-bearing property name is not a valid
                // libtest filter, so leave it out of the recipe then
                let filter = if name.contains(char::is_whitespace) {
                    String::new()
                } else {
                    format!(" {name}")
                };
                panic!(
                    "property '{name}' failed at case {i}/{total} (seed {seed:#018x}):\n\
                     {msg}\n\
                     replay just this case with: {REPLAY_ENV}={seed} cargo test{filter}",
                    total = self.n,
                );
            }
        }
    }
}

fn replay_seed() -> Option<u64> {
    let raw = std::env::var(REPLAY_ENV).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => panic!("{REPLAY_ENV} must be a u64 (decimal or 0x-hex), got '{raw}'"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // the runner's own tests pass `replay: None` explicitly so an
    // exported MOCCML_TESTKIT_SEED (someone reproducing a property
    // failure elsewhere in the workspace) cannot make them flake

    #[test]
    fn runs_exactly_n_cases() {
        let mut count = 0;
        cases(48).run_with_replay(
            "counter",
            |_rng| {
                count += 1;
                Ok(())
            },
            None,
        );
        assert_eq!(count, 48);
    }

    #[test]
    fn replay_runs_exactly_one_case_on_the_given_seed() {
        let mut seen = Vec::new();
        cases(48).run_with_replay(
            "replay",
            |rng| {
                seen.push(rng.any_u64());
                Ok(())
            },
            Some(99),
        );
        assert_eq!(seen, vec![TestRng::new(99).any_u64()]);
    }

    #[test]
    fn case_seeds_are_deterministic_and_distinct() {
        let a = cases(64);
        let b = cases(64);
        let seeds: Vec<u64> = (0..64).map(|i| a.case_seed(i)).collect();
        assert_eq!(seeds, (0..64).map(|i| b.case_seed(i)).collect::<Vec<_>>());
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "case seeds must not collide");
    }

    #[test]
    fn with_seed_changes_the_stream() {
        assert_ne!(
            cases(1).with_seed(1).case_seed(0),
            cases(1).with_seed(2).case_seed(0)
        );
    }

    #[test]
    fn failure_reports_name_seed_and_replay_recipe() {
        let result = std::panic::catch_unwind(|| {
            cases(8).run_with_replay("always fails", |_rng| Err("boom".to_owned()), None);
        });
        let msg = *result
            .expect_err("property must fail")
            .downcast::<String>()
            .expect("panic payload is a String");
        assert!(msg.contains("always fails"), "names the property: {msg}");
        assert!(msg.contains("case 0/8"), "names the case: {msg}");
        assert!(msg.contains("boom"), "carries the message: {msg}");
        assert!(msg.contains(REPLAY_ENV), "gives the replay recipe: {msg}");
        assert!(
            msg.contains(&format!("{}", cases(8).case_seed(0))),
            "prints the decimal seed for the env var: {msg}"
        );
    }

    #[test]
    fn failing_case_seed_reproduces_the_same_values() {
        // collect the value each case sees, then re-derive case 3's
        // value from its reported seed alone — the replay path.
        let mut values = Vec::new();
        cases(5).run_with_replay(
            "collect",
            |rng| {
                values.push(rng.any_u64());
                Ok(())
            },
            None,
        );
        let seed3 = cases(5).case_seed(3);
        assert_eq!(TestRng::new(seed3).any_u64(), values[3]);
    }

    #[test]
    fn prop_macros_pass_and_fail() {
        fn passing(rng: &mut TestRng) -> crate::PropResult {
            let v = rng.u64_below(10);
            crate::prop_assert!(v < 10);
            crate::prop_assert_eq!(v, v);
            Ok(())
        }
        fn failing(_rng: &mut TestRng) -> crate::PropResult {
            crate::prop_assert_eq!(1 + 1, 3, "arithmetic broke");
            Ok(())
        }
        assert!(passing(&mut TestRng::new(1)).is_ok());
        let err = failing(&mut TestRng::new(1)).unwrap_err();
        assert!(err.contains("arithmetic broke"));
        assert!(err.contains("left:  2"));
    }
}
