//! # moccml-testkit
//!
//! A zero-dependency, fully deterministic property-testing harness for
//! the MoCCML workspace. The repository must build and test with **no
//! network access**, so the randomized differential tests (solver
//! equivalence, CCSL invariants, weaving equivalence) run on this
//! in-repo harness instead of `proptest`.
//!
//! Design goals, in order:
//!
//! 1. **Determinism** — a suite runs the same cases on every platform
//!    and every invocation. Case `i` of a runner seeded with `s` always
//!    sees the same random stream (derived with a SplitMix64 hash, the
//!    same generator family as `moccml_engine::SplitMix64`).
//! 2. **Reproducible failures** — a failing case panics with the exact
//!    case seed and a one-line recipe (`MOCCML_TESTKIT_SEED=…`) that
//!    replays only that case.
//! 3. **Frictionless porting from proptest** — properties are closures
//!    over a [`TestRng`] returning `Result<(), String>`; the
//!    [`prop_assert!`] and [`prop_assert_eq!`] macros keep the assertion
//!    style of the original suites.
//!
//! ## Example
//!
//! ```
//! use moccml_testkit::{cases, prop_assert, prop_assert_eq};
//!
//! cases(64).run("addition commutes", |rng| {
//!     let a = rng.u64_below(1 << 20);
//!     let b = rng.u64_below(1 << 20);
//!     prop_assert_eq!(a + b, b + a);
//!     prop_assert!(a + b >= a, "no wrap for small operands");
//!     Ok(())
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod rng;
mod runner;

pub use rng::TestRng;
pub use runner::{cases, Cases, REPLAY_ENV};

/// The `Result` type every property closure returns: `Ok(())` when the
/// case passes, `Err(message)` when it fails.
pub type PropResult = Result<(), String>;

/// Asserts a condition inside a property closure; on failure returns an
/// `Err` carrying the stringified condition, an optional formatted
/// message, and the source location.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: `{}`",
                file!(),
                line!(),
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed at {}:{}: `{}` — {}",
                file!(),
                line!(),
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property closure; on
/// failure returns an `Err` showing both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err(format!(
                "equality failed at {}:{}: `{}` == `{}`\n  left:  {:?}\n  right: {:?}",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err(format!(
                "equality failed at {}:{}: `{}` == `{}` — {}\n  left:  {:?}\n  right: {:?}",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}
