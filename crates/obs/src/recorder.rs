//! The opt-in recording handle every layer threads through: spans for
//! phase timings, counters and gauges for hot-loop accounting.
//!
//! # Design
//!
//! A [`Recorder`] is either *enabled* (an `Arc` to shared storage) or
//! *disabled* (`None`); both are cheap to clone and pass by value.
//! Registration (`counter`, `gauge`, `span`) takes a lock and may
//! allocate, so call it once per phase or per worker on the cold path;
//! the returned [`Counter`]/[`Gauge`] handles are lock-free —
//! incrementing is a single relaxed atomic `fetch_add` when enabled
//! and a `None` check when disabled. Readings are never fed back into
//! the computation being measured, so an enabled recorder is
//! observationally inert: state spaces, visitor callback sequences and
//! verdicts are byte-identical with recording on or off (pinned by the
//! `obs_properties` suite at the workspace root).
//!
//! Spans nest per thread: a span opened while another is live on the
//! same thread records it as its parent, which is what the Chrome
//! trace-event export uses to draw the parse → compile → explore →
//! check flame. Opening a span locks a mutex, so spans belong on phase
//! boundaries, never inside per-state work.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;
use std::time::Instant;

/// One closed span: a named phase with monotonic start/duration
/// microseconds relative to the recorder's epoch.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Phase name (`parse`, `compile`, `slice`, `explore`, `check`,
    /// `minimize`, …).
    pub name: String,
    /// Start offset from the recorder epoch, in microseconds.
    pub start_us: u64,
    /// Duration in microseconds (0 until the span closes).
    pub dur_us: u64,
    /// Index of the enclosing span in the snapshot, if any.
    pub parent: Option<usize>,
    /// Small dense id of the opening thread (0 for the first thread
    /// that opened a span on this recorder).
    pub tid: u64,
}

#[derive(Default)]
struct SpanLog {
    records: Vec<SpanRecord>,
    /// Per-thread stack of open span indices (parent tracking).
    stacks: HashMap<ThreadId, Vec<usize>>,
    /// Dense thread ids, assigned in first-span order.
    tids: HashMap<ThreadId, u64>,
}

struct Inner {
    epoch: Instant,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    spans: Mutex<SpanLog>,
}

/// A point-in-time copy of everything a recorder has collected.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotone counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Last-value gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Spans in opening order; `parent` indexes into this vector.
    pub spans: Vec<SpanRecord>,
}

impl Snapshot {
    /// Looks up a counter by exact name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by exact name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Sums all counters whose name starts with `prefix` — per-worker
    /// counters (`explore_expansions_w0`, `_w1`, …) roll up this way.
    #[must_use]
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }
}

/// The opt-in observability handle. See the [module docs](self) for
/// the enabled/disabled contract.
///
/// ```
/// use moccml_obs::Recorder;
///
/// let rec = Recorder::new();
/// let expansions = rec.counter("explore_expansions_w0");
/// {
///     let _span = rec.span("explore");
///     expansions.add(17); // lock-free: one relaxed fetch_add
/// }
/// let snap = rec.snapshot();
/// assert_eq!(snap.counter("explore_expansions_w0"), Some(17));
/// assert_eq!(snap.spans.len(), 1);
/// assert_eq!(snap.spans[0].name, "explore");
///
/// // A disabled recorder accepts the same calls and records nothing.
/// let off = Recorder::disabled();
/// off.counter("x").add(1);
/// assert!(off.snapshot().counters.is_empty());
/// ```
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Recorder {
    /// An enabled recorder with a fresh epoch.
    #[must_use]
    pub fn new() -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(SpanLog::default()),
            })),
        }
    }

    /// A disabled recorder: every operation is a no-op, every handle
    /// it vends is a `None` check. This is the default everywhere.
    #[must_use]
    pub fn disabled() -> Recorder {
        Recorder { inner: None }
    }

    /// Whether this recorder actually records.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or fetches) the counter `name` and returns a
    /// lock-free handle to it. Cold path: takes a lock.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        Counter(self.inner.as_ref().map(|inner| {
            let mut counters = inner.counters.lock().expect("obs counters lock");
            Arc::clone(counters.entry(name.to_owned()).or_default())
        }))
    }

    /// Registers (or fetches) the gauge `name` and returns a lock-free
    /// handle to it. Cold path: takes a lock.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge(self.inner.as_ref().map(|inner| {
            let mut gauges = inner.gauges.lock().expect("obs gauges lock");
            Arc::clone(gauges.entry(name.to_owned()).or_default())
        }))
    }

    /// Opens a span named `name`; it closes (and records its duration)
    /// when the returned guard drops. Spans opened while this one is
    /// live on the same thread become its children. Cold path: takes a
    /// lock on open and close.
    pub fn span(&self, name: &str) -> Span {
        let Some(inner) = &self.inner else {
            return Span(None);
        };
        let start_us = us_since(inner.epoch);
        let mut log = inner.spans.lock().expect("obs spans lock");
        let thread = std::thread::current().id();
        let next_tid = log.tids.len() as u64;
        let tid = *log.tids.entry(thread).or_insert(next_tid);
        let stack = log.stacks.entry(thread).or_default();
        let parent = stack.last().copied();
        let index = log.records.len();
        log.records.push(SpanRecord {
            name: name.to_owned(),
            start_us,
            dur_us: 0,
            parent,
            tid,
        });
        log.stacks
            .get_mut(&thread)
            .expect("stack just inserted")
            .push(index);
        drop(log);
        Span(Some((Arc::clone(inner), index)))
    }

    /// Copies out everything recorded so far. Open spans appear with
    /// `dur_us == 0`. Empty when disabled.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let counters = inner
            .counters
            .lock()
            .expect("obs counters lock")
            .iter()
            .map(|(name, v)| (name.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .expect("obs gauges lock")
            .iter()
            .map(|(name, v)| (name.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let spans = inner.spans.lock().expect("obs spans lock").records.clone();
        Snapshot {
            counters,
            gauges,
            spans,
        }
    }
}

fn us_since(epoch: Instant) -> u64 {
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// A lock-free monotone counter handle vended by
/// [`Recorder::counter`]. Cloning shares the underlying atomic.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Adds `n`. One relaxed `fetch_add` when enabled, a `None` check
    /// when disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// A lock-free last-value gauge handle vended by [`Recorder::gauge`].
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// Stores `v` (relaxed).
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if it is below it (relaxed max).
    #[inline]
    pub fn raise(&self, v: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Guard returned by [`Recorder::span`]; records the span's duration
/// on drop.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records ~0µs"]
pub struct Span(Option<(Arc<Inner>, usize)>);

impl Drop for Span {
    fn drop(&mut self) {
        let Some((inner, index)) = self.0.take() else {
            return;
        };
        let now_us = us_since(inner.epoch);
        let mut log = inner.spans.lock().expect("obs spans lock");
        let record = &mut log.records[index];
        record.dur_us = now_us.saturating_sub(record.start_us);
        let thread = std::thread::current().id();
        if let Some(stack) = log.stacks.get_mut(&thread) {
            if let Some(pos) = stack.iter().rposition(|&i| i == index) {
                stack.remove(pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        let c = rec.counter("c");
        c.add(5);
        assert_eq!(c.get(), 0);
        let g = rec.gauge("g");
        g.set(9);
        g.raise(99);
        assert_eq!(g.get(), 0);
        drop(rec.span("s"));
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn counters_and_gauges_round_trip() {
        let rec = Recorder::new();
        let c = rec.counter("hits");
        let c2 = rec.counter("hits"); // same atomic
        c.add(3);
        c2.incr();
        assert_eq!(c.get(), 4);
        let g = rec.gauge("depth");
        g.set(7);
        g.raise(3); // below: no-op
        g.raise(11);
        assert_eq!(g.get(), 11);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("hits"), Some(4));
        assert_eq!(snap.gauge("depth"), Some(11));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn counter_sum_rolls_up_prefixes() {
        let rec = Recorder::new();
        rec.counter("exp_w0").add(2);
        rec.counter("exp_w1").add(3);
        rec.counter("other").add(100);
        assert_eq!(rec.snapshot().counter_sum("exp_w"), 5);
    }

    #[test]
    fn spans_nest_per_thread() {
        let rec = Recorder::new();
        {
            let _outer = rec.span("check");
            let _inner = rec.span("explore");
        }
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].name, "check");
        assert_eq!(snap.spans[0].parent, None);
        assert_eq!(snap.spans[1].name, "explore");
        assert_eq!(snap.spans[1].parent, Some(0));
        assert!(snap.spans[1].start_us >= snap.spans[0].start_us);
    }

    #[test]
    fn sibling_spans_share_a_parent() {
        let rec = Recorder::new();
        let outer = rec.span("check");
        drop(rec.span("slice"));
        drop(rec.span("explore"));
        drop(outer);
        let snap = rec.snapshot();
        assert_eq!(snap.spans[1].parent, Some(0));
        assert_eq!(snap.spans[2].parent, Some(0));
        assert!(snap.spans[0].dur_us >= snap.spans[2].dur_us);
    }

    #[test]
    fn spans_from_other_threads_get_their_own_tid() {
        let rec = Recorder::new();
        let _main = rec.span("main");
        let clone = rec.clone();
        std::thread::spawn(move || drop(clone.span("worker")))
            .join()
            .expect("worker thread");
        let snap = rec.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert_eq!(snap.spans[0].tid, 0);
        assert_eq!(snap.spans[1].tid, 1);
        // no cross-thread parenting
        assert_eq!(snap.spans[1].parent, None);
    }

    #[test]
    fn handles_survive_the_recorder_clone() {
        let rec = Recorder::new();
        let c = rec.counter("n");
        let rec2 = rec.clone();
        c.add(1);
        rec2.counter("n").add(1);
        assert_eq!(rec.snapshot().counter("n"), Some(2));
    }
}
