//! Prometheus-style text exposition (text format version 0.0.4):
//! `# HELP` / `# TYPE` comment pairs followed by `name{labels} value`
//! sample lines. The serve daemon's `metrics` method renders its
//! combined explorer/cache/latency view through this builder.

use crate::histogram::{Histogram, BUCKETS};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Incrementally builds one text exposition. Metric families may be
/// emitted in several calls (e.g. one histogram per method label);
/// the `# HELP`/`# TYPE` header is written only the first time a
/// family name appears.
#[derive(Debug, Default)]
pub struct Exposition {
    out: String,
    headed: BTreeSet<String>,
}

fn labels(pairs: &[(&str, &str)]) -> String {
    if pairs.is_empty() {
        return String::new();
    }
    let body: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", body.join(","))
}

impl Exposition {
    /// An empty exposition.
    #[must_use]
    pub fn new() -> Exposition {
        Exposition::default()
    }

    fn header(&mut self, name: &str, kind: &str, help: &str) {
        if self.headed.insert(name.to_owned()) {
            let _ = writeln!(self.out, "# HELP {name} {help}");
            let _ = writeln!(self.out, "# TYPE {name} {kind}");
        }
    }

    /// Emits one counter sample.
    pub fn counter(&mut self, name: &str, help: &str, pairs: &[(&str, &str)], value: u64) {
        self.header(name, "counter", help);
        let _ = writeln!(self.out, "{name}{} {value}", labels(pairs));
    }

    /// Emits one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, pairs: &[(&str, &str)], value: f64) {
        self.header(name, "gauge", help);
        let _ = writeln!(self.out, "{name}{} {value}", labels(pairs));
    }

    /// Emits one histogram family member: cumulative `_bucket` lines
    /// up to the highest occupied bucket, the `+Inf` bucket, `_sum`
    /// and `_count`. Bucket edges are the histogram's power-of-two
    /// microsecond upper edges.
    pub fn histogram(&mut self, name: &str, help: &str, pairs: &[(&str, &str)], h: &Histogram) {
        self.header(name, "histogram", help);
        let counts = h.bucket_counts();
        let top = counts.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
        let mut cumulative = 0u64;
        for (i, n) in counts.iter().enumerate().take(top.min(BUCKETS)) {
            cumulative += n;
            let mut with_le = pairs.to_vec();
            let le = Histogram::bucket_upper_us(i).to_string();
            with_le.push(("le", &le));
            let _ = writeln!(self.out, "{name}_bucket{} {cumulative}", labels(&with_le));
        }
        let mut with_inf = pairs.to_vec();
        with_inf.push(("le", "+Inf"));
        let _ = writeln!(self.out, "{name}_bucket{} {}", labels(&with_inf), h.count());
        let _ = writeln!(self.out, "{name}_sum{} {}", labels(pairs), h.sum_us());
        let _ = writeln!(self.out, "{name}_count{} {}", labels(pairs), h.count());
    }

    /// The finished exposition text.
    #[must_use]
    pub fn finish(self) -> String {
        self.out
    }
}

/// Validates that every line of `text` is well-formed exposition
/// syntax: a `# HELP`/`# TYPE` comment or a
/// `name{labels} value` sample whose value parses as a float and
/// whose name is a valid metric identifier. Returns the first
/// offending line on failure. This is the check the CI test suite
/// runs against the serve `metrics` output.
pub fn validate(text: &str) -> Result<(), String> {
    fn valid_name(name: &str) -> bool {
        !name.is_empty()
            && name.chars().enumerate().all(|(i, c)| {
                c == '_' || c == ':' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit())
            })
    }
    for (lineno, line) in text.lines().enumerate() {
        let fail = |why: &str| Err(format!("line {}: {why}: {line}", lineno + 1));
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if !(rest.starts_with("HELP ") || rest.starts_with("TYPE ")) {
                return fail("comment is neither HELP nor TYPE");
            }
            continue;
        }
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => return fail("no value separator"),
        };
        let name = match name_part.split_once('{') {
            Some((name, labels)) => {
                if !labels.ends_with('}') {
                    return fail("unterminated label set");
                }
                let body = &labels[..labels.len() - 1];
                for pair in body.split(',') {
                    let Some((k, v)) = pair.split_once('=') else {
                        return fail("label without `=`");
                    };
                    if !valid_name(k) || !v.starts_with('"') || !v.ends_with('"') {
                        return fail("malformed label pair");
                    }
                }
                name
            }
            None => name_part,
        };
        if !valid_name(name) {
            return fail("invalid metric name");
        }
        if value_part != "+Inf" && value_part.parse::<f64>().is_err() {
            return fail("value is not a number");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_and_gauges_render_with_headers_once() {
        let mut exp = Exposition::new();
        exp.counter(
            "moccml_requests_total",
            "Requests seen.",
            &[("method", "check")],
            3,
        );
        exp.counter(
            "moccml_requests_total",
            "Requests seen.",
            &[("method", "lint")],
            1,
        );
        exp.gauge("moccml_queue_depth", "Jobs queued.", &[], 2.0);
        let text = exp.finish();
        assert_eq!(text.matches("# TYPE moccml_requests_total").count(), 1);
        assert!(text.contains("moccml_requests_total{method=\"check\"} 3"));
        assert!(text.contains("moccml_requests_total{method=\"lint\"} 1"));
        assert!(text.contains("moccml_queue_depth 2"));
        validate(&text).expect("well-formed");
    }

    #[test]
    fn histograms_render_cumulative_buckets() {
        let mut h = Histogram::default();
        h.record(Duration::from_micros(3)); // bucket 1, upper edge 3
        h.record(Duration::from_micros(100)); // bucket 6, upper edge 127
        let mut exp = Exposition::new();
        exp.histogram("moccml_latency_us", "Latency.", &[("method", "check")], &h);
        let text = exp.finish();
        assert!(
            text.contains("moccml_latency_us_bucket{method=\"check\",le=\"3\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("moccml_latency_us_bucket{method=\"check\",le=\"127\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("moccml_latency_us_bucket{method=\"check\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("moccml_latency_us_sum{method=\"check\"} 103"),
            "{text}"
        );
        assert!(
            text.contains("moccml_latency_us_count{method=\"check\"} 2"),
            "{text}"
        );
        validate(&text).expect("well-formed");
    }

    #[test]
    fn empty_histogram_still_emits_count_and_inf() {
        let mut exp = Exposition::new();
        exp.histogram("h", "Empty.", &[], &Histogram::default());
        let text = exp.finish();
        assert!(text.contains("h_bucket{le=\"+Inf\"} 0"), "{text}");
        assert!(text.contains("h_count 0"), "{text}");
        validate(&text).expect("well-formed");
    }

    #[test]
    fn validate_rejects_malformed_lines() {
        assert!(validate("just words here are fine? no").is_err());
        assert!(validate("9leading_digit 1").is_err());
        assert!(validate("name{unterminated 1").is_err());
        assert!(validate("name nan_but_not_a_number").is_err());
        assert!(validate("# COMMENT nope").is_err());
        assert!(validate("ok_name 1.5\n").is_ok());
        assert!(validate("").is_ok());
    }
}
