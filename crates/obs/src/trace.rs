//! Trace export: Chrome trace-event (catapult) JSON for
//! `chrome://tracing` / Perfetto, and a JSONL raw event stream for
//! scripted analysis. Both render a [`Snapshot`] — take one at the
//! end of a run and write both files side by side.

use crate::recorder::Snapshot;
use std::fmt::Write as _;

/// Escapes `s` for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders `snapshot` as Chrome trace-event JSON (the "JSON object
/// format": a top-level object with a `traceEvents` array), loadable
/// in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
///
/// Spans become `ph:"X"` complete events (`ts`/`dur` in microseconds
/// since the recorder epoch); counters and gauges are attached as the
/// `args` of one final `ph:"I"` instant event so the viewer shows
/// them in the event detail pane. `process_name` labels the trace via
/// a `ph:"M"` metadata event.
#[must_use]
pub fn catapult_json(snapshot: &Snapshot, process_name: &str) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(process_name)
    );
    let mut end_us = 0u64;
    for span in &snapshot.spans {
        end_us = end_us.max(span.start_us.saturating_add(span.dur_us));
        let _ = write!(
            out,
            ",\n{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{},\"dur\":{}}}",
            escape(&span.name),
            span.tid,
            span.start_us,
            span.dur_us
        );
    }
    if !snapshot.counters.is_empty() || !snapshot.gauges.is_empty() {
        let _ = write!(
            out,
            ",\n{{\"name\":\"counters\",\"ph\":\"I\",\"pid\":1,\"tid\":0,\
             \"ts\":{end_us},\"s\":\"g\",\"args\":{{"
        );
        let mut first = true;
        for (name, value) in snapshot.counters.iter().chain(snapshot.gauges.iter()) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{value}", escape(name));
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

/// Renders `snapshot` as a JSONL raw event stream: one JSON object
/// per line (`type` ∈ {`span`, `counter`, `gauge`}), spans first in
/// opening order, then counters and gauges sorted by name. Every line
/// is a complete JSON document.
#[must_use]
pub fn jsonl(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (index, span) in snapshot.spans.iter().enumerate() {
        let parent = span
            .parent
            .map_or_else(|| "null".to_owned(), |p| p.to_string());
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"index\":{index},\"name\":\"{}\",\
             \"start_us\":{},\"dur_us\":{},\"parent\":{parent},\"tid\":{}}}",
            escape(&span.name),
            span.start_us,
            span.dur_us,
            span.tid
        );
    }
    for (name, value) in &snapshot.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            escape(name)
        );
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{value}}}",
            escape(name)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample() -> Snapshot {
        let rec = Recorder::new();
        {
            let _check = rec.span("check");
            let _explore = rec.span("explore");
            rec.counter("states").add(42);
            rec.gauge("depth").set(7);
        }
        rec.snapshot()
    }

    #[test]
    fn catapult_output_has_trace_events_and_counters() {
        let out = catapult_json(&sample(), "moccml check");
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.contains("\"ph\":\"M\""), "{out}");
        assert!(out.contains("\"name\":\"explore\",\"ph\":\"X\""), "{out}");
        assert!(out.contains("\"states\":42"), "{out}");
        assert!(out.contains("\"depth\":7"), "{out}");
        assert!(out.trim_end().ends_with("]}"), "{out}");
    }

    #[test]
    fn jsonl_is_one_document_per_line() {
        let out = jsonl(&sample());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        assert!(lines[0].contains("\"type\":\"span\""));
        assert!(lines[1].contains("\"parent\":0"));
        assert!(lines[2].contains("\"type\":\"counter\""));
        assert!(lines[3].contains("\"type\":\"gauge\""));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn names_are_escaped() {
        let rec = Recorder::new();
        drop(rec.span("weird \"name\"\n"));
        let snap = rec.snapshot();
        let out = catapult_json(&snap, "p");
        assert!(out.contains("weird \\\"name\\\"\\n"), "{out}");
        let out = jsonl(&snap);
        assert!(out.contains("weird \\\"name\\\"\\n"), "{out}");
    }

    #[test]
    fn empty_snapshot_is_still_valid() {
        let out = catapult_json(&Snapshot::default(), "p");
        assert!(out.contains("traceEvents"));
        assert!(!out.contains("\"ph\":\"I\""), "no counters event: {out}");
        assert_eq!(jsonl(&Snapshot::default()), "");
    }
}
