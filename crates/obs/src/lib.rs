//! `moccml-obs` — unified observability for the MoCCML toolchain:
//! hierarchical spans with monotonic timings, lock-free counters and
//! gauges, a shared log₂ latency [`Histogram`], Chrome trace-event
//! export and Prometheus-style text exposition. Zero dependencies,
//! std only.
//!
//! The central type is the opt-in [`Recorder`]: disabled by default
//! (every operation a no-op), and *observationally inert* when
//! enabled — recording never feeds back into the computation, so
//! state spaces, visitor callback sequences and verdicts stay
//! byte-identical with recording on or off. See [`recorder`] for the
//! contract and [`trace`]/[`expose`] for the output formats.
//!
//! ```
//! use moccml_obs::{trace, Recorder};
//!
//! let rec = Recorder::new();
//! {
//!     let _span = rec.span("explore");
//!     rec.counter("explore_states").add(1024);
//! }
//! let snapshot = rec.snapshot();
//! let catapult = trace::catapult_json(&snapshot, "example");
//! assert!(catapult.contains("\"traceEvents\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expose;
pub mod histogram;
pub mod recorder;
pub mod trace;

pub use expose::Exposition;
pub use histogram::Histogram;
pub use recorder::{Counter, Gauge, Recorder, Snapshot, Span, SpanRecord};
