//! A log₂ histogram shared by every layer that measures durations:
//! the serve daemon's per-method latency registry, the recorder's
//! phase timings, and the bench harness's sanity checks.
//!
//! Observations land in power-of-two microsecond buckets (bucket `i`
//! covers `[2^i, 2^(i+1))` µs), which makes quantile estimation a
//! cumulative walk with bounded relative error — no allocation, no
//! sorting, no timestamps kept. This type started life private to
//! `crates/serve/src/metrics.rs`; it moved here unchanged so the
//! daemon, the CLI and the recorder agree on bucket edges.

use std::time::Duration;

/// Number of buckets: 2^39 µs ≈ 6.4 days — effectively unbounded.
pub const BUCKETS: usize = 40;

/// A latency histogram with power-of-two microsecond buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, elapsed: Duration) {
        self.record_us(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Records one observation given directly in microseconds.
    pub fn record_us(&mut self, us: u64) {
        let bucket = if us == 0 {
            0
        } else {
            (63 - us.leading_zeros()) as usize
        };
        self.buckets[bucket.min(BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations, in microseconds (saturating).
    #[must_use]
    pub fn sum_us(&self) -> u64 {
        self.sum_us
    }

    /// Largest observation, in microseconds.
    #[must_use]
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean observation, in microseconds (0 when empty).
    #[must_use]
    pub fn mean_us(&self) -> u64 {
        self.sum_us.checked_div(self.count).unwrap_or(0)
    }

    /// The raw per-bucket counts; bucket `i` covers `[2^i, 2^(i+1))`
    /// µs (bucket 0 additionally holds sub-microsecond observations).
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// The inclusive upper edge of bucket `i`, in microseconds.
    #[must_use]
    pub fn bucket_upper_us(i: usize) -> u64 {
        (1u64 << (i.min(BUCKETS - 1) + 1)).saturating_sub(1)
    }

    /// Estimates the quantile `q` in `[0, 1]` by cumulative walk,
    /// reporting the upper edge of the bucket holding it (0 when
    /// empty). The estimate is exact to within a factor of two — ample
    /// for a health endpoint.
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // upper edge of bucket i, clamped to the recorded max
                return (1u64 << (i + 1)).saturating_sub(1).min(self.max_us);
            }
        }
        self.max_us
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_us(), 0);
        assert_eq!(h.max_us(), 0);
        assert_eq!(h.quantile_us(0.5), 0);
    }

    #[test]
    fn records_land_in_log2_buckets() {
        let mut h = Histogram::default();
        for us in [0u64, 1, 2, 3, 1000, 1_000_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max_us(), 1_000_000);
        assert_eq!(h.mean_us(), (1 + 2 + 3 + 1000 + 1_000_000) / 6);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 6);
    }

    #[test]
    fn quantiles_walk_the_cumulative_distribution() {
        let mut h = Histogram::default();
        // 90 fast requests (~100 µs), 10 slow ones (~50 ms)
        for _ in 0..90 {
            h.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            h.record(Duration::from_micros(50_000));
        }
        let p50 = h.quantile_us(0.5);
        let p95 = h.quantile_us(0.95);
        assert!((64..256).contains(&p50), "p50 within 2x of 100us: {p50}");
        assert!(p95 >= 32_768, "p95 lands in the slow bucket: {p95}");
        assert!(h.quantile_us(1.0) <= h.max_us());
        // monotone in q
        assert!(p50 <= p95);
    }

    #[test]
    fn extreme_durations_saturate() {
        let mut h = Histogram::default();
        h.record(Duration::from_secs(u64::MAX / 2_000_000));
        assert_eq!(h.count(), 1);
        assert!(h.quantile_us(0.5) <= h.max_us());
    }

    #[test]
    fn merge_adds_counts_and_keeps_max() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(5_000));
        b.record(Duration::from_micros(7));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_us(), 5_000);
        assert_eq!(a.sum_us(), 10 + 5_000 + 7);
    }

    #[test]
    fn bucket_upper_edges_are_monotone() {
        let mut last = 0;
        for i in 0..BUCKETS {
            let edge = Histogram::bucket_upper_us(i);
            assert!(edge > last, "edges strictly increase");
            last = edge;
        }
    }
}
