//! The constraint registry: resolving invariant constraint names to
//! instantiable constraints (automata definitions or native factories).

use crate::error::MetamodelError;
use moccml_automata::{ParamKind, RelationLibrary};
use moccml_kernel::{Constraint, EventId};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Factory signature for native (hand-written, e.g. CCSL) constraints:
/// `(instance_name, event_args, int_args) → constraint`.
type NativeFactory =
    Arc<dyn Fn(&str, &[EventId], &[i64]) -> Result<Box<dyn Constraint>, String> + Send + Sync>;

/// Resolves constraint names used by mapping invariants to concrete
/// constraint instances.
///
/// Two sources, matching the paper's Fig. 1 where the MoCC libraries
/// contain both automata-based and declarative definitions:
///
/// * [`RelationLibrary`] — MoCCML constraint automata; arguments are
///   bound to declaration parameters **in declaration order** (events to
///   event parameters, integers to integer parameters);
/// * native factories — arbitrary [`Constraint`] constructors, used for
///   the CCSL relations of `moccml-ccsl`.
pub struct ConstraintRegistry {
    libraries: Vec<Arc<RelationLibrary>>,
    native: HashMap<String, NativeFactory>,
}

impl fmt::Debug for ConstraintRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConstraintRegistry")
            .field(
                "libraries",
                &self
                    .libraries
                    .iter()
                    .map(|l| l.name().to_owned())
                    .collect::<Vec<_>>(),
            )
            .field("native", &self.native.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for ConstraintRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ConstraintRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        ConstraintRegistry {
            libraries: Vec::new(),
            native: HashMap::new(),
        }
    }

    /// Registers an automata library; all its declarations become
    /// resolvable.
    pub fn add_library(&mut self, library: Arc<RelationLibrary>) {
        self.libraries.push(library);
    }

    /// Registers a native factory under `name`.
    pub fn add_native<F>(&mut self, name: &str, factory: F)
    where
        F: Fn(&str, &[EventId], &[i64]) -> Result<Box<dyn Constraint>, String>
            + Send
            + Sync
            + 'static,
    {
        self.native.insert(name.to_owned(), Arc::new(factory));
    }

    /// Whether `name` is resolvable.
    #[must_use]
    pub fn knows(&self, name: &str) -> bool {
        self.native.contains_key(name)
            || self
                .libraries
                .iter()
                .any(|l| l.definition_for(name).is_some())
    }

    /// Instantiates constraint `name` with positional arguments.
    ///
    /// # Errors
    ///
    /// Returns [`MetamodelError::Unknown`] when no source resolves
    /// `name`, and [`MetamodelError::Weave`] when arity/kinds disagree or
    /// the underlying factory fails.
    pub fn instantiate(
        &self,
        name: &str,
        instance_name: &str,
        events: &[EventId],
        ints: &[i64],
    ) -> Result<Box<dyn Constraint>, MetamodelError> {
        if let Some(factory) = self.native.get(name) {
            return factory(instance_name, events, ints).map_err(|reason| MetamodelError::Weave {
                instance: instance_name.to_owned(),
                reason,
            });
        }
        for lib in &self.libraries {
            let Some(def) = lib.definition_for(name) else {
                continue;
            };
            let decl = def.declaration();
            let (n_events, n_ints) = (decl.event_params().len(), decl.int_params().len());
            if events.len() != n_events || ints.len() != n_ints {
                return Err(MetamodelError::Weave {
                    instance: instance_name.to_owned(),
                    reason: format!(
                        "`{name}` expects {n_events} event and {n_ints} integer arguments, \
                         got {} and {}",
                        events.len(),
                        ints.len()
                    ),
                });
            }
            let mut builder = lib
                .instantiate(name, instance_name)
                .expect("definition located above");
            for (param, &event) in decl.event_params().iter().zip(events) {
                builder = builder.bind_event(param, event);
            }
            for (param, &value) in decl.int_params().iter().zip(ints) {
                builder = builder.bind_int(param, value);
            }
            let instance = builder.finish().map_err(|e| MetamodelError::Weave {
                instance: instance_name.to_owned(),
                reason: e.to_string(),
            })?;
            return Ok(Box::new(instance));
        }
        Err(MetamodelError::Unknown {
            kind: "constraint",
            name: name.to_owned(),
        })
    }
}

/// Re-export so downstream code can express parameter kinds without
/// importing `moccml-automata` directly.
pub use moccml_automata::ParamKind as RegistryParamKind;

#[allow(unused)]
fn _kind_is_reexported(k: ParamKind) -> RegistryParamKind {
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_automata::parse_library;
    use moccml_ccsl::SubClock;
    use moccml_kernel::Universe;

    fn lib() -> Arc<RelationLibrary> {
        Arc::new(
            parse_library(
                r#"library L {
                  constraint Gate(open: event, pass: event, limit: int)
                  automaton GateDef implements Gate {
                    var n: int = 0;
                    initial state S; final state S;
                    from S to S when {open};
                    from S to S when {pass} guard [n < limit] do n += 1;
                  }
                }"#,
            )
            .expect("parses"),
        )
    }

    #[test]
    fn resolves_automata_constraints() {
        let mut reg = ConstraintRegistry::new();
        reg.add_library(lib());
        assert!(reg.knows("Gate"));
        assert!(!reg.knows("Ghost"));
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let c = reg
            .instantiate("Gate", "g1", &[a, b], &[3])
            .expect("instantiates");
        assert_eq!(c.name(), "g1");
        assert_eq!(c.constrained_events(), vec![a, b]);
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let mut reg = ConstraintRegistry::new();
        reg.add_library(lib());
        let mut u = Universe::new();
        let a = u.event("a");
        let r = reg.instantiate("Gate", "g1", &[a], &[3]);
        assert!(matches!(r, Err(MetamodelError::Weave { .. })));
    }

    #[test]
    fn resolves_native_constraints() {
        let mut reg = ConstraintRegistry::new();
        reg.add_native("SubClock", |name, events, _ints| match events {
            [sub, sup] => Ok(Box::new(SubClock::new(name, *sub, *sup)) as Box<dyn Constraint>),
            _ => Err("SubClock takes exactly two events".to_owned()),
        });
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let c = reg
            .instantiate("SubClock", "s", &[a, b], &[])
            .expect("instantiates");
        assert_eq!(c.constrained_events(), vec![a, b]);
        // factory error surfaces as Weave
        let r = reg.instantiate("SubClock", "s", &[a], &[]);
        assert!(matches!(r, Err(MetamodelError::Weave { .. })));
    }

    #[test]
    fn unknown_constraint_errors() {
        let reg = ConstraintRegistry::new();
        let r = reg.instantiate("Nope", "x", &[], &[]);
        assert!(matches!(r, Err(MetamodelError::Unknown { .. })));
    }

    #[test]
    fn debug_lists_sources() {
        let mut reg = ConstraintRegistry::new();
        reg.add_library(lib());
        reg.add_native("N", |_, _, _| Err("nope".into()));
        let text = format!("{reg:?}");
        assert!(text.contains('L') && text.contains('N'));
    }
}
