//! MOF-lite: metamodels as classes with typed attributes and references.

use crate::error::MetamodelError;

/// Type of a metaclass attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// String.
    Str,
}

impl AttrType {
    /// Human-readable type name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AttrType::Int => "int",
            AttrType::Bool => "bool",
            AttrType::Str => "string",
        }
    }
}

/// An attribute of a metaclass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
}

/// A reference from one metaclass to another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reference {
    /// Reference name.
    pub name: String,
    /// Name of the target metaclass.
    pub target: String,
    /// Whether the reference holds many objects (`0..*`) or at most one.
    pub many: bool,
}

/// A metaclass: the unit of a DSL's abstract syntax.
///
/// Built fluently:
///
/// ```
/// use moccml_metamodel::{MetaClass, AttrType};
/// let agent = MetaClass::new("Agent")
///     .with_attr("cycles", AttrType::Int)
///     .with_ref("inputPorts", "Port", true);
/// assert_eq!(agent.name(), "Agent");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaClass {
    name: String,
    attributes: Vec<Attribute>,
    references: Vec<Reference>,
}

impl MetaClass {
    /// Creates an empty metaclass.
    #[must_use]
    pub fn new(name: &str) -> Self {
        MetaClass {
            name: name.to_owned(),
            attributes: Vec::new(),
            references: Vec::new(),
        }
    }

    /// Adds an attribute (builder style).
    #[must_use]
    pub fn with_attr(mut self, name: &str, ty: AttrType) -> Self {
        self.attributes.push(Attribute {
            name: name.to_owned(),
            ty,
        });
        self
    }

    /// Adds a reference (builder style). `many` selects `0..*` over
    /// `0..1` multiplicity.
    #[must_use]
    pub fn with_ref(mut self, name: &str, target: &str, many: bool) -> Self {
        self.references.push(Reference {
            name: name.to_owned(),
            target: target.to_owned(),
            many,
        });
        self
    }

    /// Metaclass name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared attributes.
    #[must_use]
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Declared references.
    #[must_use]
    pub fn references(&self) -> &[Reference] {
        &self.references
    }

    /// Looks up an attribute.
    #[must_use]
    pub fn attribute(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Looks up a reference.
    #[must_use]
    pub fn reference(&self, name: &str) -> Option<&Reference> {
        self.references.iter().find(|r| r.name == name)
    }
}

/// A metamodel: a named set of metaclasses — the abstract syntax of a
/// DSL (what BNF/MOF provide in the paper's analogy).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metamodel {
    name: String,
    classes: Vec<MetaClass>,
}

impl Metamodel {
    /// Creates an empty metamodel.
    #[must_use]
    pub fn new(name: &str) -> Self {
        Metamodel {
            name: name.to_owned(),
            classes: Vec::new(),
        }
    }

    /// Metamodel name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a metaclass.
    ///
    /// # Errors
    ///
    /// Returns [`MetamodelError::Duplicate`] on a name collision and
    /// [`MetamodelError::Duplicate`] for duplicate attribute/reference
    /// names inside the class.
    pub fn add_class(&mut self, class: MetaClass) -> Result<(), MetamodelError> {
        if self.class(class.name()).is_some() {
            return Err(MetamodelError::Duplicate {
                kind: "metaclass",
                name: class.name().to_owned(),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for a in class.attributes() {
            if !seen.insert(a.name.clone()) {
                return Err(MetamodelError::Duplicate {
                    kind: "attribute",
                    name: a.name.clone(),
                });
            }
        }
        for r in class.references() {
            if !seen.insert(r.name.clone()) {
                return Err(MetamodelError::Duplicate {
                    kind: "reference",
                    name: r.name.clone(),
                });
            }
        }
        self.classes.push(class);
        Ok(())
    }

    /// Looks up a metaclass.
    #[must_use]
    pub fn class(&self, name: &str) -> Option<&MetaClass> {
        self.classes.iter().find(|c| c.name() == name)
    }

    /// All metaclasses.
    #[must_use]
    pub fn classes(&self) -> &[MetaClass] {
        &self.classes
    }

    /// Checks that every reference targets an existing metaclass.
    ///
    /// # Errors
    ///
    /// Returns [`MetamodelError::Unknown`] naming the first dangling
    /// target.
    pub fn validate(&self) -> Result<(), MetamodelError> {
        for c in &self.classes {
            for r in c.references() {
                if self.class(&r.target).is_none() {
                    return Err(MetamodelError::Unknown {
                        kind: "metaclass (reference target)",
                        name: r.target.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let c = MetaClass::new("Place")
            .with_attr("capacity", AttrType::Int)
            .with_attr("name", AttrType::Str)
            .with_ref("inputPort", "Port", false);
        assert_eq!(c.attribute("capacity").map(|a| a.ty), Some(AttrType::Int));
        assert!(c.attribute("ghost").is_none());
        assert_eq!(c.reference("inputPort").map(|r| r.many), Some(false));
    }

    #[test]
    fn duplicate_class_is_rejected() {
        let mut mm = Metamodel::new("M");
        mm.add_class(MetaClass::new("A")).expect("first");
        assert!(mm.add_class(MetaClass::new("A")).is_err());
    }

    #[test]
    fn duplicate_member_is_rejected() {
        let mut mm = Metamodel::new("M");
        let bad = MetaClass::new("A")
            .with_attr("x", AttrType::Int)
            .with_ref("x", "A", false);
        assert!(mm.add_class(bad).is_err());
    }

    #[test]
    fn validate_catches_dangling_reference() {
        let mut mm = Metamodel::new("M");
        mm.add_class(MetaClass::new("A").with_ref("b", "B", true))
            .expect("adds");
        assert!(matches!(mm.validate(), Err(MetamodelError::Unknown { .. })));
        mm.add_class(MetaClass::new("B")).expect("adds");
        assert!(mm.validate().is_ok());
    }

    #[test]
    fn attr_type_names() {
        assert_eq!(AttrType::Int.name(), "int");
        assert_eq!(AttrType::Bool.name(), "bool");
        assert_eq!(AttrType::Str.name(), "string");
    }
}
