//! Models: object graphs conforming to a [`Metamodel`].

use crate::error::MetamodelError;
use crate::meta::{AttrType, Metamodel};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Identifier of an object inside a [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(u32);

impl ObjectId {
    /// Dense index of the object.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// A typed attribute value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    /// Integer value.
    Int(i64),
    /// Boolean value.
    Bool(bool),
    /// String value.
    Str(String),
}

impl AttrValue {
    fn type_name(&self) -> &'static str {
        match self {
            AttrValue::Int(_) => "int",
            AttrValue::Bool(_) => "bool",
            AttrValue::Str(_) => "string",
        }
    }

    fn matches(&self, ty: AttrType) -> bool {
        matches!(
            (self, ty),
            (AttrValue::Int(_), AttrType::Int)
                | (AttrValue::Bool(_), AttrType::Bool)
                | (AttrValue::Str(_), AttrType::Str)
        )
    }
}

/// An object: an instance of a metaclass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Object {
    id: ObjectId,
    class: String,
    name: String,
    attrs: HashMap<String, AttrValue>,
    refs: HashMap<String, Vec<ObjectId>>,
}

impl Object {
    /// The object's id.
    #[must_use]
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The instantiated metaclass name.
    #[must_use]
    pub fn class(&self) -> &str {
        &self.class
    }

    /// The object's unique name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// An object graph conforming to a metamodel.
///
/// All mutations are validated against the metamodel: unknown classes,
/// attributes or references, type mismatches and multiplicity violations
/// are rejected eagerly, so a `Model` is conformant by construction.
#[derive(Debug, Clone)]
pub struct Model {
    metamodel: Arc<Metamodel>,
    objects: Vec<Object>,
    by_name: HashMap<String, ObjectId>,
}

impl Model {
    /// Creates an empty model over `metamodel`.
    #[must_use]
    pub fn new(metamodel: Arc<Metamodel>) -> Self {
        Model {
            metamodel,
            objects: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// The conformed-to metamodel.
    #[must_use]
    pub fn metamodel(&self) -> &Metamodel {
        &self.metamodel
    }

    /// Adds an object of metaclass `class` with a model-unique `name`.
    ///
    /// # Errors
    ///
    /// Returns [`MetamodelError::Unknown`] for an unknown class and
    /// [`MetamodelError::Duplicate`] for a name collision.
    pub fn add_object(&mut self, class: &str, name: &str) -> Result<ObjectId, MetamodelError> {
        if self.metamodel.class(class).is_none() {
            return Err(MetamodelError::Unknown {
                kind: "metaclass",
                name: class.to_owned(),
            });
        }
        if self.by_name.contains_key(name) {
            return Err(MetamodelError::Duplicate {
                kind: "object name",
                name: name.to_owned(),
            });
        }
        let id = ObjectId(u32::try_from(self.objects.len()).expect("fewer than 2^32 objects"));
        self.objects.push(Object {
            id,
            class: class.to_owned(),
            name: name.to_owned(),
            attrs: HashMap::new(),
            refs: HashMap::new(),
        });
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// The object with id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this model.
    #[must_use]
    pub fn object(&self, id: ObjectId) -> &Object {
        &self.objects[id.index()]
    }

    /// Looks an object up by name.
    #[must_use]
    pub fn object_by_name(&self, name: &str) -> Option<&Object> {
        self.by_name.get(name).map(|&id| self.object(id))
    }

    /// All objects, in creation order.
    #[must_use]
    pub fn objects(&self) -> &[Object] {
        &self.objects
    }

    /// Ids of all objects instantiating metaclass `class`.
    #[must_use]
    pub fn objects_of_class(&self, class: &str) -> Vec<ObjectId> {
        self.objects
            .iter()
            .filter(|o| o.class == class)
            .map(|o| o.id)
            .collect()
    }

    fn check_attr(
        &self,
        id: ObjectId,
        attr: &str,
        value: &AttrValue,
    ) -> Result<(), MetamodelError> {
        let obj = self.object(id);
        let class = self
            .metamodel
            .class(&obj.class)
            .expect("object class validated at creation");
        let decl = class
            .attribute(attr)
            .ok_or_else(|| MetamodelError::Unknown {
                kind: "attribute",
                name: format!("{}.{attr}", obj.class),
            })?;
        if !value.matches(decl.ty) {
            return Err(MetamodelError::TypeMismatch {
                context: format!("{}.{attr}", obj.name),
                expected: decl.ty.name(),
                found: value.type_name().to_owned(),
            });
        }
        Ok(())
    }

    /// Sets an attribute.
    ///
    /// # Errors
    ///
    /// Returns [`MetamodelError::Unknown`] for undeclared attributes and
    /// [`MetamodelError::TypeMismatch`] for ill-typed values.
    pub fn set_attr(
        &mut self,
        id: ObjectId,
        attr: &str,
        value: AttrValue,
    ) -> Result<(), MetamodelError> {
        self.check_attr(id, attr, &value)?;
        self.objects[id.index()]
            .attrs
            .insert(attr.to_owned(), value);
        Ok(())
    }

    /// Shorthand for setting an integer attribute.
    ///
    /// # Errors
    ///
    /// Same as [`set_attr`](Model::set_attr).
    pub fn set_int(&mut self, id: ObjectId, attr: &str, value: i64) -> Result<(), MetamodelError> {
        self.set_attr(id, attr, AttrValue::Int(value))
    }

    /// Reads an attribute value, if set.
    #[must_use]
    pub fn attr(&self, id: ObjectId, attr: &str) -> Option<&AttrValue> {
        self.object(id).attrs.get(attr)
    }

    /// Reads an integer attribute.
    ///
    /// # Errors
    ///
    /// Returns [`MetamodelError::Unknown`] when unset and
    /// [`MetamodelError::TypeMismatch`] when not an integer.
    pub fn int_attr(&self, id: ObjectId, attr: &str) -> Result<i64, MetamodelError> {
        match self.attr(id, attr) {
            Some(AttrValue::Int(v)) => Ok(*v),
            Some(other) => Err(MetamodelError::TypeMismatch {
                context: format!("{}.{attr}", self.object(id).name),
                expected: "int",
                found: other.type_name().to_owned(),
            }),
            None => Err(MetamodelError::Unknown {
                kind: "attribute value",
                name: format!("{}.{attr}", self.object(id).name),
            }),
        }
    }

    /// Links `source.reference` to `target`.
    ///
    /// # Errors
    ///
    /// Returns [`MetamodelError::Unknown`] for undeclared references,
    /// [`MetamodelError::TypeMismatch`] when the target's class disagrees
    /// with the declaration or a single-valued reference already holds a
    /// target.
    pub fn add_link(
        &mut self,
        source: ObjectId,
        reference: &str,
        target: ObjectId,
    ) -> Result<(), MetamodelError> {
        let src = self.object(source);
        let class = self
            .metamodel
            .class(&src.class)
            .expect("object class validated at creation");
        let decl = class
            .reference(reference)
            .ok_or_else(|| MetamodelError::Unknown {
                kind: "reference",
                name: format!("{}.{reference}", src.class),
            })?
            .clone();
        let tgt = self.object(target);
        if tgt.class != decl.target {
            return Err(MetamodelError::TypeMismatch {
                context: format!("{}.{reference}", src.name),
                expected: "object of the declared target class",
                found: tgt.class.clone(),
            });
        }
        let slots = self.objects[source.index()]
            .refs
            .entry(reference.to_owned())
            .or_default();
        if !decl.many && !slots.is_empty() {
            return Err(MetamodelError::TypeMismatch {
                context: format!("{}.{reference}", self.objects[source.index()].name),
                expected: "at most one target (0..1 reference)",
                found: "second target".to_owned(),
            });
        }
        slots.push(target);
        Ok(())
    }

    /// Objects reachable through `source.reference` (empty if unset).
    #[must_use]
    pub fn targets(&self, source: ObjectId, reference: &str) -> &[ObjectId] {
        self.object(source)
            .refs
            .get(reference)
            .map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::MetaClass;

    fn tiny_metamodel() -> Arc<Metamodel> {
        let mut mm = Metamodel::new("Tiny");
        mm.add_class(
            MetaClass::new("Agent")
                .with_attr("cycles", AttrType::Int)
                .with_attr("active", AttrType::Bool)
                .with_ref("ports", "Port", true)
                .with_ref("main", "Port", false),
        )
        .expect("class");
        mm.add_class(MetaClass::new("Port").with_attr("rate", AttrType::Int))
            .expect("class");
        Arc::new(mm)
    }

    #[test]
    fn object_creation_and_lookup() {
        let mut m = Model::new(tiny_metamodel());
        let a = m.add_object("Agent", "a1").expect("adds");
        assert_eq!(m.object(a).name(), "a1");
        assert_eq!(m.object(a).class(), "Agent");
        assert_eq!(m.object_by_name("a1").map(Object::id), Some(a));
        assert!(m.object_by_name("nope").is_none());
        assert!(m.add_object("Ghost", "g").is_err());
        assert!(m.add_object("Agent", "a1").is_err()); // duplicate name
    }

    #[test]
    fn attribute_typing_is_enforced() {
        let mut m = Model::new(tiny_metamodel());
        let a = m.add_object("Agent", "a1").expect("adds");
        m.set_int(a, "cycles", 4).expect("sets int");
        assert_eq!(m.int_attr(a, "cycles").expect("reads"), 4);
        assert!(m.set_attr(a, "cycles", AttrValue::Bool(true)).is_err());
        assert!(m.set_attr(a, "ghost", AttrValue::Int(1)).is_err());
        m.set_attr(a, "active", AttrValue::Bool(true))
            .expect("bool ok");
        assert!(m.int_attr(a, "active").is_err()); // wrong reader
        assert!(m.int_attr(a, "ghost").is_err()); // unset
    }

    #[test]
    fn link_multiplicity_and_target_class() {
        let mut m = Model::new(tiny_metamodel());
        let a = m.add_object("Agent", "a1").expect("adds");
        let p1 = m.add_object("Port", "p1").expect("adds");
        let p2 = m.add_object("Port", "p2").expect("adds");
        m.add_link(a, "ports", p1).expect("many ref");
        m.add_link(a, "ports", p2).expect("many ref again");
        assert_eq!(m.targets(a, "ports"), &[p1, p2]);
        m.add_link(a, "main", p1).expect("single ref");
        assert!(m.add_link(a, "main", p2).is_err()); // 0..1 violated
        assert!(m.add_link(a, "ghost", p1).is_err());
        assert!(m.add_link(p1, "rate", a).is_err()); // attr, not reference
                                                     // wrong target class
        let a2 = m.add_object("Agent", "a2").expect("adds");
        assert!(m.add_link(a, "ports", a2).is_err());
    }

    #[test]
    fn class_queries() {
        let mut m = Model::new(tiny_metamodel());
        let a1 = m.add_object("Agent", "a1").expect("adds");
        let _p = m.add_object("Port", "p1").expect("adds");
        let a2 = m.add_object("Agent", "a2").expect("adds");
        assert_eq!(m.objects_of_class("Agent"), vec![a1, a2]);
        assert_eq!(m.objects_of_class("Ghost").len(), 0);
        assert_eq!(m.objects().len(), 3);
    }
}
