//! Error type of the metamodeling and weaving layers.

use std::error::Error;
use std::fmt;

/// Errors raised by metamodel construction, model population and
/// mapping execution (weaving).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MetamodelError {
    /// A metaclass, attribute, reference, object or event definition was
    /// referenced but does not exist.
    Unknown {
        /// What kind of thing was looked up.
        kind: &'static str,
        /// The missing name.
        name: String,
    },
    /// A name was declared twice in the same scope.
    Duplicate {
        /// What kind of thing collided.
        kind: &'static str,
        /// The colliding name.
        name: String,
    },
    /// An attribute value or argument had the wrong type.
    TypeMismatch {
        /// Where the mismatch happened.
        context: String,
        /// Expected type.
        expected: &'static str,
        /// Found type.
        found: String,
    },
    /// A navigation path did not resolve to exactly one object.
    Navigation {
        /// The failing path rendered as `self.a.b`.
        path: String,
        /// How many targets were found.
        found: usize,
    },
    /// Constraint instantiation failed during weaving.
    Weave {
        /// The invariant instance being created.
        instance: String,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for MetamodelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetamodelError::Unknown { kind, name } => write!(f, "unknown {kind} `{name}`"),
            MetamodelError::Duplicate { kind, name } => write!(f, "duplicate {kind} `{name}`"),
            MetamodelError::TypeMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "type mismatch in {context}: expected {expected}, found {found}"
            ),
            MetamodelError::Navigation { path, found } => write!(
                f,
                "navigation `{path}` must reach exactly one object, found {found}"
            ),
            MetamodelError::Weave { instance, reason } => {
                write!(f, "cannot weave `{instance}`: {reason}")
            }
        }
    }
}

impl Error for MetamodelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_names() {
        let e = MetamodelError::Unknown {
            kind: "metaclass",
            name: "Agent".into(),
        };
        assert_eq!(e.to_string(), "unknown metaclass `Agent`");
        let e = MetamodelError::Navigation {
            path: "self.outputPort".into(),
            found: 0,
        };
        assert!(e.to_string().contains("exactly one"));
    }
}
