//! # moccml-metamodel
//!
//! The metamodeling substrate of the reproduction: what the paper gets
//! from EMF/MOF and ECL, rebuilt as a small library (the substitution is
//! documented in DESIGN.md).
//!
//! Three layers, mirroring the paper's Fig. 1:
//!
//! * **MOF-lite** ([`Metamodel`], [`MetaClass`]) — the *abstract syntax*
//!   of a DSL: classes with typed attributes and references.
//! * **Models** ([`Model`], [`ObjectId`]) — instances conforming to a
//!   metamodel, validated against it.
//! * **Mapping** ([`MappingSpec`]) — the ECL-inspired weaving of
//!   Listing 1: event definitions in the *context* of a metaclass
//!   (`context Agent def: start : Event`) and invariants instantiating
//!   MoCC constraints with navigation arguments
//!   (`inv PlaceLimitation: RelationPlaceConstraint(self.outputPort.write, …)`).
//!
//! [`weave`] executes the mapping over a model: it creates one event per
//! (object, event definition) pair, resolves every invariant's
//! arguments by navigation, instantiates the named constraints through a
//! [`ConstraintRegistry`] (automata libraries and/or native CCSL
//! factories), and returns the executable
//! [`Specification`](moccml_kernel::Specification) — the *execution
//! model* that configures the generic engine.
//!
//! ## Example
//!
//! ```
//! use moccml_metamodel::{Metamodel, MetaClass, AttrType, Model};
//!
//! let mut mm = Metamodel::new("Tiny");
//! mm.add_class(
//!     MetaClass::new("Task")
//!         .with_attr("budget", AttrType::Int)
//!         .with_ref("next", "Task", false),
//! )?;
//!
//! let mut model = Model::new(mm.into());
//! let t1 = model.add_object("Task", "t1")?;
//! let t2 = model.add_object("Task", "t2")?;
//! model.set_int(t1, "budget", 3)?;
//! model.add_link(t1, "next", t2)?;
//! assert_eq!(model.int_attr(t1, "budget")?, 3);
//! # Ok::<(), moccml_metamodel::MetamodelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod mapping;
mod meta;
mod model;
mod registry;

pub use error::MetamodelError;
pub use mapping::{weave, ArgExpr, EventDef, InvariantDef, MappingSpec, NavPath};
pub use meta::{AttrType, Attribute, MetaClass, Metamodel, Reference};
pub use model::{AttrValue, Model, Object, ObjectId};
pub use registry::ConstraintRegistry;
