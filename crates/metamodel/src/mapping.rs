//! The ECL-inspired mapping of Listing 1 and its execution (weaving).
//!
//! The paper separates the MoCC from the DSL through a *mapping* —
//! events declared in the context of DSL concepts and invariants
//! instantiating MoCC constraints from navigated arguments:
//!
//! ```text
//! context Agent
//!   def: start : Event
//! context Place
//!   inv PlaceLimitation:
//!     RelationPlaceConstraint(self.outputPort.write, self.inputPort.read,
//!                             self.outputPort.rate, self.inputPort.rate,
//!                             self.delay, self.capacity)
//! ```
//!
//! [`MappingSpec`] is that artefact; [`weave`] executes it over a
//! [`Model`] to produce the execution model.

use crate::error::MetamodelError;
use crate::model::{Model, ObjectId};
use crate::registry::ConstraintRegistry;
use moccml_kernel::{EventId, Specification, Universe};
use std::fmt;

/// A navigation path from `self` through reference names,
/// e.g. `self.outputPort`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NavPath(Vec<String>);

impl NavPath {
    /// The empty path (`self`).
    #[must_use]
    pub fn self_() -> Self {
        NavPath(Vec::new())
    }

    /// A path following the given reference names in order.
    #[must_use]
    pub fn through<I, S>(segments: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        NavPath(segments.into_iter().map(Into::into).collect())
    }

    /// The reference names traversed.
    #[must_use]
    pub fn segments(&self) -> &[String] {
        &self.0
    }

    /// Resolves the path from `start`, requiring exactly one target.
    ///
    /// # Errors
    ///
    /// Returns [`MetamodelError::Navigation`] if the path reaches zero
    /// or several objects, [`MetamodelError::Unknown`] if a segment is
    /// not a declared reference.
    pub fn resolve_single(
        &self,
        model: &Model,
        start: ObjectId,
    ) -> Result<ObjectId, MetamodelError> {
        let mut current = vec![start];
        for segment in &self.0 {
            let mut next = Vec::new();
            for &obj in &current {
                let class = model
                    .metamodel()
                    .class(model.object(obj).class())
                    .expect("objects conform by construction");
                if class.reference(segment).is_none() {
                    return Err(MetamodelError::Unknown {
                        kind: "reference",
                        name: format!("{}.{segment}", class.name()),
                    });
                }
                next.extend_from_slice(model.targets(obj, segment));
            }
            current = next;
        }
        match current.as_slice() {
            [single] => Ok(*single),
            other => Err(MetamodelError::Navigation {
                path: self.to_string(),
                found: other.len(),
            }),
        }
    }
}

impl fmt::Display for NavPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "self")?;
        for s in &self.0 {
            write!(f, ".{s}")?;
        }
        Ok(())
    }
}

/// An argument of a constraint invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgExpr {
    /// Navigate, then take the named event of the reached object
    /// (e.g. `self.outputPort.write`).
    Event {
        /// Navigation to the owning object.
        path: NavPath,
        /// Event definition name on that object's class.
        event: String,
    },
    /// Navigate, then read the named integer attribute
    /// (e.g. `self.inputPort.rate`).
    IntAttr {
        /// Navigation to the owning object.
        path: NavPath,
        /// Attribute name.
        attr: String,
    },
    /// A literal integer.
    IntConst(i64),
}

impl ArgExpr {
    /// Event argument shorthand.
    #[must_use]
    pub fn event<I, S>(path: I, event: &str) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ArgExpr::Event {
            path: NavPath::through(path),
            event: event.to_owned(),
        }
    }

    /// Integer attribute argument shorthand.
    #[must_use]
    pub fn attr<I, S>(path: I, attr: &str) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ArgExpr::IntAttr {
            path: NavPath::through(path),
            attr: attr.to_owned(),
        }
    }
}

/// `context C def: name : Event` — an event defined on every instance
/// of metaclass `context`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventDef {
    /// Owning metaclass.
    pub context: String,
    /// Event name within the context.
    pub event: String,
}

/// `context C inv name: Constraint(args…)` — a constraint instantiated
/// for every instance of metaclass `context`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantDef {
    /// Owning metaclass.
    pub context: String,
    /// Invariant name (instance names are `object.invariant`).
    pub name: String,
    /// Constraint to instantiate (resolved by the registry).
    pub constraint: String,
    /// Positional arguments: events first, integers after, in the
    /// constraint's declaration order.
    pub args: Vec<ArgExpr>,
}

/// The complete mapping of a DSL: its events and its constraint
/// invariants, both attached to metaclasses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MappingSpec {
    event_defs: Vec<EventDef>,
    invariants: Vec<InvariantDef>,
}

impl MappingSpec {
    /// Creates an empty mapping.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `context C def: event : Event` (builder style).
    #[must_use]
    pub fn def_event(mut self, context: &str, event: &str) -> Self {
        self.event_defs.push(EventDef {
            context: context.to_owned(),
            event: event.to_owned(),
        });
        self
    }

    /// Declares an invariant (builder style).
    #[must_use]
    pub fn def_invariant(
        mut self,
        context: &str,
        name: &str,
        constraint: &str,
        args: Vec<ArgExpr>,
    ) -> Self {
        self.invariants.push(InvariantDef {
            context: context.to_owned(),
            name: name.to_owned(),
            constraint: constraint.to_owned(),
            args,
        });
        self
    }

    /// Declared event definitions.
    #[must_use]
    pub fn event_defs(&self) -> &[EventDef] {
        &self.event_defs
    }

    /// Declared invariants.
    #[must_use]
    pub fn invariants(&self) -> &[InvariantDef] {
        &self.invariants
    }

    /// Whether metaclass `class` declares event `event`.
    #[must_use]
    pub fn has_event(&self, class: &str, event: &str) -> bool {
        self.event_defs
            .iter()
            .any(|d| d.context == class && d.event == event)
    }
}

/// Canonical name of the event `event` on object `object`.
#[must_use]
fn event_name(object_name: &str, event: &str) -> String {
    format!("{object_name}.{event}")
}

/// Executes a mapping over a model: generates the event universe and
/// instantiates every invariant for every instance of its context —
/// the automatic generation of the *execution model* of Fig. 1.
///
/// # Errors
///
/// Propagates navigation, typing and instantiation failures as
/// [`MetamodelError`]; the specification is only returned when every
/// invariant wove successfully.
pub fn weave(
    model: &Model,
    mapping: &MappingSpec,
    registry: &ConstraintRegistry,
) -> Result<Specification, MetamodelError> {
    // 1. events: one per (object, event definition in its class context)
    let mut universe = Universe::new();
    for obj in model.objects() {
        for def in mapping.event_defs() {
            if def.context == obj.class() {
                universe.event(&event_name(obj.name(), &def.event));
            }
        }
    }
    let mut spec = Specification::new(model.metamodel().name(), universe);

    // 2. invariants: instantiate per context instance
    for inv in mapping.invariants() {
        for ctx in model.objects_of_class(&inv.context) {
            let ctx_name = model.object(ctx).name().to_owned();
            let instance_name = format!("{ctx_name}.{}", inv.name);
            let mut events: Vec<EventId> = Vec::new();
            let mut ints: Vec<i64> = Vec::new();
            for arg in &inv.args {
                match arg {
                    ArgExpr::Event { path, event } => {
                        let target = path.resolve_single(model, ctx)?;
                        let target_obj = model.object(target);
                        if !mapping.has_event(target_obj.class(), event) {
                            return Err(MetamodelError::Unknown {
                                kind: "event definition",
                                name: format!("{}.{event}", target_obj.class()),
                            });
                        }
                        let name = event_name(target_obj.name(), event);
                        let id = spec
                            .universe_mut()
                            .lookup(&name)
                            .expect("event generated in phase 1");
                        events.push(id);
                    }
                    ArgExpr::IntAttr { path, attr } => {
                        let target = path.resolve_single(model, ctx)?;
                        ints.push(model.int_attr(target, attr)?);
                    }
                    ArgExpr::IntConst(v) => ints.push(*v),
                }
            }
            let constraint =
                registry.instantiate(&inv.constraint, &instance_name, &events, &ints)?;
            spec.add_constraint(constraint);
        }
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::{AttrType, MetaClass, Metamodel};
    use moccml_automata::parse_library;
    use std::sync::Arc;

    /// A miniature SigPML: Agent → Port, Place connecting two ports.
    fn sigpml_metamodel() -> Arc<Metamodel> {
        let mut mm = Metamodel::new("MiniSigPML");
        mm.add_class(MetaClass::new("Agent").with_ref("out", "Port", false))
            .expect("class");
        mm.add_class(MetaClass::new("Port").with_attr("rate", AttrType::Int))
            .expect("class");
        mm.add_class(
            MetaClass::new("Place")
                .with_attr("capacity", AttrType::Int)
                .with_attr("delay", AttrType::Int)
                .with_ref("outputPort", "Port", false)
                .with_ref("inputPort", "Port", false),
        )
        .expect("class");
        mm.validate().expect("valid metamodel");
        Arc::new(mm)
    }

    fn place_registry() -> ConstraintRegistry {
        let lib = parse_library(
            r#"library SDF {
              constraint PlaceConstraint(write: event, read: event,
                                         pushRate: int, popRate: int,
                                         itsDelay: int, itsCapacity: int)
              automaton PlaceConstraintDef implements PlaceConstraint {
                var size: int = itsDelay;
                initial state S0; final state S0;
                from S0 to S0 when {write} forbid {read}
                  guard [size <= itsCapacity - pushRate] do size += pushRate;
                from S0 to S0 when {read} forbid {write}
                  guard [size >= popRate] do size -= popRate;
              }
            }"#,
        )
        .expect("parses");
        let mut reg = ConstraintRegistry::new();
        reg.add_library(Arc::new(lib));
        reg
    }

    fn listing1_mapping() -> MappingSpec {
        MappingSpec::new()
            .def_event("Port", "read")
            .def_event("Port", "write")
            .def_invariant(
                "Place",
                "PlaceLimitation",
                "PlaceConstraint",
                vec![
                    ArgExpr::event(["outputPort"], "write"),
                    ArgExpr::event(["inputPort"], "read"),
                    ArgExpr::attr(["outputPort"], "rate"),
                    ArgExpr::attr(["inputPort"], "rate"),
                    ArgExpr::attr(Vec::<String>::new(), "delay"),
                    ArgExpr::attr(Vec::<String>::new(), "capacity"),
                ],
            )
    }

    fn one_place_model() -> Model {
        let mut m = Model::new(sigpml_metamodel());
        let src = m.add_object("Port", "a.out").expect("port");
        let dst = m.add_object("Port", "b.in").expect("port");
        m.set_int(src, "rate", 1).expect("rate");
        m.set_int(dst, "rate", 1).expect("rate");
        let place = m.add_object("Place", "p").expect("place");
        m.set_int(place, "capacity", 2).expect("cap");
        m.set_int(place, "delay", 0).expect("delay");
        m.add_link(place, "outputPort", src).expect("link");
        m.add_link(place, "inputPort", dst).expect("link");
        m
    }

    #[test]
    fn weave_generates_events_and_constraints() {
        let model = one_place_model();
        let spec = weave(&model, &listing1_mapping(), &place_registry()).expect("weaves");
        // two ports × two events
        assert_eq!(spec.universe().len(), 4);
        assert!(spec.universe().lookup("a.out.write").is_some());
        assert!(spec.universe().lookup("b.in.read").is_some());
        // one Place ⇒ one PlaceConstraint instance
        assert_eq!(spec.constraint_count(), 1);
        assert_eq!(spec.constraints()[0].name(), "p.PlaceLimitation");
    }

    #[test]
    fn woven_constraint_behaves_like_fig3() {
        use moccml_kernel::Step;
        let model = one_place_model();
        let mut spec = weave(&model, &listing1_mapping(), &place_registry()).expect("weaves");
        let w = spec.universe().lookup("a.out.write").expect("event");
        let r = spec.universe().lookup("b.in.read").expect("event");
        assert!(spec.accepts(&Step::from_events([w])));
        assert!(!spec.accepts(&Step::from_events([r]))); // empty place
        spec.fire(&Step::from_events([w])).expect("fills");
        assert!(spec.accepts(&Step::from_events([r])));
    }

    #[test]
    fn invariant_is_instantiated_per_context_instance() {
        let mut model = one_place_model();
        let src2 = model.add_object("Port", "c.out").expect("port");
        let dst2 = model.add_object("Port", "d.in").expect("port");
        model.set_int(src2, "rate", 1).expect("rate");
        model.set_int(dst2, "rate", 1).expect("rate");
        let p2 = model.add_object("Place", "p2").expect("place");
        model.set_int(p2, "capacity", 1).expect("cap");
        model.set_int(p2, "delay", 0).expect("delay");
        model.add_link(p2, "outputPort", src2).expect("link");
        model.add_link(p2, "inputPort", dst2).expect("link");
        let spec = weave(&model, &listing1_mapping(), &place_registry()).expect("weaves");
        assert_eq!(spec.constraint_count(), 2);
    }

    #[test]
    fn unresolved_navigation_is_reported() {
        let mut model = Model::new(sigpml_metamodel());
        let place = model.add_object("Place", "dangling").expect("place");
        model.set_int(place, "capacity", 1).expect("cap");
        model.set_int(place, "delay", 0).expect("delay");
        // no ports linked: navigation self.outputPort finds 0 objects
        let r = weave(&model, &listing1_mapping(), &place_registry());
        assert!(matches!(r, Err(MetamodelError::Navigation { .. })));
    }

    #[test]
    fn unknown_event_definition_is_reported() {
        let model = one_place_model();
        let mapping = MappingSpec::new()
            // note: no Port.write event def
            .def_event("Port", "read")
            .def_invariant(
                "Place",
                "Bad",
                "PlaceConstraint",
                vec![
                    ArgExpr::event(["outputPort"], "write"),
                    ArgExpr::event(["inputPort"], "read"),
                    ArgExpr::IntConst(1),
                    ArgExpr::IntConst(1),
                    ArgExpr::IntConst(0),
                    ArgExpr::IntConst(1),
                ],
            );
        let r = weave(&model, &mapping, &place_registry());
        assert!(matches!(r, Err(MetamodelError::Unknown { .. })));
    }

    #[test]
    fn nav_path_display_and_resolution() {
        let model = one_place_model();
        let place = model.object_by_name("p").expect("place").id();
        let path = NavPath::through(["outputPort"]);
        assert_eq!(path.to_string(), "self.outputPort");
        assert_eq!(NavPath::self_().to_string(), "self");
        let target = path.resolve_single(&model, place).expect("resolves");
        assert_eq!(model.object(target).name(), "a.out");
        // self resolves to the start object
        let same = NavPath::self_()
            .resolve_single(&model, place)
            .expect("self");
        assert_eq!(same, place);
        // unknown reference segment
        let bad = NavPath::through(["ghost"]);
        assert!(bad.resolve_single(&model, place).is_err());
    }

    #[test]
    fn int_const_args_bypass_navigation() {
        let model = one_place_model();
        let mapping = MappingSpec::new()
            .def_event("Port", "read")
            .def_event("Port", "write")
            .def_invariant(
                "Place",
                "Inv",
                "PlaceConstraint",
                vec![
                    ArgExpr::event(["outputPort"], "write"),
                    ArgExpr::event(["inputPort"], "read"),
                    ArgExpr::IntConst(1),
                    ArgExpr::IntConst(1),
                    ArgExpr::IntConst(5),
                    ArgExpr::IntConst(9),
                ],
            );
        let spec = weave(&model, &mapping, &place_registry()).expect("weaves");
        assert_eq!(spec.constraint_count(), 1);
    }
}
