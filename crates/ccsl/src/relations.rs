//! Declarative *relations*: constraints restricting existing events.

use moccml_kernel::{Constraint, EventId, KernelError, StateKey, Step, StepFormula};

fn rejected(name: &str, step: &Step) -> KernelError {
    KernelError::StepRejected {
        constraint: name.to_owned(),
        step: step.to_string(),
    }
}

fn bad_key(name: &str, reason: &str) -> KernelError {
    KernelError::InvalidStateKey {
        constraint: name.to_owned(),
        reason: reason.to_owned(),
    }
}

/// `sub` is a sub-clock of `sup`: whenever `sub` occurs, `sup` occurs.
///
/// Sec. II-C: *"if the sub-event declarative constraint is defined
/// between two events e1 and e2 (…), then the corresponding boolean
/// expression is e1 ⇒ e2"*. The relation is stateless.
///
/// # Example
///
/// ```
/// use moccml_ccsl::SubClock;
/// use moccml_kernel::{Constraint, Step, Universe};
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let c = SubClock::new("sub", a, b);
/// assert!(c.current_formula().eval(&Step::new()));
/// assert!(!c.current_formula().eval(&Step::from_events([a])));
/// ```
#[derive(Debug, Clone)]
pub struct SubClock {
    name: String,
    sub: EventId,
    sup: EventId,
}

impl SubClock {
    /// Creates the relation `sub ⊆ sup`.
    #[must_use]
    pub fn new(name: &str, sub: EventId, sup: EventId) -> Self {
        SubClock {
            name: name.to_owned(),
            sub,
            sup,
        }
    }
}

impl Constraint for SubClock {
    fn name(&self) -> &str {
        &self.name
    }
    fn constrained_events(&self) -> Vec<EventId> {
        vec![self.sub, self.sup]
    }
    fn current_formula(&self) -> StepFormula {
        StepFormula::implies(StepFormula::event(self.sub), StepFormula::event(self.sup))
    }
    fn fire(&mut self, step: &Step) -> Result<(), KernelError> {
        if self.current_formula().eval(step) {
            Ok(())
        } else {
            Err(rejected(&self.name, step))
        }
    }
    fn state_key(&self) -> StateKey {
        StateKey::new()
    }
    fn restore(&mut self, key: &StateKey) -> Result<(), KernelError> {
        if key.is_empty() {
            Ok(())
        } else {
            Err(bad_key(&self.name, "stateless relation expects empty key"))
        }
    }
    fn reset(&mut self) {}
    fn boxed_clone(&self) -> Box<dyn Constraint> {
        Box::new(self.clone())
    }
}

/// At most one of the given events occurs per step (n-ary exclusion).
///
/// With two events this is the classical CCSL exclusion `a # b`; with
/// more it models shared exclusive resources — the SDF deployment
/// extension uses it to serialize agents allocated to one processor.
#[derive(Debug, Clone)]
pub struct Exclusion {
    name: String,
    events: Vec<EventId>,
}

impl Exclusion {
    /// Creates an exclusion over `events`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two events are given (the relation would be
    /// vacuous).
    #[must_use]
    pub fn new<I: IntoIterator<Item = EventId>>(name: &str, events: I) -> Self {
        let events: Vec<EventId> = events.into_iter().collect();
        assert!(events.len() >= 2, "exclusion needs at least two events");
        Exclusion {
            name: name.to_owned(),
            events,
        }
    }
}

impl Constraint for Exclusion {
    fn name(&self) -> &str {
        &self.name
    }
    fn constrained_events(&self) -> Vec<EventId> {
        self.events.clone()
    }
    fn current_formula(&self) -> StepFormula {
        // pairwise ¬(a ∧ b)
        let mut clauses = Vec::new();
        for (i, &a) in self.events.iter().enumerate() {
            for &b in &self.events[i + 1..] {
                clauses.push(StepFormula::not(StepFormula::and(vec![
                    StepFormula::event(a),
                    StepFormula::event(b),
                ])));
            }
        }
        StepFormula::and(clauses)
    }
    fn fire(&mut self, step: &Step) -> Result<(), KernelError> {
        if self.current_formula().eval(step) {
            Ok(())
        } else {
            Err(rejected(&self.name, step))
        }
    }
    fn state_key(&self) -> StateKey {
        StateKey::new()
    }
    fn restore(&mut self, key: &StateKey) -> Result<(), KernelError> {
        if key.is_empty() {
            Ok(())
        } else {
            Err(bad_key(&self.name, "stateless relation expects empty key"))
        }
    }
    fn reset(&mut self) {}
    fn boxed_clone(&self) -> Box<dyn Constraint> {
        Box::new(self.clone())
    }
}

/// `left` and `right` always occur together (coincidence, `a = b`).
#[derive(Debug, Clone)]
pub struct Coincidence {
    name: String,
    left: EventId,
    right: EventId,
}

impl Coincidence {
    /// Creates the coincidence `left = right`.
    #[must_use]
    pub fn new(name: &str, left: EventId, right: EventId) -> Self {
        Coincidence {
            name: name.to_owned(),
            left,
            right,
        }
    }
}

impl Constraint for Coincidence {
    fn name(&self) -> &str {
        &self.name
    }
    fn constrained_events(&self) -> Vec<EventId> {
        vec![self.left, self.right]
    }
    fn current_formula(&self) -> StepFormula {
        StepFormula::iff(
            StepFormula::event(self.left),
            StepFormula::event(self.right),
        )
    }
    fn fire(&mut self, step: &Step) -> Result<(), KernelError> {
        if self.current_formula().eval(step) {
            Ok(())
        } else {
            Err(rejected(&self.name, step))
        }
    }
    fn state_key(&self) -> StateKey {
        StateKey::new()
    }
    fn restore(&mut self, key: &StateKey) -> Result<(), KernelError> {
        if key.is_empty() {
            Ok(())
        } else {
            Err(bad_key(&self.name, "stateless relation expects empty key"))
        }
    }
    fn reset(&mut self) {}
    fn boxed_clone(&self) -> Box<dyn Constraint> {
        Box::new(self.clone())
    }
}

/// Precedence `cause ≺ effect`: the n-th occurrence of `effect` needs at
/// least n prior occurrences of `cause`.
///
/// The internal state is the *advance* `δ = count(cause) −
/// count(effect) ≥ 0`.
///
/// * **strict** (`strict = true`, CCSL `<`): when `δ = 0` the effect is
///   forbidden, even simultaneously with a new cause.
/// * **weak** (causality, CCSL `≤`): when `δ = 0` the effect may occur
///   only together with a cause.
/// * **bounded** (`max_drift = Some(b)`): when `δ = b` the cause is
///   forbidden unless an effect occurs in the same step — a capacity-`b`
///   buffer between the two events.
///
/// # Example
///
/// ```
/// use moccml_ccsl::Precedence;
/// use moccml_kernel::{Constraint, Step, Universe};
/// let mut u = Universe::new();
/// let (c, e) = (u.event("cause"), u.event("effect"));
/// let p = Precedence::strict("c<e", c, e);
/// assert!(!p.current_formula().eval(&Step::from_events([e])));
/// assert!(p.current_formula().eval(&Step::from_events([c])));
/// ```
#[derive(Debug, Clone)]
pub struct Precedence {
    name: String,
    cause: EventId,
    effect: EventId,
    strict: bool,
    max_drift: Option<u64>,
    delta: u64,
}

impl Precedence {
    /// Strict precedence `cause < effect`.
    #[must_use]
    pub fn strict(name: &str, cause: EventId, effect: EventId) -> Self {
        Precedence {
            name: name.to_owned(),
            cause,
            effect,
            strict: true,
            max_drift: None,
            delta: 0,
        }
    }

    /// Weak precedence (causality) `cause ≤ effect`.
    #[must_use]
    pub fn weak(name: &str, cause: EventId, effect: EventId) -> Self {
        Precedence {
            name: name.to_owned(),
            cause,
            effect,
            strict: false,
            max_drift: None,
            delta: 0,
        }
    }

    /// Bounds the advance of `cause` over `effect` to `bound`
    /// (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero for a strict relation (the pair could
    /// never tick).
    #[must_use]
    pub fn with_bound(mut self, bound: u64) -> Self {
        assert!(
            !(self.strict && bound == 0),
            "a strict precedence with bound 0 is unsatisfiable"
        );
        self.max_drift = Some(bound);
        self
    }

    /// Current advance of the cause over the effect.
    #[must_use]
    pub fn advance(&self) -> u64 {
        self.delta
    }
}

impl Constraint for Precedence {
    fn name(&self) -> &str {
        &self.name
    }
    fn constrained_events(&self) -> Vec<EventId> {
        vec![self.cause, self.effect]
    }
    fn current_formula(&self) -> StepFormula {
        let mut clauses = Vec::new();
        if self.delta == 0 {
            if self.strict {
                clauses.push(StepFormula::not(StepFormula::event(self.effect)));
            } else {
                clauses.push(StepFormula::implies(
                    StepFormula::event(self.effect),
                    StepFormula::event(self.cause),
                ));
            }
        }
        if let Some(bound) = self.max_drift {
            if self.delta >= bound {
                clauses.push(StepFormula::implies(
                    StepFormula::event(self.cause),
                    StepFormula::event(self.effect),
                ));
            }
        }
        StepFormula::and(clauses)
    }
    fn fire(&mut self, step: &Step) -> Result<(), KernelError> {
        if !self.current_formula().eval(step) {
            return Err(rejected(&self.name, step));
        }
        let c = u64::from(step.contains(self.cause));
        let e = u64::from(step.contains(self.effect));
        self.delta = self.delta + c - e;
        Ok(())
    }
    fn state_key(&self) -> StateKey {
        StateKey::from_values([i64::try_from(self.delta).unwrap_or(i64::MAX)])
    }
    fn restore(&mut self, key: &StateKey) -> Result<(), KernelError> {
        match key.values() {
            [d] if *d >= 0 => {
                self.delta = *d as u64;
                Ok(())
            }
            _ => Err(bad_key(&self.name, "expected one non-negative value")),
        }
    }
    fn reset(&mut self) {
        self.delta = 0;
    }
    fn boxed_clone(&self) -> Box<dyn Constraint> {
        Box::new(self.clone())
    }
}

/// Strict alternation `first ~ second`: occurrences interleave
/// `first, second, first, second, …`, never simultaneously.
///
/// Equivalent to a strict precedence with bound 1 plus exclusion, kept
/// as its own relation because it is the classical CCSL `alternatesWith`.
#[derive(Debug, Clone)]
pub struct Alternation {
    name: String,
    first: EventId,
    second: EventId,
    /// `false` ⇒ expecting `first`; `true` ⇒ expecting `second`.
    expecting_second: bool,
}

impl Alternation {
    /// Creates the alternation `first ~ second` (first goes first).
    #[must_use]
    pub fn new(name: &str, first: EventId, second: EventId) -> Self {
        Alternation {
            name: name.to_owned(),
            first,
            second,
            expecting_second: false,
        }
    }
}

impl Constraint for Alternation {
    fn name(&self) -> &str {
        &self.name
    }
    fn constrained_events(&self) -> Vec<EventId> {
        vec![self.first, self.second]
    }
    fn current_formula(&self) -> StepFormula {
        if self.expecting_second {
            StepFormula::not(StepFormula::event(self.first))
        } else {
            StepFormula::not(StepFormula::event(self.second))
        }
    }
    fn fire(&mut self, step: &Step) -> Result<(), KernelError> {
        if !self.current_formula().eval(step) {
            return Err(rejected(&self.name, step));
        }
        if self.expecting_second {
            if step.contains(self.second) {
                self.expecting_second = false;
            }
        } else if step.contains(self.first) {
            self.expecting_second = true;
        }
        Ok(())
    }
    fn state_key(&self) -> StateKey {
        StateKey::from_values([i64::from(self.expecting_second)])
    }
    fn restore(&mut self, key: &StateKey) -> Result<(), KernelError> {
        match key.values() {
            [0] => {
                self.expecting_second = false;
                Ok(())
            }
            [1] => {
                self.expecting_second = true;
                Ok(())
            }
            _ => Err(bad_key(&self.name, "expected one value in {0,1}")),
        }
    }
    fn reset(&mut self) {
        self.expecting_second = false;
    }
    fn boxed_clone(&self) -> Box<dyn Constraint> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_kernel::Universe;

    fn setup() -> (Universe, EventId, EventId, EventId) {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        let c = u.event("c");
        (u, a, b, c)
    }

    #[test]
    fn subclock_allows_stuttering_and_sup_alone() {
        let (_, a, b, _) = setup();
        let mut s = SubClock::new("s", a, b);
        assert!(s.fire(&Step::new()).is_ok());
        assert!(s.fire(&Step::from_events([b])).is_ok());
        assert!(s.fire(&Step::from_events([a, b])).is_ok());
        assert!(s.fire(&Step::from_events([a])).is_err());
    }

    #[test]
    fn exclusion_forbids_simultaneity_pairwise() {
        let (_, a, b, c) = setup();
        let e = Exclusion::new("x", [a, b, c]);
        assert!(e.current_formula().eval(&Step::from_events([a])));
        assert!(e.current_formula().eval(&Step::new()));
        assert!(!e.current_formula().eval(&Step::from_events([a, c])));
        assert!(!e.current_formula().eval(&Step::from_events([b, c])));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn exclusion_rejects_singleton() {
        let (_, a, _, _) = setup();
        let _ = Exclusion::new("x", [a]);
    }

    #[test]
    fn coincidence_binds_both_ways() {
        let (_, a, b, _) = setup();
        let c = Coincidence::new("c", a, b);
        assert!(c.current_formula().eval(&Step::from_events([a, b])));
        assert!(c.current_formula().eval(&Step::new()));
        assert!(!c.current_formula().eval(&Step::from_events([a])));
        assert!(!c.current_formula().eval(&Step::from_events([b])));
    }

    #[test]
    fn strict_precedence_blocks_effect_until_cause() {
        let (_, c, e, _) = setup();
        let mut p = Precedence::strict("p", c, e);
        // effect first: rejected, even with simultaneous cause
        assert!(!p.current_formula().eval(&Step::from_events([e])));
        assert!(!p.current_formula().eval(&Step::from_events([c, e])));
        p.fire(&Step::from_events([c])).expect("cause ticks");
        assert_eq!(p.advance(), 1);
        p.fire(&Step::from_events([e])).expect("effect after cause");
        assert_eq!(p.advance(), 0);
    }

    #[test]
    fn weak_precedence_allows_simultaneity() {
        let (_, c, e, _) = setup();
        let mut p = Precedence::weak("p", c, e);
        assert!(p.current_formula().eval(&Step::from_events([c, e])));
        assert!(!p.current_formula().eval(&Step::from_events([e])));
        p.fire(&Step::from_events([c, e])).expect("simultaneous ok");
        assert_eq!(p.advance(), 0);
    }

    #[test]
    fn bounded_precedence_back_pressures_cause() {
        let (_, c, e, _) = setup();
        let mut p = Precedence::strict("p", c, e).with_bound(2);
        p.fire(&Step::from_events([c])).expect("1st");
        p.fire(&Step::from_events([c])).expect("2nd");
        // bound reached: a bare cause is rejected
        assert!(!p.current_formula().eval(&Step::from_events([c])));
        // cause with simultaneous effect keeps the drift at the bound
        p.fire(&Step::from_events([c, e])).expect("swap");
        assert_eq!(p.advance(), 2);
    }

    #[test]
    #[should_panic(expected = "unsatisfiable")]
    fn strict_zero_bound_panics() {
        let (_, c, e, _) = setup();
        let _ = Precedence::strict("p", c, e).with_bound(0);
    }

    #[test]
    fn alternation_interleaves() {
        let (_, a, b, _) = setup();
        let mut alt = Alternation::new("alt", a, b);
        assert!(!alt.current_formula().eval(&Step::from_events([b])));
        alt.fire(&Step::from_events([a])).expect("a first");
        assert!(!alt.current_formula().eval(&Step::from_events([a])));
        alt.fire(&Step::from_events([b])).expect("then b");
        alt.fire(&Step::from_events([a])).expect("a again");
    }

    #[test]
    fn precedence_state_round_trip() {
        let (_, c, e, _) = setup();
        let mut p = Precedence::strict("p", c, e);
        p.fire(&Step::from_events([c])).expect("tick");
        let key = p.state_key();
        p.reset();
        assert_eq!(p.advance(), 0);
        p.restore(&key).expect("restore");
        assert_eq!(p.advance(), 1);
        assert!(p.restore(&StateKey::from_values([-1])).is_err());
        assert!(p.restore(&StateKey::from_values([1, 2])).is_err());
    }

    #[test]
    fn alternation_state_round_trip() {
        let (_, a, b, _) = setup();
        let mut alt = Alternation::new("alt", a, b);
        alt.fire(&Step::from_events([a])).expect("tick");
        let key = alt.state_key();
        alt.reset();
        alt.restore(&key).expect("restore");
        assert_eq!(alt.state_key(), key);
        assert!(alt.restore(&StateKey::from_values([7])).is_err());
    }

    #[test]
    fn stateless_relations_reject_nonempty_keys() {
        let (_, a, b, _) = setup();
        let mut s = SubClock::new("s", a, b);
        assert!(s.restore(&StateKey::from_values([0])).is_err());
        assert!(s.restore(&StateKey::new()).is_ok());
    }
}
