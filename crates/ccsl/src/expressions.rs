//! Declarative *expressions*: constraints that define a new event in
//! terms of existing ones.
//!
//! In CCSL an expression introduces a fresh clock whose ticks are fully
//! determined (or constrained) by its operands. Here the "result" event
//! must already exist in the universe; the expression constrains it to
//! behave as defined.

use moccml_kernel::{Constraint, EventId, KernelError, StateKey, Step, StepFormula};

fn rejected(name: &str, step: &Step) -> KernelError {
    KernelError::StepRejected {
        constraint: name.to_owned(),
        step: step.to_string(),
    }
}

fn bad_key(name: &str, reason: &str) -> KernelError {
    KernelError::InvalidStateKey {
        constraint: name.to_owned(),
        reason: reason.to_owned(),
    }
}

/// `result = a + b + …`: the result occurs exactly when at least one
/// operand occurs.
#[derive(Debug, Clone)]
pub struct Union {
    name: String,
    result: EventId,
    operands: Vec<EventId>,
}

impl Union {
    /// Creates `result = union(operands)`.
    ///
    /// # Panics
    ///
    /// Panics if `operands` is empty.
    #[must_use]
    pub fn new<I: IntoIterator<Item = EventId>>(name: &str, result: EventId, operands: I) -> Self {
        let operands: Vec<EventId> = operands.into_iter().collect();
        assert!(!operands.is_empty(), "union needs at least one operand");
        Union {
            name: name.to_owned(),
            result,
            operands,
        }
    }
}

impl Constraint for Union {
    fn name(&self) -> &str {
        &self.name
    }
    fn constrained_events(&self) -> Vec<EventId> {
        let mut v = vec![self.result];
        v.extend(&self.operands);
        v
    }
    fn current_formula(&self) -> StepFormula {
        StepFormula::iff(
            StepFormula::event(self.result),
            StepFormula::or(
                self.operands
                    .iter()
                    .map(|&e| StepFormula::event(e))
                    .collect(),
            ),
        )
    }
    fn fire(&mut self, step: &Step) -> Result<(), KernelError> {
        if self.current_formula().eval(step) {
            Ok(())
        } else {
            Err(rejected(&self.name, step))
        }
    }
    fn state_key(&self) -> StateKey {
        StateKey::new()
    }
    fn restore(&mut self, key: &StateKey) -> Result<(), KernelError> {
        if key.is_empty() {
            Ok(())
        } else {
            Err(bad_key(
                &self.name,
                "stateless expression expects empty key",
            ))
        }
    }
    fn reset(&mut self) {}
    fn boxed_clone(&self) -> Box<dyn Constraint> {
        Box::new(self.clone())
    }
}

/// `result = a * b * …`: the result occurs exactly when every operand
/// occurs.
#[derive(Debug, Clone)]
pub struct Intersection {
    name: String,
    result: EventId,
    operands: Vec<EventId>,
}

impl Intersection {
    /// Creates `result = intersection(operands)`.
    ///
    /// # Panics
    ///
    /// Panics if `operands` is empty.
    #[must_use]
    pub fn new<I: IntoIterator<Item = EventId>>(name: &str, result: EventId, operands: I) -> Self {
        let operands: Vec<EventId> = operands.into_iter().collect();
        assert!(
            !operands.is_empty(),
            "intersection needs at least one operand"
        );
        Intersection {
            name: name.to_owned(),
            result,
            operands,
        }
    }
}

impl Constraint for Intersection {
    fn name(&self) -> &str {
        &self.name
    }
    fn constrained_events(&self) -> Vec<EventId> {
        let mut v = vec![self.result];
        v.extend(&self.operands);
        v
    }
    fn current_formula(&self) -> StepFormula {
        StepFormula::iff(
            StepFormula::event(self.result),
            StepFormula::and(
                self.operands
                    .iter()
                    .map(|&e| StepFormula::event(e))
                    .collect(),
            ),
        )
    }
    fn fire(&mut self, step: &Step) -> Result<(), KernelError> {
        if self.current_formula().eval(step) {
            Ok(())
        } else {
            Err(rejected(&self.name, step))
        }
    }
    fn state_key(&self) -> StateKey {
        StateKey::new()
    }
    fn restore(&mut self, key: &StateKey) -> Result<(), KernelError> {
        if key.is_empty() {
            Ok(())
        } else {
            Err(bad_key(
                &self.name,
                "stateless expression expects empty key",
            ))
        }
    }
    fn reset(&mut self) {}
    fn boxed_clone(&self) -> Box<dyn Constraint> {
        Box::new(self.clone())
    }
}

/// `result = base $ delay`: the result coincides with every occurrence
/// of `base` except the first `delay` ones.
///
/// # Example
///
/// ```
/// use moccml_ccsl::Delay;
/// use moccml_kernel::{Constraint, Step, Universe};
/// let mut u = Universe::new();
/// let (b, r) = (u.event("base"), u.event("res"));
/// let mut d = Delay::new("d", r, b, 1);
/// // first base tick: result must stay silent
/// assert!(!d.current_formula().eval(&Step::from_events([b, r])));
/// d.fire(&Step::from_events([b])).expect("skip one");
/// // afterwards result coincides with base
/// assert!(d.current_formula().eval(&Step::from_events([b, r])));
/// assert!(!d.current_formula().eval(&Step::from_events([b])));
/// ```
#[derive(Debug, Clone)]
pub struct Delay {
    name: String,
    result: EventId,
    base: EventId,
    delay: u64,
    seen: u64,
}

impl Delay {
    /// Creates `result = base $ delay`.
    #[must_use]
    pub fn new(name: &str, result: EventId, base: EventId, delay: u64) -> Self {
        Delay {
            name: name.to_owned(),
            result,
            base,
            delay,
            seen: 0,
        }
    }
}

impl Constraint for Delay {
    fn name(&self) -> &str {
        &self.name
    }
    fn constrained_events(&self) -> Vec<EventId> {
        vec![self.result, self.base]
    }
    fn current_formula(&self) -> StepFormula {
        if self.seen < self.delay {
            StepFormula::not(StepFormula::event(self.result))
        } else {
            StepFormula::iff(
                StepFormula::event(self.result),
                StepFormula::event(self.base),
            )
        }
    }
    fn fire(&mut self, step: &Step) -> Result<(), KernelError> {
        if !self.current_formula().eval(step) {
            return Err(rejected(&self.name, step));
        }
        if step.contains(self.base) && self.seen < self.delay {
            self.seen += 1;
        }
        Ok(())
    }
    fn state_key(&self) -> StateKey {
        StateKey::from_values([i64::try_from(self.seen).unwrap_or(i64::MAX)])
    }
    fn restore(&mut self, key: &StateKey) -> Result<(), KernelError> {
        match key.values() {
            [s] if *s >= 0 => {
                self.seen = *s as u64;
                Ok(())
            }
            _ => Err(bad_key(&self.name, "expected one non-negative value")),
        }
    }
    fn reset(&mut self) {
        self.seen = 0;
    }
    fn boxed_clone(&self) -> Box<dyn Constraint> {
        Box::new(self.clone())
    }
}

/// `result = base filteredBy (offset, period)`: the result coincides
/// with the occurrences of `base` whose 0-based index `k` satisfies
/// `k ≥ offset` and `(k − offset) mod period = 0`.
///
/// `Periodic::every` is the common `offset = 0` case.
#[derive(Debug, Clone)]
pub struct Periodic {
    name: String,
    result: EventId,
    base: EventId,
    offset: u64,
    period: u64,
    count: u64,
}

impl Periodic {
    /// Creates the filtered clock.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn new(name: &str, result: EventId, base: EventId, offset: u64, period: u64) -> Self {
        assert!(period > 0, "period must be at least 1");
        Periodic {
            name: name.to_owned(),
            result,
            base,
            offset,
            period,
            count: 0,
        }
    }

    /// `result` ticks on every `period`-th occurrence of `base`,
    /// starting with the first.
    #[must_use]
    pub fn every(name: &str, result: EventId, base: EventId, period: u64) -> Self {
        Periodic::new(name, result, base, 0, period)
    }

    fn selected_now(&self) -> bool {
        self.count >= self.offset && (self.count - self.offset).is_multiple_of(self.period)
    }
}

impl Constraint for Periodic {
    fn name(&self) -> &str {
        &self.name
    }
    fn constrained_events(&self) -> Vec<EventId> {
        vec![self.result, self.base]
    }
    fn current_formula(&self) -> StepFormula {
        if self.selected_now() {
            StepFormula::iff(
                StepFormula::event(self.result),
                StepFormula::event(self.base),
            )
        } else {
            StepFormula::not(StepFormula::event(self.result))
        }
    }
    fn fire(&mut self, step: &Step) -> Result<(), KernelError> {
        if !self.current_formula().eval(step) {
            return Err(rejected(&self.name, step));
        }
        if step.contains(self.base) {
            self.count += 1;
        }
        Ok(())
    }
    fn state_key(&self) -> StateKey {
        // the selection is periodic: store count modulo the cycle once
        // past the offset, keeping the state space finite.
        let folded = if self.count >= self.offset {
            self.offset + (self.count - self.offset) % self.period
        } else {
            self.count
        };
        StateKey::from_values([i64::try_from(folded).unwrap_or(i64::MAX)])
    }
    fn restore(&mut self, key: &StateKey) -> Result<(), KernelError> {
        match key.values() {
            [c] if *c >= 0 => {
                self.count = *c as u64;
                Ok(())
            }
            _ => Err(bad_key(&self.name, "expected one non-negative value")),
        }
    }
    fn reset(&mut self) {
        self.count = 0;
    }
    fn boxed_clone(&self) -> Box<dyn Constraint> {
        Box::new(self.clone())
    }
}

/// `result = trigger sampledOn base`: the result ticks with the next
/// `base` occurrence following a `trigger` occurrence.
///
/// A trigger arriving *in the same step* as a `base` tick is kept for
/// the following tick (strict sampling).
#[derive(Debug, Clone)]
pub struct SampledOn {
    name: String,
    result: EventId,
    trigger: EventId,
    base: EventId,
    pending: bool,
}

impl SampledOn {
    /// Creates `result = trigger sampledOn base`.
    #[must_use]
    pub fn new(name: &str, result: EventId, trigger: EventId, base: EventId) -> Self {
        SampledOn {
            name: name.to_owned(),
            result,
            trigger,
            base,
            pending: false,
        }
    }
}

impl Constraint for SampledOn {
    fn name(&self) -> &str {
        &self.name
    }
    fn constrained_events(&self) -> Vec<EventId> {
        vec![self.result, self.trigger, self.base]
    }
    fn current_formula(&self) -> StepFormula {
        if self.pending {
            StepFormula::iff(
                StepFormula::event(self.result),
                StepFormula::event(self.base),
            )
        } else {
            StepFormula::not(StepFormula::event(self.result))
        }
    }
    fn fire(&mut self, step: &Step) -> Result<(), KernelError> {
        if !self.current_formula().eval(step) {
            return Err(rejected(&self.name, step));
        }
        let trig = step.contains(self.trigger);
        let base = step.contains(self.base);
        self.pending = if base { trig } else { self.pending || trig };
        Ok(())
    }
    fn state_key(&self) -> StateKey {
        StateKey::from_values([i64::from(self.pending)])
    }
    fn restore(&mut self, key: &StateKey) -> Result<(), KernelError> {
        match key.values() {
            [0] => {
                self.pending = false;
                Ok(())
            }
            [1] => {
                self.pending = true;
                Ok(())
            }
            _ => Err(bad_key(&self.name, "expected one value in {0,1}")),
        }
    }
    fn reset(&mut self) {
        self.pending = false;
    }
    fn boxed_clone(&self) -> Box<dyn Constraint> {
        Box::new(self.clone())
    }
}

/// `result = base filteredBy w·(v)^ω`: the result coincides with the
/// occurrences of `base` selected by a binary word — a finite prefix
/// `head` followed by the infinite repetition of `cycle`.
///
/// This is the fully general CCSL `filterBy`; [`Periodic`] is the
/// special case `0^offset·(1·0^(period−1))^ω`.
///
/// # Example
///
/// ```
/// use moccml_ccsl::FilteredBy;
/// use moccml_kernel::{Constraint, Step, Universe};
/// let mut u = Universe::new();
/// let (b, r) = (u.event("base"), u.event("res"));
/// // select occurrences 1, 3, 5, … (skip one, then every other)
/// let f = FilteredBy::new("f", r, b, vec![false], vec![true, false]);
/// assert!(!f.current_formula().eval(&Step::from_events([b, r])));
/// ```
#[derive(Debug, Clone)]
pub struct FilteredBy {
    name: String,
    result: EventId,
    base: EventId,
    head: Vec<bool>,
    cycle: Vec<bool>,
    position: u64,
}

impl FilteredBy {
    /// Creates the filter `head · cycle^ω` over `base`.
    ///
    /// # Panics
    ///
    /// Panics if `cycle` is empty (the word must be infinite).
    #[must_use]
    pub fn new(
        name: &str,
        result: EventId,
        base: EventId,
        head: Vec<bool>,
        cycle: Vec<bool>,
    ) -> Self {
        assert!(!cycle.is_empty(), "the periodic part must be non-empty");
        FilteredBy {
            name: name.to_owned(),
            result,
            base,
            head,
            cycle,
            position: 0,
        }
    }

    fn selected_now(&self) -> bool {
        let pos = self.position as usize;
        if pos < self.head.len() {
            self.head[pos]
        } else {
            self.cycle[(pos - self.head.len()) % self.cycle.len()]
        }
    }
}

impl Constraint for FilteredBy {
    fn name(&self) -> &str {
        &self.name
    }
    fn constrained_events(&self) -> Vec<EventId> {
        vec![self.result, self.base]
    }
    fn current_formula(&self) -> StepFormula {
        if self.selected_now() {
            StepFormula::iff(
                StepFormula::event(self.result),
                StepFormula::event(self.base),
            )
        } else {
            StepFormula::not(StepFormula::event(self.result))
        }
    }
    fn fire(&mut self, step: &Step) -> Result<(), KernelError> {
        if !self.current_formula().eval(step) {
            return Err(rejected(&self.name, step));
        }
        if step.contains(self.base) {
            self.position += 1;
        }
        Ok(())
    }
    fn state_key(&self) -> StateKey {
        // fold the position into the cycle once past the head so the
        // exploration state space stays finite
        let pos = self.position as usize;
        let folded = if pos >= self.head.len() {
            self.head.len() + (pos - self.head.len()) % self.cycle.len()
        } else {
            pos
        };
        StateKey::from_values([i64::try_from(folded).unwrap_or(i64::MAX)])
    }
    fn restore(&mut self, key: &StateKey) -> Result<(), KernelError> {
        match key.values() {
            [p] if *p >= 0 => {
                self.position = *p as u64;
                Ok(())
            }
            _ => Err(bad_key(&self.name, "expected one non-negative value")),
        }
    }
    fn reset(&mut self) {
        self.position = 0;
    }
    fn boxed_clone(&self) -> Box<dyn Constraint> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_kernel::Universe;

    fn setup() -> (Universe, EventId, EventId, EventId) {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        let r = u.event("r");
        (u, a, b, r)
    }

    #[test]
    fn union_tracks_any_operand() {
        let (_, a, b, r) = setup();
        let u = Union::new("u", r, [a, b]);
        assert!(u.current_formula().eval(&Step::from_events([a, r])));
        assert!(u.current_formula().eval(&Step::from_events([a, b, r])));
        assert!(u.current_formula().eval(&Step::new()));
        assert!(!u.current_formula().eval(&Step::from_events([a])));
        assert!(!u.current_formula().eval(&Step::from_events([r])));
    }

    #[test]
    fn intersection_requires_all_operands() {
        let (_, a, b, r) = setup();
        let i = Intersection::new("i", r, [a, b]);
        assert!(i.current_formula().eval(&Step::from_events([a, b, r])));
        assert!(i.current_formula().eval(&Step::from_events([a])));
        assert!(!i.current_formula().eval(&Step::from_events([a, r])));
        assert!(!i.current_formula().eval(&Step::from_events([a, b])));
    }

    #[test]
    fn delay_skips_then_coincides() {
        let (_, base, _, r) = setup();
        let mut d = Delay::new("d", r, base, 2);
        d.fire(&Step::from_events([base])).expect("skip 1");
        d.fire(&Step::from_events([base])).expect("skip 2");
        assert!(d.fire(&Step::from_events([base])).is_err()); // r must tick now
        d.fire(&Step::from_events([base, r])).expect("coincide");
        assert!(d.fire(&Step::from_events([r])).is_err()); // r without base
    }

    #[test]
    fn delay_zero_is_coincidence() {
        let (_, base, _, r) = setup();
        let d = Delay::new("d", r, base, 0);
        assert!(d.current_formula().eval(&Step::from_events([base, r])));
        assert!(!d.current_formula().eval(&Step::from_events([base])));
    }

    #[test]
    fn periodic_selects_every_kth() {
        let (_, base, _, r) = setup();
        let mut p = Periodic::every("p", r, base, 3);
        // occurrence 0 selected, 1 and 2 not, 3 selected…
        p.fire(&Step::from_events([base, r])).expect("k=0");
        p.fire(&Step::from_events([base])).expect("k=1");
        p.fire(&Step::from_events([base])).expect("k=2");
        assert!(p.fire(&Step::from_events([base])).is_err());
        p.fire(&Step::from_events([base, r])).expect("k=3");
    }

    #[test]
    fn periodic_offset_shifts_selection() {
        let (_, base, _, r) = setup();
        let mut p = Periodic::new("p", r, base, 1, 2);
        assert!(p.fire(&Step::from_events([base, r])).is_err()); // k=0 not selected
        p.fire(&Step::from_events([base])).expect("k=0");
        p.fire(&Step::from_events([base, r])).expect("k=1 selected");
        p.fire(&Step::from_events([base])).expect("k=2");
        p.fire(&Step::from_events([base, r])).expect("k=3 selected");
    }

    #[test]
    #[should_panic(expected = "period")]
    fn periodic_zero_period_panics() {
        let (_, base, _, r) = setup();
        let _ = Periodic::every("p", r, base, 0);
    }

    #[test]
    fn sampled_on_holds_until_base() {
        let (_, trig, base, r) = setup();
        let mut s = SampledOn::new("s", r, trig, base);
        assert!(!s.current_formula().eval(&Step::from_events([base, r])));
        s.fire(&Step::from_events([trig])).expect("arm");
        s.fire(&Step::new()).expect("hold");
        assert!(s.fire(&Step::from_events([base])).is_err()); // must emit
        s.fire(&Step::from_events([base, r])).expect("emit");
        // consumed: next base tick must be silent
        assert!(!s.current_formula().eval(&Step::from_events([base, r])));
    }

    #[test]
    fn sampled_on_simultaneous_trigger_counts_for_next_tick() {
        let (_, trig, base, r) = setup();
        let mut s = SampledOn::new("s", r, trig, base);
        s.fire(&Step::from_events([trig])).expect("arm");
        s.fire(&Step::from_events([base, r, trig]))
            .expect("emit+rearm");
        // the simultaneous trigger re-armed the sampler
        s.fire(&Step::from_events([base, r])).expect("emit again");
    }

    #[test]
    fn expression_state_round_trips() {
        let (_, base, trig, r) = setup();
        let mut d = Delay::new("d", r, base, 3);
        d.fire(&Step::from_events([base])).expect("tick");
        let key = d.state_key();
        d.reset();
        d.restore(&key).expect("restore");
        assert_eq!(d.state_key(), key);

        let mut s = SampledOn::new("s", r, trig, base);
        s.fire(&Step::from_events([trig])).expect("tick");
        let key = s.state_key();
        s.reset();
        s.restore(&key).expect("restore");
        assert_eq!(s.state_key(), key);
        assert!(s.restore(&StateKey::from_values([5])).is_err());
    }

    #[test]
    fn filtered_by_follows_the_word() {
        let (_, base, _, r) = setup();
        // word: 1 0 (1 1)^ω
        let mut f = FilteredBy::new("f", r, base, vec![true, false], vec![true, true]);
        f.fire(&Step::from_events([base, r])).expect("w[0]=1");
        f.fire(&Step::from_events([base])).expect("w[1]=0");
        f.fire(&Step::from_events([base, r])).expect("w[2]=1");
        f.fire(&Step::from_events([base, r])).expect("w[3]=1");
        assert!(f.fire(&Step::from_events([base])).is_err()); // cycle repeats: must tick
    }

    #[test]
    fn filtered_by_matches_periodic_special_case() {
        let (_, base, _, r) = setup();
        let mut periodic = Periodic::every("p", r, base, 3);
        let mut filtered = FilteredBy::new("f", r, base, vec![], vec![true, false, false]);
        for k in 0..9 {
            let step = if k % 3 == 0 {
                Step::from_events([base, r])
            } else {
                Step::from_events([base])
            };
            assert_eq!(
                periodic.current_formula().eval(&step),
                filtered.current_formula().eval(&step),
                "k = {k}"
            );
            periodic.fire(&step).expect("selected");
            filtered.fire(&step).expect("selected");
        }
    }

    #[test]
    fn filtered_by_state_key_folds_into_cycle() {
        let (_, base, _, r) = setup();
        let mut f = FilteredBy::new("f", r, base, vec![false], vec![true, false]);
        f.fire(&Step::from_events([base])).expect("head");
        let after_head = f.state_key();
        f.fire(&Step::from_events([base, r])).expect("cycle 0");
        f.fire(&Step::from_events([base])).expect("cycle 1");
        // one full cycle later the folded key repeats
        assert_eq!(f.state_key(), after_head);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn filtered_by_requires_a_cycle() {
        let (_, base, _, r) = setup();
        let _ = FilteredBy::new("f", r, base, vec![true], vec![]);
    }

    #[test]
    fn periodic_state_key_is_folded() {
        let (_, base, _, r) = setup();
        let mut p = Periodic::every("p", r, base, 2);
        let k0 = p.state_key();
        p.fire(&Step::from_events([base, r])).expect("k=0");
        p.fire(&Step::from_events([base])).expect("k=1");
        // after one full period the folded key returns to the initial one
        assert_eq!(p.state_key(), k0);
    }
}
