//! # moccml-ccsl
//!
//! The *declarative definitions* of MoCCML (Sec. II-B of the DATE 2015
//! paper): a library of CCSL-inspired clock constraints. The paper
//! delegates these to the CCSL operational semantics report (reference \[15\]);
//! this crate implements the classical kernel relations and expressions
//! as stateful [`Constraint`]s over kernel events.
//!
//! Two families:
//!
//! * **Relations** restrict existing events: [`SubClock`], [`Exclusion`],
//!   [`Coincidence`], [`Precedence`] (strict/weak/bounded),
//!   [`Alternation`].
//! * **Expressions** *define* a new event from existing ones: [`Union`],
//!   [`Intersection`], [`Delay`], [`Periodic`], [`FilteredBy`],
//!   [`SampledOn`].
//!
//! Every constraint follows the kernel protocol: a per-step boolean
//! formula given the current state, a `fire` transition, and an explicit
//! state key for exhaustive exploration.
//!
//! ## Example: the paper's sub-event relation
//!
//! ```
//! use moccml_ccsl::SubClock;
//! use moccml_kernel::{Constraint, Step, Universe};
//!
//! let mut u = Universe::new();
//! let a = u.event("a");
//! let b = u.event("b");
//! let sub = SubClock::new("a sub b", a, b);
//! // e1 sub-event of e2  ⇒  boolean expression e1 ⇒ e2 (Sec. II-C)
//! assert!(sub.current_formula().eval(&Step::from_events([a, b])));
//! assert!(!sub.current_formula().eval(&Step::from_events([a])));
//! ```
//!
//! [`Constraint`]: moccml_kernel::Constraint

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expressions;
mod relations;

pub use expressions::{Delay, FilteredBy, Intersection, Periodic, SampledOn, Union};
pub use relations::{Alternation, Coincidence, Exclusion, Precedence, SubClock};
