//! Analyses over explored state spaces: deadlock witnesses, liveness of
//! events, bounded reachability — the "validation" half of the paper's
//! "simulation and analysis" promise.

use crate::explorer::StateSpace;
use moccml_kernel::{EventId, Schedule, Step};
use std::collections::VecDeque;

/// A counterexample: the schedule prefix leading from the initial state
/// to a problematic state.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The steps of the counterexample, in order.
    pub schedule: Schedule,
    /// Index of the reached state in the state space.
    pub state: usize,
}

/// Finds a *shortest* schedule leading to a deadlock state, if any —
/// the counterexample a designer asks for when exploration reports a
/// wedged allocation.
///
/// # Example
///
/// ```
/// use moccml_ccsl::Precedence;
/// use moccml_engine::{deadlock_witness, ExploreOptions, Program};
/// use moccml_kernel::{Specification, Universe};
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let mut spec = Specification::new("d", u);
/// spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
/// spec.add_constraint(Box::new(Precedence::strict("b<a", b, a)));
/// let space = Program::new(spec).explore(&ExploreOptions::default());
/// let witness = deadlock_witness(&space).expect("deadlocked spec");
/// assert_eq!(witness.schedule.len(), 0); // already dead at the start
/// ```
#[must_use]
pub fn deadlock_witness(space: &StateSpace) -> Option<Witness> {
    shortest_path_to(space, |state| space.deadlocks().contains(&state))
}

/// Finds a shortest schedule to any state satisfying `target`.
#[must_use]
pub fn shortest_path_to<F: Fn(usize) -> bool>(space: &StateSpace, target: F) -> Option<Witness> {
    let n = space.state_count();
    let mut predecessor: Vec<Option<(usize, Step)>> = vec![None; n];
    let mut visited = vec![false; n];
    let mut queue = VecDeque::from([space.initial()]);
    visited[space.initial()] = true;
    // BFS over the explored graph
    let mut found = None;
    if target(space.initial()) {
        found = Some(space.initial());
    }
    'bfs: while let Some(state) = queue.pop_front() {
        for (src, step, dst) in space.transitions() {
            if *src != state || visited[*dst] {
                continue;
            }
            visited[*dst] = true;
            predecessor[*dst] = Some((state, step.clone()));
            if target(*dst) {
                found = Some(*dst);
                break 'bfs;
            }
            queue.push_back(*dst);
        }
    }
    let end = found?;
    let mut steps = Vec::new();
    let mut cursor = end;
    while let Some((prev, step)) = predecessor[cursor].clone() {
        steps.push(step);
        cursor = prev;
    }
    steps.reverse();
    Some(Witness {
        schedule: steps.into_iter().collect(),
        state: end,
    })
}

/// Whether `event` occurs on at least one transition (it is not dead in
/// the explored fragment).
#[must_use]
pub fn is_event_fireable(space: &StateSpace, event: EventId) -> bool {
    space
        .transitions()
        .iter()
        .any(|(_, step, _)| step.contains(event))
}

/// Events that never occur on any transition of the explored fragment —
/// dead events usually reveal a mis-wired mapping or an over-constrained
/// MoCC.
///
/// Computed as a single set difference — the union of all transition
/// steps subtracted from the universe — instead of scanning every
/// transition once per event.
#[must_use]
pub fn dead_events(space: &StateSpace, universe: &moccml_kernel::Universe) -> Vec<EventId> {
    let fired = space
        .transitions()
        .iter()
        .fold(Step::new(), |acc, (_, step, _)| acc.union(step));
    let all: Step = universe.iter().collect();
    all.difference(&fired).iter().collect()
}

/// All events that are live in the explored fragment — the memoised
/// all-events variant of [`is_event_live`], answering every event in
/// one fixpoint instead of one full reachability scan per call.
///
/// An event is live iff from *every* state some state with an outgoing
/// transition firing it stays reachable. Equivalently: the event
/// belongs to `F(s)` for every state `s`, where `F(s)` is the set of
/// events occurring on transitions forward-reachable from `s`. `F` is
/// computed as one backward fixpoint over the transition graph with
/// [`Step`] bitsets, so the cost is shared across all events of
/// `universe` — callers that loop over events should use this instead
/// of [`is_event_live`] per event.
#[must_use]
pub fn live_events(space: &StateSpace, universe: &moccml_kernel::Universe) -> Vec<EventId> {
    let n = space.state_count();
    if n == 0 {
        return Vec::new();
    }
    // reverse adjacency (deduplicated predecessor lists)
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut reach: Vec<Step> = vec![Step::new(); n];
    for (src, step, dst) in space.transitions() {
        preds[*dst].push(*src);
        reach[*src] = reach[*src].union(step);
    }
    for p in &mut preds {
        p.sort_unstable();
        p.dedup();
    }
    // backward fixpoint: F(src) ⊇ F(dst) for every edge src → dst
    let mut queue: VecDeque<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(state) = queue.pop_front() {
        queued[state] = false;
        let here = reach[state].clone();
        for &p in &preds[state] {
            let merged = reach[p].union(&here);
            if merged != reach[p] {
                reach[p] = merged;
                if !queued[p] {
                    queued[p] = true;
                    queue.push_back(p);
                }
            }
        }
    }
    // live = events in the intersection of every state's F
    let everywhere = reach
        .iter()
        .skip(1)
        .fold(reach[0].clone(), |acc, f| acc.intersection(f));
    universe
        .iter()
        .filter(|e| everywhere.contains(*e))
        .collect()
}

/// Whether every state of the explored fragment can still reach a state
/// from which `event` fires (a weak liveness check; exact on fully
/// explored spaces).
///
/// One full backward-reachability scan per call — when querying several
/// events of one space, use [`live_events`] instead, which amortises
/// the scan across the whole universe.
#[must_use]
pub fn is_event_live(space: &StateSpace, event: EventId) -> bool {
    // states with an outgoing transition firing `event`
    let fire_states: Vec<usize> = space
        .transitions()
        .iter()
        .filter(|(_, step, _)| step.contains(event))
        .map(|(src, _, _)| *src)
        .collect();
    if fire_states.is_empty() {
        return false;
    }
    // backward reachability from fire_states
    let n = space.state_count();
    let mut can_reach = vec![false; n];
    let mut queue: VecDeque<usize> = fire_states.into_iter().collect();
    for &s in &queue {
        can_reach[s] = true;
    }
    while let Some(state) = queue.pop_front() {
        for (src, _, dst) in space.transitions() {
            if *dst == state && !can_reach[*src] {
                can_reach[*src] = true;
                queue.push_back(*src);
            }
        }
    }
    can_reach.iter().all(|&r| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::ExploreOptions;
    use crate::program::Program;
    use moccml_ccsl::{Alternation, Precedence};
    use moccml_kernel::{Specification, Universe};

    fn explore(spec: &Specification, options: &ExploreOptions) -> StateSpace {
        Program::compile(spec).explore(options)
    }

    fn alternating() -> (Specification, EventId, EventId) {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("x", a, b)));
        (spec, a, b)
    }

    #[test]
    fn live_cycle_has_no_witness_and_live_events() {
        let (spec, a, b) = alternating();
        let space = explore(&spec, &ExploreOptions::default());
        assert!(deadlock_witness(&space).is_none());
        assert!(is_event_live(&space, a));
        assert!(is_event_live(&space, b));
        assert!(dead_events(&space, spec.universe()).is_empty());
        assert_eq!(live_events(&space, spec.universe()), vec![a, b]);
    }

    #[test]
    fn live_events_agrees_with_per_event_scans() {
        // a wedgeable spec: some events live, some not
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("wedge", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b).with_bound(1)));
        spec.add_constraint(Box::new(Precedence::strict("c<b", c, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<c", b, c)));
        let space = explore(&spec, &ExploreOptions::default());
        let live = live_events(&space, spec.universe());
        for e in spec.universe().iter() {
            assert_eq!(
                live.contains(&e),
                is_event_live(&space, e),
                "event {e} disagrees"
            );
        }
    }

    #[test]
    fn witness_reaches_a_bounded_deadlock() {
        // a < b with bound 1, and b forbidden entirely via a second
        // constraint ⇒ after one `a` the system wedges.
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("wedge", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b).with_bound(1)));
        // b requires c first, and c requires b first: both dead
        spec.add_constraint(Box::new(Precedence::strict("c<b", c, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<c", b, c)));
        let space = explore(&spec, &ExploreOptions::default());
        let witness = deadlock_witness(&space).expect("wedges after a");
        assert_eq!(witness.schedule.len(), 1);
        assert!(witness.schedule.steps()[0].contains(a));
        assert!(space.deadlocks().contains(&witness.state));
    }

    #[test]
    fn dead_events_are_reported() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("half-dead", u);
        // b strictly precedes a, and a strictly precedes b: both dead —
        // but the space still has its initial state.
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<a", b, a)));
        let space = explore(&spec, &ExploreOptions::default());
        let dead = dead_events(&space, spec.universe());
        assert_eq!(dead.len(), 2);
        assert!(!is_event_fireable(&space, a));
        assert!(!is_event_live(&space, b));
    }

    #[test]
    fn shortest_path_targets_arbitrary_predicates() {
        let (spec, _, _) = alternating();
        let space = explore(&spec, &ExploreOptions::default());
        // reach the non-initial state of the 2-cycle
        let other = (0..space.state_count())
            .find(|&s| s != space.initial())
            .expect("two states");
        let w = shortest_path_to(&space, |s| s == other).expect("reachable");
        assert_eq!(w.schedule.len(), 1);
        assert_eq!(w.state, other);
    }
}
