//! [`Program`]: the immutable half of a compiled specification.
//!
//! PR 2's `CompiledSpec` fused two layers into one object: the
//! *compiled artifacts* of a specification (the interned
//! constrained-event list, the per-constraint lowered-formula memo) and
//! the *run state* that queries mutate (constraint states, the
//! currently selected formula per constraint). That fusion made the
//! hot path single-threaded: exploration could not fan out without
//! cloning the whole object — and cloned memos no longer share cache
//! hits.
//!
//! This module is the split's immutable side. A [`Program`] is
//! `Send + Sync` and never changes after compilation:
//!
//! * the constrained-event list is interned once;
//! * every constraint's event footprint is precomputed once;
//! * the `(constraint, local state) → lowered formula` memo lives
//!   behind interior sharding ([`FormulaMemo`]), so *all* cursors of a
//!   program — across threads — share every cache hit: a formula is
//!   lowered exactly once per reached constraint state, program-wide.
//!
//! The mutable side is [`Cursor`](crate::Cursor): cheap per-worker run
//! state created by [`Program::cursor`]. One program can drive any
//! number of concurrent cursors, which is what makes the parallel
//! state-space explorer ([`explore`](crate::explore)) possible.

use crate::cursor::Cursor;
use crate::explorer::{explore_program, ExploreOptions, StateSpace};
use moccml_kernel::{EventId, Specification, StateKey, Step, StepFormula};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, Weak};

/// Number of shards in the engine's sharded maps (the formula memo
/// here and the explorer's interned-state index). Sixteen keeps lock
/// contention negligible for any worker count
/// `std::thread::available_parallelism` realistically reports while
/// wasting no memory on small programs.
pub(crate) const SHARD_COUNT: usize = 16;

/// Shard selection shared by every sharded map in the engine: hash the
/// key, take it modulo the shard count.
pub(crate) fn shard_of<K: Hash>(key: &K, shard_count: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % shard_count
}

/// One memo shard: `(constraint index, local state) → lowered formula`.
type MemoShard = HashMap<(usize, StateKey), Arc<StepFormula>>;

/// The sharded `(constraint index, local state) → lowered formula`
/// memo. Shards are plain `Mutex<HashMap>`s: lookups are short, and a
/// cursor-local L1 cache in front of this map (see
/// [`Cursor`](crate::Cursor)) means a shard is only locked the *first*
/// time a cursor meets a `(constraint, state)` pair.
#[derive(Debug)]
pub(crate) struct FormulaMemo {
    shards: Vec<Mutex<MemoShard>>,
}

impl FormulaMemo {
    fn new() -> Self {
        FormulaMemo {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// Returns the memoised formula for `(slot, key)`, lowering it with
    /// `lower` on the program-wide first visit.
    pub(crate) fn get_or_insert(
        &self,
        slot: usize,
        key: &StateKey,
        lower: impl FnOnce() -> StepFormula,
    ) -> Arc<StepFormula> {
        let mut shard = self.shards[shard_of(&(slot, key), self.shards.len())]
            .lock()
            .expect("formula memo shard lock");
        if let Some(f) = shard.get(&(slot, key.clone())) {
            return Arc::clone(f);
        }
        let f = Arc::new(lower());
        shard.insert((slot, key.clone()), Arc::clone(&f));
        f
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("formula memo shard lock").len())
            .sum()
    }
}

/// A [`Specification`] compiled into an immutable, shareable program.
///
/// Constructed once with [`new`](Program::new) (owned) or
/// [`compile`](Program::compile) (borrowed, clones); both return
/// `Arc<Program>` because a program's whole point is to be shared —
/// every [`Cursor`](crate::Cursor) keeps a handle to its program. The
/// constraint population is frozen at compile time: that is what makes
/// the interned event list, the per-constraint footprints and the
/// sharded formula memo sound.
///
/// A program carries **no run state**. Queries that need one go through
/// a cursor ([`Program::cursor`]); [`Program::explore`] spawns its own
/// worker cursors internally.
///
/// # Example
///
/// ```
/// use moccml_ccsl::Alternation;
/// use moccml_engine::{Program, SolverOptions};
/// use moccml_kernel::{Specification, Universe};
///
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let mut spec = Specification::new("alt", u);
/// spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
///
/// let program = Program::new(spec);
/// let mut cursor = program.cursor();
/// let options = SolverOptions::default();
/// let first = cursor.acceptable_steps(&options);
/// assert_eq!(first.len(), 1); // only {a}
/// cursor.fire(&first[0]).expect("acceptable");
/// assert!(cursor.acceptable_steps(&options)[0].contains(b));
/// ```
#[derive(Debug)]
pub struct Program {
    /// The template specification, frozen in the state it had at
    /// compile time. Cursors clone it; nothing ever mutates it.
    spec: Specification,
    /// Snapshot of the template's global state — the root every cursor
    /// starts from.
    template_key: StateKey,
    /// The interned list of constrained events the solver ranges over.
    events: Vec<EventId>,
    /// Per-constraint event footprints, used by cursors to skip
    /// refreshing constraints a fired step cannot have touched.
    footprints: Vec<Step>,
    /// Per-constraint `(local state key, lowered formula)` at the
    /// template state — the starting slots of every fresh cursor.
    initial_slots: Vec<(StateKey, Arc<StepFormula>)>,
    /// The program-wide sharded formula memo.
    memo: FormulaMemo,
    /// Back-reference to the owning `Arc`, so `cursor(&self)` can hand
    /// out handles without the caller threading the `Arc` around.
    self_ref: Weak<Program>,
}

impl Program {
    /// Compiles an owned specification.
    #[must_use]
    pub fn new(spec: Specification) -> Arc<Self> {
        let events: Vec<EventId> = spec.constrained_events().iter().collect();
        let template_key = spec.state_key();
        let keys = spec.constraint_state_keys();
        let formulas = spec.lowered_formulas();
        let footprints = spec.constraint_footprints();
        let memo = FormulaMemo::new();
        let initial_slots: Vec<(StateKey, Arc<StepFormula>)> = keys
            .into_iter()
            .zip(formulas)
            .enumerate()
            .map(|(i, (key, formula))| {
                let formula = memo.get_or_insert(i, &key, || formula);
                (key, formula)
            })
            .collect();
        Arc::new_cyclic(|self_ref| Program {
            spec,
            template_key,
            events,
            footprints,
            initial_slots,
            memo,
            self_ref: self_ref.clone(),
        })
    }

    /// Compiles a borrowed specification (clones it).
    #[must_use]
    pub fn compile(spec: &Specification) -> Arc<Self> {
        Self::new(spec.clone())
    }

    /// Read access to the template specification (in its compile-time
    /// state).
    #[must_use]
    pub fn specification(&self) -> &Specification {
        &self.spec
    }

    /// The global state key of the template — the state fresh cursors
    /// start in.
    #[must_use]
    pub fn template_key(&self) -> &StateKey {
        &self.template_key
    }

    /// The interned list of constrained events the solver ranges over.
    #[must_use]
    pub fn constrained_events(&self) -> &[EventId] {
        &self.events
    }

    /// Total number of `(constraint, local state)` formulas currently
    /// memoised program-wide — a cache-size observability hook for
    /// tests and tuning. Grows as cursors visit fresh constraint
    /// states; never shrinks.
    #[must_use]
    pub fn cached_formula_count(&self) -> usize {
        self.memo.len()
    }

    /// A fresh cursor positioned at the template state. Cursors are
    /// cheap (they clone the constraint vector, not the memo) and
    /// independent: one program can drive any number of them, from any
    /// number of threads.
    #[must_use]
    pub fn cursor(&self) -> Cursor {
        let program = self
            .self_ref
            .upgrade()
            .expect("a Program is only reachable through its Arc");
        Cursor::new(program)
    }

    /// Explores the reachable scheduling state-space from the template
    /// state. See the [`explorer`](crate::StateSpace) docs for the
    /// graph's semantics and the determinism guarantee;
    /// [`ExploreOptions::workers`] selects the parallel frontier width.
    #[must_use]
    pub fn explore(&self, options: &ExploreOptions) -> StateSpace {
        explore_program(self, self.template_key.clone(), options, &mut ())
    }

    /// Explores like [`explore`](Program::explore) while streaming every
    /// absorbed transition, deadlock and level boundary to `visitor` —
    /// the on-the-fly hook `moccml-verify` checks properties through.
    /// The visitor runs in the canonical absorption order and can stop
    /// the BFS at a level boundary; both the callback sequence and the
    /// resulting (possibly early-stopped) [`StateSpace`] are identical
    /// for every [`ExploreOptions::workers`] count.
    #[must_use]
    pub fn explore_with(
        &self,
        options: &ExploreOptions,
        visitor: &mut dyn crate::ExploreVisitor,
    ) -> StateSpace {
        explore_program(self, self.template_key.clone(), options, visitor)
    }

    /// Expands a batch of states on a fresh cursor — the one-shot form
    /// of [`Cursor::expand_batch`](crate::Cursor::expand_batch), for
    /// callers that do not keep a cursor around. The explorer's workers
    /// use the cursor form directly (one persistent cursor per thread,
    /// sharing this program's formula memo).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`](moccml_kernel::KernelError) if a key
    /// does not match the constraint population.
    pub fn expand_batch<'k>(
        &self,
        keys: impl IntoIterator<Item = &'k moccml_kernel::StateKey>,
        solver: &crate::solver::SolverOptions,
    ) -> Result<Vec<crate::cursor::StateExpansion>, moccml_kernel::KernelError> {
        self.cursor().expand_batch(keys, solver)
    }

    /// The per-constraint event footprints, parallel to
    /// `specification().constraints()`: constraint `i` reacts to a step
    /// iff the step intersects `footprints()[i]`.
    #[must_use]
    pub fn footprints(&self) -> &[Step] {
        &self.footprints
    }

    /// Indices of the constraints in the cone of influence of `seeds`:
    /// the least fixpoint of "a constraint whose footprint intersects
    /// the seed events (or the footprint of a constraint already in the
    /// cone) is in the cone". Sorted ascending.
    ///
    /// Because every constraint stutters through steps disjoint from
    /// its footprint (the kernel-wide contract documented on
    /// [`Constraint`](moccml_kernel::Constraint)), constraints outside
    /// the cone can neither block nor be blocked by anything the seeded
    /// events do — they are independent of the seeds' behaviour.
    #[must_use]
    pub fn cone_of_influence(&self, seeds: &[EventId]) -> Vec<usize> {
        let mut events = Step::from_events(seeds.iter().copied());
        let mut in_cone = vec![false; self.footprints.len()];
        loop {
            let mut changed = false;
            for (i, fp) in self.footprints.iter().enumerate() {
                if !in_cone[i] && !fp.is_disjoint_from(&events) && !fp.is_empty() {
                    in_cone[i] = true;
                    events = events.union(fp);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        in_cone
            .iter()
            .enumerate()
            .filter_map(|(i, &keep)| keep.then_some(i))
            .collect()
    }

    /// Compiles the cone-of-influence slice of this program for
    /// `seeds`: a program over the **same universe** containing only
    /// the constraints returned by
    /// [`cone_of_influence`](Program::cone_of_influence), each cloned
    /// in its compile-time state.
    ///
    /// When the cone covers every constraint the program itself is
    /// returned (no recompilation). Schedules and steps transfer
    /// between the slice and the full program unchanged, because event
    /// ids are shared. Whether a *verdict* transfers is the caller's
    /// proof obligation — `moccml-verify` applies the slice only to
    /// stutter-invariant safety properties (see
    /// `CheckOptions::with_slice` there).
    #[must_use]
    pub fn slice(&self, seeds: &[EventId]) -> Arc<Program> {
        let cone = self.cone_of_influence(seeds);
        if cone.len() == self.spec.constraint_count() {
            return self
                .self_ref
                .upgrade()
                .expect("a Program is only reachable through its Arc");
        }
        let mut sliced = Specification::new(self.spec.name(), self.spec.universe().clone());
        for i in cone {
            sliced.add_constraint(self.spec.constraints()[i].clone());
        }
        Program::new(sliced)
    }

    /// The starting slots of a fresh cursor.
    pub(crate) fn initial_slots(&self) -> &[(StateKey, Arc<StepFormula>)] {
        &self.initial_slots
    }

    /// The program-wide formula memo.
    pub(crate) fn memo(&self) -> &FormulaMemo {
        &self.memo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolverOptions;
    use moccml_ccsl::Alternation;
    use moccml_kernel::Universe;

    fn alternating() -> (Specification, EventId, EventId) {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        (spec, a, b)
    }

    #[test]
    fn program_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Program>();
    }

    #[test]
    fn cursors_share_one_memo() {
        let (spec, a, b) = alternating();
        let program = Program::new(spec);
        assert_eq!(program.cached_formula_count(), 1);
        let mut c1 = program.cursor();
        c1.fire(&Step::from_events([a])).expect("fires");
        // c1 reached the alternation's second state: one new entry
        assert_eq!(program.cached_formula_count(), 2);
        // a second cursor re-visiting both states adds nothing
        let mut c2 = program.cursor();
        c2.fire(&Step::from_events([a])).expect("fires");
        c2.fire(&Step::from_events([b])).expect("fires");
        assert_eq!(program.cached_formula_count(), 2);
    }

    #[test]
    fn cursors_are_independent() {
        let (spec, a, _) = alternating();
        let program = Program::new(spec);
        let options = SolverOptions::default();
        let mut c1 = program.cursor();
        let c2 = program.cursor();
        let initial = c2.acceptable_steps(&options);
        c1.fire(&Step::from_events([a])).expect("fires");
        assert_ne!(c1.acceptable_steps(&options), initial);
        assert_eq!(c2.acceptable_steps(&options), initial);
    }

    #[test]
    fn template_key_is_the_compile_time_state() {
        let (mut spec, a, _) = alternating();
        spec.fire(&Step::from_events([a])).expect("fires");
        let program = Program::compile(&spec);
        assert_eq!(program.template_key(), &spec.state_key());
        // fresh cursors start there, not at the reset state
        assert_eq!(program.cursor().state_key(), spec.state_key());
    }

    #[test]
    fn memo_is_shared_across_threads() {
        let (spec, a, b) = alternating();
        let program = Program::new(spec);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let program = &program;
                s.spawn(move || {
                    let mut c = program.cursor();
                    for _ in 0..3 {
                        c.fire(&Step::from_events([a])).expect("fires");
                        c.fire(&Step::from_events([b])).expect("fires");
                    }
                });
            }
        });
        // two automaton states, no matter how many workers visited them
        assert_eq!(program.cached_formula_count(), 2);
    }

    /// Two independent alternations over disjoint event pairs, so the
    /// cone of either pair excludes the other constraint.
    fn decoupled() -> (Specification, [EventId; 4]) {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let (x, y) = (u.event("x"), u.event("y"));
        let mut spec = Specification::new("decoupled", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        spec.add_constraint(Box::new(Alternation::new("x~y", x, y)));
        (spec, [a, b, x, y])
    }

    #[test]
    fn cone_of_influence_closes_over_shared_footprints() {
        let (spec, [a, b, x, _]) = decoupled();
        let program = Program::new(spec);
        assert_eq!(program.cone_of_influence(&[a]), vec![0]);
        assert_eq!(program.cone_of_influence(&[b]), vec![0]);
        assert_eq!(program.cone_of_influence(&[x]), vec![1]);
        assert_eq!(program.cone_of_influence(&[a, x]), vec![0, 1]);
        assert_eq!(program.cone_of_influence(&[]), Vec::<usize>::new());
    }

    #[test]
    fn cone_of_influence_chains_through_overlaps() {
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("chain", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        spec.add_constraint(Box::new(Alternation::new("b~c", b, c)));
        let program = Program::new(spec);
        // a pulls in a~b, whose footprint contains b, which pulls b~c
        assert_eq!(program.cone_of_influence(&[a]), vec![0, 1]);
    }

    #[test]
    fn slice_shares_the_program_when_the_cone_is_total() {
        let (spec, [a, _, x, _]) = decoupled();
        let program = Program::new(spec);
        let total = program.slice(&[a, x]);
        assert!(Arc::ptr_eq(&program, &total));
    }

    #[test]
    fn slice_keeps_the_universe_and_drops_foreign_constraints() {
        let (spec, [a, b, x, _]) = decoupled();
        let program = Program::new(spec);
        let sliced = program.slice(&[a]);
        assert_eq!(sliced.specification().constraint_count(), 1);
        assert_eq!(sliced.specification().constraints()[0].name(), "a~b");
        assert_eq!(
            sliced.specification().universe(),
            program.specification().universe()
        );
        // steps transfer unchanged: the sliced program accepts the
        // same a/b behaviour and ignores x entirely
        let mut cursor = sliced.cursor();
        cursor.fire(&Step::from_events([a])).expect("fires");
        cursor.fire(&Step::from_events([b])).expect("fires");
        assert!(!sliced.constrained_events().contains(&x));
    }

    #[test]
    fn slice_snapshots_the_compile_time_constraint_state() {
        let (mut spec, a, _) = alternating();
        spec.fire(&Step::from_events([a])).expect("fires");
        let program = Program::compile(&spec);
        let sliced = program.slice(&[a]);
        // cone is total here, but via a fresh compile the state is kept
        assert_eq!(sliced.template_key(), program.template_key());
    }
}
