//! Exhaustive exploration of the scheduling state-space — breadth
//! first, optionally across worker threads, always deterministic.
//!
//! The paper's PAM study obtains "by exploration quantitative results on
//! the scheduling state-space". This module implements that analysis: a
//! breadth-first construction of the graph whose nodes are global
//! constraint states ([`StateKey`](moccml_kernel::StateKey) snapshots)
//! and whose edges are acceptable non-empty steps.
//!
//! # Architecture: work-stealing expansion, canonical replay
//!
//! The explorer splits into two halves that run concurrently and meet
//! only through interned state ids:
//!
//! * **Asynchronous expansion.** Worker threads pull state ids from
//!   per-worker deques (popping their own front, stealing half of a
//!   neighbour's back when empty — plain `Mutex<VecDeque>` deques, no
//!   dependencies). Each worker restores the state on its own
//!   [`Cursor`](crate::Cursor) via the batched
//!   [`Cursor::expand`](crate::Cursor::expand) API, enumerates its
//!   acceptable steps, interns every successor into a sharded
//!   fingerprint [`Interner`] (the struct-of-arrays state arena), and
//!   streams the resulting record — `(deadlock?, [(step, successor
//!   id)])` — back over a channel. There are **no level barriers**:
//!   a worker that finishes a state immediately pulls the next one,
//!   even if it belongs to a deeper BFS level.
//!
//! * **Canonical replay.** The calling thread reconstructs the breadth
//!   first graph *exactly as the serial explorer would*, by consuming
//!   the records in frontier order: states are renumbered in BFS
//!   discovery order, the [`max_states`](ExploreOptions::max_states)
//!   bound, transition order, deadlock order, and every
//!   [`ExploreVisitor`] callback are applied in that canonical order.
//!   Worker-assigned ids are race-dependent, but they are only join
//!   keys — the replay output is a pure function of the record
//!   *contents*, which are pure functions of the state keys. The
//!   resulting [`StateSpace`] is therefore **byte-identical for every
//!   worker count**, including under truncation and mid-run
//!   [`VisitControl::Stop`]. Replay also *feeds* the workers: a state
//!   is enqueued for expansion the moment it is canonically accepted,
//!   so the pipeline stays about one BFS level deep and workers never
//!   idle at a barrier.
//!
//! `workers == 1` skips the threads entirely: the replay loop expands
//! states inline, on demand, and is the exact serial algorithm.
//!
//! Early stop (a visitor returning [`VisitControl::Stop`], or a bound)
//! flips a shared flag that workers check between states, bounding
//! speculative work to the in-flight pipeline. This is what
//! `moccml-verify` and `moccml serve` cancellation ride on: the stop
//! decision is taken at a deterministic checkpoint in the replay, and
//! the async machinery merely drains.
//!
//! Memory-wise the arena keeps exactly one copy of every interned key
//! (sharded `Vec<StateKey>` indexed by `u32` ids) and hands the keys to
//! the final [`StateSpace`] by move; the old `StateKey → usize` hash
//! index is replaced by a fingerprint index (`u64 → Vec<u32>`) and a
//! compact u32 CSR adjacency, cutting per-state overhead by an integer
//! factor on large runs. All of this uses only `std` — scoped threads,
//! `mpsc`, `Mutex`/`Condvar` and atomics.

use crate::cursor::Cursor;
use crate::program::Program;
use crate::solver::SolverOptions;
use moccml_kernel::{StateKey, Step};
use moccml_obs::{Counter, Gauge, Recorder};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Options bounding and configuring the exploration.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Stop after interning this many states (the graph is then marked
    /// [`truncated`](StateSpace::truncated)). Counters in constraints
    /// such as unbounded precedences make the space infinite; the bound
    /// keeps exploration total. Also used to pre-size the interner
    /// (capped, so `usize::MAX` is safe).
    pub max_states: usize,
    /// Ignore states deeper than this BFS depth (`usize::MAX` = no
    /// bound).
    pub max_depth: usize,
    /// Solver configuration used to enumerate each state's outgoing
    /// steps, so the pruned/naive ablation covers exploration too.
    /// `include_empty` is ignored: stuttering self-loops exist at every
    /// state and would only add noise.
    pub solver: SolverOptions,
    /// Number of worker threads expanding states. Defaults to
    /// [`std::thread::available_parallelism`]; `1` runs the identical
    /// algorithm inline with no threads. The resulting [`StateSpace`]
    /// is byte-identical for every value.
    pub workers: usize,
    /// Optional live throughput monitor. Updated by the replay thread
    /// and the expansion pipeline; never influences the exploration
    /// result or any [`ExploreVisitor`] callback (its readings are
    /// timing-dependent, the graph is not).
    pub monitor: Option<ExploreMonitor>,
    /// Opt-in observability recorder (disabled by default). When
    /// enabled, the explorer opens an `explore` span and maintains
    /// per-worker expansion/steal/batch counters, interner occupancy
    /// gauges, the replay-cache peak depth and the cursor memo hit
    /// rate — all through lock-free [`Counter`]/[`Gauge`] handles
    /// registered on the cold path. Like the monitor, the recorder is
    /// observationally inert: nothing it collects feeds back into the
    /// exploration, so the [`StateSpace`], every visitor callback and
    /// the truncation behaviour are byte-identical with recording on
    /// or off (pinned by the `obs_properties` suite).
    pub recorder: Recorder,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_states: 100_000,
            max_depth: usize::MAX,
            solver: SolverOptions::default(),
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            monitor: None,
            recorder: Recorder::disabled(),
        }
    }
}

impl ExploreOptions {
    /// Bounds the number of states (builder style).
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Bounds the BFS depth (builder style).
    #[must_use]
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Sets the solver configuration (builder style).
    #[must_use]
    pub fn with_solver(mut self, solver: SolverOptions) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the number of worker threads (builder style). `1` selects
    /// the serial in-line path; any value yields the same
    /// [`StateSpace`], byte for byte.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Attaches a throughput monitor (builder style). The same monitor
    /// can be polled from another thread while the exploration runs.
    #[must_use]
    pub fn with_monitor(mut self, monitor: &ExploreMonitor) -> Self {
        self.monitor = Some(monitor.clone());
        self
    }

    /// Attaches an observability recorder (builder style). Pass an
    /// enabled [`Recorder`] to collect spans and counters; the default
    /// disabled recorder makes every instrumentation point a no-op.
    #[must_use]
    pub fn with_recorder(mut self, recorder: &Recorder) -> Self {
        self.recorder = recorder.clone();
        self
    }
}

/// Flow control returned by [`ExploreVisitor::on_level_end`]: keep
/// exploring, or stop at this level boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisitControl {
    /// Continue with the next BFS level.
    Continue,
    /// Stop the exploration at this level boundary. The returned
    /// [`StateSpace`] contains everything absorbed so far and is marked
    /// [`truncated`](StateSpace::truncated) iff unexplored frontier
    /// states remain.
    Stop,
}

/// Streaming hook into the explorer's canonical replay — the
/// on-the-fly half of `explore`.
///
/// Callbacks fire *inside the replay*, in the canonical absorption
/// order (source frontier order, then step rank), which is identical
/// for every [`ExploreOptions::workers`] count. A visitor therefore
/// observes the exact same call sequence — and can stop at the exact
/// same point — whether the expansion ran on one thread or eight. This
/// is what lets `moccml-verify` evaluate property monitors during BFS
/// and terminate deterministically at the first violating level
/// instead of materialising the full space.
///
/// All methods have no-op defaults; `()` implements the trait as the
/// always-continue visitor.
pub trait ExploreVisitor {
    /// A transition `(source, step, target)` was just recorded while
    /// absorbing level `depth`. Target states of fresh keys are
    /// announced here with their newly interned index.
    fn on_transition(&mut self, source: usize, step: &Step, target: usize, depth: usize) {
        let _ = (source, step, target, depth);
    }

    /// Frontier state `state` (expanded at level `depth`) has no
    /// outgoing non-empty step.
    fn on_deadlock(&mut self, state: usize, depth: usize) {
        let _ = (state, depth);
    }

    /// The [`max_states`](ExploreOptions::max_states) bound just
    /// dropped a freshly discovered successor (and its transition)
    /// while absorbing level `depth`. From this point on the visitor
    /// sees an *incomplete* transition relation: "nothing reachable"
    /// conclusions drawn from the absorbed graph are no longer sound,
    /// while every positively observed path remains real.
    fn on_states_dropped(&mut self, depth: usize) {
        let _ = depth;
    }

    /// Level `depth` was fully absorbed; `state_count` states are
    /// interned so far. Returning [`VisitControl::Stop`] ends the
    /// exploration at this boundary — deterministically, because the
    /// replay's level sequence is worker-count-independent. (Workers
    /// may already be expanding deeper states speculatively; their
    /// results are discarded.)
    fn on_level_end(&mut self, depth: usize, state_count: usize) -> VisitControl {
        let _ = (depth, state_count);
        VisitControl::Continue
    }

    /// Periodic mid-absorption checkpoint: called once every
    /// [`PROGRESS_INTERVAL`] absorbed transitions with the running
    /// totals (`states` interned, `transitions` absorbed, current BFS
    /// `depth`). Large levels can absorb hundreds of thousands of
    /// transitions between two boundaries; this hook is what lets a
    /// long-running exploration report progress — and be cancelled —
    /// *inside* a level instead of only at its end.
    ///
    /// Returning [`VisitControl::Stop`] aborts the exploration
    /// immediately; the returned [`StateSpace`] contains everything
    /// absorbed so far and is always marked
    /// [`truncated`](StateSpace::truncated) (a mid-level stop leaves
    /// the transition relation incomplete). Call points are a pure
    /// function of the absorbed-transition count, so — like every
    /// other callback — the hook sequence is identical for every
    /// [`ExploreOptions::workers`] count. This checkpoint is the
    /// cancellation epoch: stopping here flips the shared stop flag
    /// that in-flight workers observe between states.
    fn on_progress(&mut self, states: usize, transitions: usize, depth: usize) -> VisitControl {
        let _ = (states, transitions, depth);
        VisitControl::Continue
    }
}

/// Number of absorbed transitions between two
/// [`ExploreVisitor::on_progress`] checkpoints.
pub const PROGRESS_INTERVAL: usize = 1024;

/// The always-continue visitor: plain exploration.
impl ExploreVisitor for () {}

/// Live throughput counters of a running (or finished) exploration.
///
/// Cloning is cheap (an [`Arc`]); attach one copy via
/// [`ExploreOptions::with_monitor`] and poll [`snapshot`] from any
/// thread. Readings are best-effort and timing-dependent — they exist
/// for `--stats` output and `serve` progress events, and deliberately
/// never feed back into the (deterministic) exploration itself.
///
/// [`snapshot`]: ExploreMonitor::snapshot
#[derive(Clone, Default)]
pub struct ExploreMonitor {
    inner: Arc<MonitorInner>,
}

#[derive(Default)]
struct MonitorInner {
    states: AtomicUsize,
    transitions: AtomicUsize,
    depth: AtomicUsize,
    pending: AtomicUsize,
    peak_frontier: AtomicUsize,
    interned: AtomicUsize,
    buckets: AtomicUsize,
    finished: AtomicBool,
    elapsed_frozen: AtomicBool,
    elapsed_ns: AtomicU64,
    start: Mutex<Option<Instant>>,
}

impl ExploreMonitor {
    /// A fresh monitor, all counters zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current counters. During a run `elapsed` is the wall-clock time
    /// since the exploration started; once the replay absorbs its
    /// terminal record the clock freezes at that duration, so finished
    /// readings (and [`ExploreMetrics::states_per_sec`]) never include
    /// worker-pool teardown or arena moves.
    #[must_use]
    pub fn snapshot(&self) -> ExploreMetrics {
        let i = &self.inner;
        let finished = i.finished.load(Ordering::Acquire);
        let elapsed = if i.elapsed_frozen.load(Ordering::Acquire) {
            Duration::from_nanos(i.elapsed_ns.load(Ordering::Acquire))
        } else {
            i.start
                .lock()
                .expect("monitor clock lock")
                .map(|s| s.elapsed())
                .unwrap_or_default()
        };
        ExploreMetrics {
            states: i.states.load(Ordering::Relaxed),
            transitions: i.transitions.load(Ordering::Relaxed),
            depth: i.depth.load(Ordering::Relaxed),
            pending: i.pending.load(Ordering::Relaxed),
            peak_frontier: i.peak_frontier.load(Ordering::Relaxed),
            interned: i.interned.load(Ordering::Relaxed),
            interner_buckets: i.buckets.load(Ordering::Relaxed),
            elapsed,
            finished,
        }
    }

    /// (Re-)arms the monitor at exploration start.
    fn begin(&self) {
        let i = &self.inner;
        i.states.store(0, Ordering::Relaxed);
        i.transitions.store(0, Ordering::Relaxed);
        i.depth.store(0, Ordering::Relaxed);
        i.pending.store(0, Ordering::Relaxed);
        i.peak_frontier.store(0, Ordering::Relaxed);
        i.interned.store(0, Ordering::Relaxed);
        i.buckets.store(0, Ordering::Relaxed);
        i.elapsed_ns.store(0, Ordering::Relaxed);
        i.elapsed_frozen.store(false, Ordering::Release);
        i.finished.store(false, Ordering::Release);
        *self.inner.start.lock().expect("monitor clock lock") = Some(Instant::now());
    }

    /// Replay-side counter update (canonical totals — deterministic).
    fn update(&self, states: usize, transitions: usize, depth: usize) {
        let i = &self.inner;
        i.states.store(states, Ordering::Relaxed);
        i.transitions.store(transitions, Ordering::Relaxed);
        i.depth.store(depth, Ordering::Relaxed);
    }

    /// Widest BFS level absorbed so far (deterministic).
    fn note_frontier(&self, width: usize) {
        self.inner.peak_frontier.fetch_max(width, Ordering::Relaxed);
    }

    /// Interner occupancy counters (includes speculative interns).
    fn update_interner(&self, interned: usize, buckets: usize) {
        self.inner.interned.store(interned, Ordering::Relaxed);
        self.inner.buckets.store(buckets, Ordering::Relaxed);
    }

    /// Dispatched-but-not-yet-absorbed state count (pipeline depth).
    fn set_pending(&self, pending: usize) {
        self.inner.pending.store(pending, Ordering::Relaxed);
    }

    /// Freezes the clock — idempotent, first caller wins. The replay
    /// calls this at its terminal record so throughput figures exclude
    /// pool teardown; `finish` calls it again as a fallback for
    /// monitors that never reached a replay (e.g. a panic unwound).
    fn freeze_clock(&self) {
        let i = &self.inner;
        if i.elapsed_frozen.load(Ordering::Acquire) {
            return;
        }
        let elapsed = i
            .start
            .lock()
            .expect("monitor clock lock")
            .map(|s| s.elapsed())
            .unwrap_or_default();
        i.elapsed_ns.store(
            elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Release,
        );
        i.elapsed_frozen.store(true, Ordering::Release);
    }

    /// Marks the exploration complete (freezing the clock if the
    /// replay has not already).
    fn finish(&self) {
        self.freeze_clock();
        self.inner.finished.store(true, Ordering::Release);
    }
}

impl fmt::Debug for ExploreMonitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExploreMonitor")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

/// One reading of an [`ExploreMonitor`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreMetrics {
    /// Canonically interned states (what [`StateSpace::state_count`]
    /// will report).
    pub states: usize,
    /// Absorbed transitions.
    pub transitions: usize,
    /// BFS level currently being absorbed.
    pub depth: usize,
    /// States dispatched for expansion but not yet absorbed — the
    /// depth of the async pipeline (always 0 once finished).
    pub pending: usize,
    /// Widest BFS level absorbed so far — the peak frontier size.
    pub peak_frontier: usize,
    /// Keys in the interner arena. Can exceed `states` while workers
    /// speculate past a bound or an early stop.
    pub interned: usize,
    /// Occupied fingerprint buckets in the interner.
    pub interner_buckets: usize,
    /// Wall-clock time since start (frozen at completion).
    pub elapsed: Duration,
    /// Whether the exploration has completed.
    pub finished: bool,
}

impl ExploreMetrics {
    /// Canonical states absorbed per second of wall-clock time.
    #[must_use]
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.states as f64 / secs
        }
    }

    /// Mean keys per occupied fingerprint bucket — `1.0` means the
    /// interner saw no fingerprint collisions.
    #[must_use]
    pub fn interner_occupancy(&self) -> f64 {
        if self.interner_buckets == 0 {
            0.0
        } else {
            self.interned as f64 / self.interner_buckets as f64
        }
    }
}

/// Mixes one 64-bit lane into a running fingerprint (splitmix64
/// finalizer — fast, dependency-free, and much cheaper than `SipHash`
/// for the short integer vectors state keys are made of).
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// 64-bit fingerprint of a state key. Shard selection and bucket keys
/// both derive from this single pass over the values.
#[inline]
fn fingerprint(key: &StateKey) -> u64 {
    let mut h = mix64(0x9E37_79B9_7F4A_7C15 ^ key.values().len() as u64);
    for &v in key.values() {
        h = mix64(h ^ v as u64)
            .rotate_left(23)
            .wrapping_add(0xA24B_AED4_963E_E407);
    }
    mix64(h)
}

/// Number of interner shards (power of two; selected by the low
/// fingerprint bits).
const INTERNER_SHARDS: usize = 64;

/// Cap on up-front capacity reservation derived from `max_states`, so
/// `max_states = usize::MAX` does not try to reserve the address space.
const RESERVE_CAP: usize = 1 << 20;

/// One interner shard: fingerprint → collision bucket of arena slots,
/// plus the slot → key arena itself.
struct InternerShard {
    buckets: HashMap<u64, Vec<u32>>,
    keys: Vec<StateKey>,
}

/// Sharded fingerprint interner and state arena.
///
/// `intern` assigns each distinct [`StateKey`] a stable `u32` id
/// (*arena slot × shard count + shard*, so ids stay dense while shards
/// fill evenly). The lock taken is the shard's — selected by the key's
/// fingerprint — so concurrent interns of different states contend only
/// on fingerprint-colliding buckets, never on a global structure. Ids
/// are race-dependent across runs and therefore **internal**: the
/// canonical replay renumbers them into BFS discovery order.
struct Interner {
    shards: Vec<Mutex<InternerShard>>,
    count: AtomicUsize,
    buckets: AtomicUsize,
}

impl Interner {
    /// An interner pre-sized for roughly `expected` keys (capped).
    fn with_capacity(expected: usize) -> Self {
        let per_shard = expected.min(RESERVE_CAP) / INTERNER_SHARDS + 1;
        Interner {
            shards: (0..INTERNER_SHARDS)
                .map(|_| {
                    Mutex::new(InternerShard {
                        buckets: HashMap::with_capacity(per_shard),
                        keys: Vec::with_capacity(per_shard),
                    })
                })
                .collect(),
            count: AtomicUsize::new(0),
            buckets: AtomicUsize::new(0),
        }
    }

    /// Interns `key`, returning its id and whether it was fresh.
    fn intern(&self, key: &StateKey) -> (u32, bool) {
        let fp = fingerprint(key);
        let s = fp as usize & (INTERNER_SHARDS - 1);
        let mut guard = self.shards[s].lock().expect("interner shard lock");
        let shard = &mut *guard;
        let bucket = shard.buckets.entry(fp).or_default();
        for &slot in bucket.iter() {
            if shard.keys[slot as usize] == *key {
                return (compose_id(s, slot), false);
            }
        }
        if bucket.is_empty() {
            self.buckets.fetch_add(1, Ordering::Relaxed);
        }
        let slot = u32::try_from(shard.keys.len()).expect("interner shard within u32 slots");
        assert!(
            (slot as u64) < u64::from(u32::MAX) / INTERNER_SHARDS as u64,
            "state arena exceeds u32 id space"
        );
        shard.keys.push(key.clone());
        bucket.push(slot);
        self.count.fetch_add(1, Ordering::Relaxed);
        (compose_id(s, slot), true)
    }

    /// The key behind id `id` (cloned out of the arena).
    fn key(&self, id: u32) -> StateKey {
        let (s, slot) = decompose_id(id);
        self.shards[s].lock().expect("interner shard lock").keys[slot as usize].clone()
    }

    /// Total interned keys.
    fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Occupied fingerprint buckets.
    fn bucket_count(&self) -> usize {
        self.buckets.load(Ordering::Relaxed)
    }

    /// Consumes the arena, moving out the keys behind `ids` in order.
    /// Keys not listed (speculative interns past a bound) are dropped.
    fn into_states(self, ids: &[u32]) -> Vec<StateKey> {
        let mut shards: Vec<Vec<StateKey>> = self
            .shards
            .into_iter()
            .map(|m| m.into_inner().expect("interner shard lock").keys)
            .collect();
        ids.iter()
            .map(|&id| {
                let (s, slot) = decompose_id(id);
                std::mem::replace(&mut shards[s][slot as usize], StateKey::new())
            })
            .collect()
    }
}

#[inline]
fn compose_id(shard: usize, slot: u32) -> u32 {
    slot * INTERNER_SHARDS as u32 + shard as u32
}

#[inline]
fn decompose_id(id: u32) -> (usize, u32) {
    (
        id as usize & (INTERNER_SHARDS - 1),
        id / INTERNER_SHARDS as u32,
    )
}

/// The reachable scheduling state-space of a specification.
///
/// Equality compares the full graph — interned states, transitions,
/// initial state, deadlocks and the truncation flag — which is exactly
/// the explorer's determinism contract: `explore` with any
/// [`workers`](ExploreOptions::workers) count yields `==` spaces.
///
/// Internally the graph is compact: one copy of each key (moved out of
/// the exploration arena), a fingerprint index (`u64 → Vec<u32>`)
/// instead of a second `StateKey → usize` hash map, and a u32 CSR
/// adjacency so [`outgoing`](StateSpace::outgoing) is O(out-degree)
/// rather than a scan of every transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSpace {
    states: Vec<StateKey>,
    fingerprints: HashMap<u64, Vec<u32>>,
    transitions: Vec<(usize, Step, usize)>,
    out_offsets: Vec<u32>,
    out_edges: Vec<u32>,
    initial: usize,
    deadlocks: Vec<usize>,
    truncated: bool,
}

impl StateSpace {
    /// Assembles the compact graph from replay output.
    fn build(
        states: Vec<StateKey>,
        transitions: Vec<(usize, Step, usize)>,
        deadlocks: Vec<usize>,
        truncated: bool,
    ) -> Self {
        assert!(
            u32::try_from(transitions.len()).is_ok(),
            "transition count exceeds u32 adjacency space"
        );
        let mut fingerprints: HashMap<u64, Vec<u32>> = HashMap::with_capacity(states.len());
        for (i, key) in states.iter().enumerate() {
            fingerprints
                .entry(fingerprint(key))
                .or_default()
                .push(i as u32);
        }
        let mut out_offsets = vec![0u32; states.len() + 1];
        for (s, _, _) in &transitions {
            out_offsets[s + 1] += 1;
        }
        for i in 1..out_offsets.len() {
            out_offsets[i] += out_offsets[i - 1];
        }
        let mut cursor = out_offsets.clone();
        let mut out_edges = vec![0u32; transitions.len()];
        for (e, (s, _, _)) in transitions.iter().enumerate() {
            out_edges[cursor[*s] as usize] = e as u32;
            cursor[*s] += 1;
        }
        StateSpace {
            states,
            fingerprints,
            transitions,
            out_offsets,
            out_edges,
            initial: 0,
            deadlocks,
            truncated,
        }
    }

    /// Number of distinct reachable states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions (edges labelled by steps).
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Index of the initial state.
    #[must_use]
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// The interned state keys, indexable by state index.
    #[must_use]
    pub fn states(&self) -> &[StateKey] {
        &self.states
    }

    /// All `(source, step, target)` transitions.
    #[must_use]
    pub fn transitions(&self) -> &[(usize, Step, usize)] {
        &self.transitions
    }

    /// Indices of deadlock states (no outgoing non-empty step).
    #[must_use]
    pub fn deadlocks(&self) -> &[usize] {
        &self.deadlocks
    }

    /// Whether the exploration hit a bound before exhausting the space.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Index of `key` if it was reached.
    #[must_use]
    pub fn state_index(&self, key: &StateKey) -> Option<usize> {
        self.fingerprints
            .get(&fingerprint(key))?
            .iter()
            .find(|&&i| self.states[i as usize] == *key)
            .map(|&i| i as usize)
    }

    /// Outgoing transitions of state `state`, in absorption order.
    pub fn outgoing(&self, state: usize) -> impl Iterator<Item = &(usize, Step, usize)> {
        let lo = self.out_offsets[state] as usize;
        let hi = self.out_offsets[state + 1] as usize;
        self.out_edges[lo..hi]
            .iter()
            .map(move |&e| &self.transitions[e as usize])
    }

    /// Counts the schedules (paths from the initial state) of exactly
    /// `len` steps, saturating at `u128::MAX`.
    ///
    /// This is the "number of acceptable schedules" metric of Sec. II-C
    /// restricted to non-stuttering steps; without constraints it would
    /// be `(2^n − 1)^len`.
    #[must_use]
    pub fn count_schedules(&self, len: usize) -> u128 {
        let mut counts = vec![0u128; self.states.len()];
        counts[self.initial] = 1;
        for _ in 0..len {
            let mut next = vec![0u128; self.states.len()];
            for (s, _, t) in &self.transitions {
                next[*t] = next[*t].saturating_add(counts[*s]);
            }
            counts = next;
        }
        counts.iter().fold(0u128, |acc, c| acc.saturating_add(*c))
    }

    /// Aggregate metrics — the rows of the PAM experiment table.
    #[must_use]
    pub fn stats(&self) -> StateSpaceStats {
        let max_step_parallelism = self
            .transitions
            .iter()
            .map(|(_, step, _)| step.len())
            .max()
            .unwrap_or(0);
        let mean_branching = if self.states.is_empty() {
            0.0
        } else {
            self.transitions.len() as f64 / self.states.len() as f64
        };
        StateSpaceStats {
            states: self.states.len(),
            transitions: self.transitions.len(),
            deadlocks: self.deadlocks.len(),
            max_step_parallelism,
            mean_branching,
            truncated: self.truncated,
        }
    }
}

/// Aggregate state-space metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSpaceStats {
    /// Reachable states.
    pub states: usize,
    /// Transitions.
    pub transitions: usize,
    /// Deadlock states.
    pub deadlocks: usize,
    /// Largest step cardinality on any transition — the attainable
    /// parallelism of the configuration.
    pub max_step_parallelism: usize,
    /// Mean outgoing transitions per state.
    pub mean_branching: f64,
    /// Whether bounds truncated the exploration.
    pub truncated: bool,
}

impl fmt::Display for StateSpaceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "states={} transitions={} deadlocks={} max_parallelism={} mean_branching={:.2}{}",
            self.states,
            self.transitions,
            self.deadlocks,
            self.max_step_parallelism,
            self.mean_branching,
            if self.truncated { " (truncated)" } else { "" }
        )
    }
}

/// Explores the reachable scheduling state-space of `program` from its
/// template (compile-time) state.
///
/// Convenience free function over [`Program::explore`] /
/// [`Cursor::explore`](crate::Cursor::explore) for one-shot analyses:
///
/// ```
/// use moccml_ccsl::Alternation;
/// use moccml_engine::{explore, ExploreOptions, Program};
/// use moccml_kernel::{Specification, Universe};
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let mut spec = Specification::new("alt", u);
/// spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
/// let space = explore(&Program::new(spec), &ExploreOptions::default());
/// // the alternation automaton has exactly two states
/// assert_eq!(space.state_count(), 2);
/// assert_eq!(space.transition_count(), 2);
/// assert!(space.deadlocks().is_empty());
/// ```
#[must_use]
pub fn explore(program: &Program, options: &ExploreOptions) -> StateSpace {
    program.explore(options)
}

/// One expanded state, keyed by interner id: deadlock flag plus the
/// acceptable steps with interned successor ids, in canonical
/// ([`Step`] `Ord`) order. Pure function of the state key — which is
/// what makes the replay deterministic.
struct Record {
    deadlock: bool,
    succs: Vec<(Step, u32)>,
}

/// Expands the state behind `key` on `cursor` and interns every
/// successor.
fn expand_record(
    cursor: &mut Cursor,
    key: &StateKey,
    solver: &SolverOptions,
    interner: &Interner,
) -> Record {
    let expansion = cursor
        .expand(key, solver)
        .expect("interned keys restore cleanly");
    let deadlock = expansion.is_deadlock();
    let succs = expansion
        .into_steps()
        .into_iter()
        .map(|(step, succ)| (step, interner.intern(&succ).0))
        .collect();
    Record { deadlock, succs }
}

/// How many states a worker takes from its own deque per lock
/// acquisition.
const WORKER_BATCH: usize = 16;

/// The work-stealing frontier: one `Mutex<VecDeque>` per worker plus a
/// condvar for sleepers. The replay thread pushes round-robin; workers
/// pop their own front in FIFO order (≈ BFS order, keeping the
/// pipeline shallow) and steal half of a neighbour's back when empty.
struct WorkQueues {
    queues: Vec<Mutex<VecDeque<u32>>>,
    idle: Mutex<()>,
    available: Condvar,
    stop: AtomicBool,
    panicked: AtomicBool,
    next: AtomicUsize,
}

impl WorkQueues {
    fn new(workers: usize) -> Self {
        WorkQueues {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            next: AtomicUsize::new(0),
        }
    }

    /// Enqueues one state id (round-robin across worker deques).
    fn push(&self, id: u32) {
        let w = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        self.queues[w]
            .lock()
            .expect("work queue lock")
            .push_back(id);
        // take the idle lock so the notify cannot race a worker that
        // just found every queue empty and is about to wait
        let _idle = self.idle.lock().expect("idle lock");
        self.available.notify_one();
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Tells every worker to drain out (end of exploration, early
    /// stop, or a sibling's panic).
    fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        let _idle = self.idle.lock().expect("idle lock");
        self.available.notify_all();
    }

    /// Blocking pop for worker `me`: own front batch, else steal half
    /// of a neighbour's back, else sleep. `None` means stop. `obs`
    /// tallies batch sizes and steal attempts/hits (no-ops when the
    /// recorder is disabled).
    fn pop(&self, me: usize, obs: &WorkerObs) -> Option<Vec<u32>> {
        loop {
            if self.stopped() {
                return None;
            }
            {
                let mut q = self.queues[me].lock().expect("work queue lock");
                if !q.is_empty() {
                    let take = q.len().min(WORKER_BATCH);
                    obs.batches.incr();
                    obs.batch_states.add(take as u64);
                    return Some(q.drain(..take).collect());
                }
            }
            let n = self.queues.len();
            obs.steal_attempts.incr();
            for off in 1..n {
                let mut q = self.queues[(me + off) % n].lock().expect("work queue lock");
                if !q.is_empty() {
                    let take = q.len().div_ceil(2);
                    let at = q.len() - take;
                    let stolen = q.split_off(at);
                    obs.steal_hits.incr();
                    obs.batches.incr();
                    obs.batch_states.add(stolen.len() as u64);
                    return Some(stolen.into());
                }
            }
            let idle = self.idle.lock().expect("idle lock");
            // a push may have landed between the scans and this lock;
            // the timeout bounds the one remaining (benign) race
            let _ = self
                .available
                .wait_timeout(idle, Duration::from_millis(10))
                .expect("idle lock");
        }
    }
}

/// Sets the shared panic flag if its worker unwinds, so the replay
/// thread fails loudly instead of waiting on a record that will never
/// arrive.
struct PanicFlag<'a> {
    queues: &'a WorkQueues,
}

impl Drop for PanicFlag<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.queues.panicked.store(true, Ordering::Release);
            self.queues.request_stop();
        }
    }
}

/// Per-worker observability counters, registered once per worker on
/// the cold path. Every handle is a no-op when the recorder is
/// disabled, so the hot loop pays a `None` check at most.
struct WorkerObs {
    expansions: Counter,
    batches: Counter,
    batch_states: Counter,
    steal_attempts: Counter,
    steal_hits: Counter,
    memo_hits: Counter,
    memo_misses: Counter,
}

impl WorkerObs {
    fn new(recorder: &Recorder, me: usize) -> WorkerObs {
        WorkerObs {
            expansions: recorder.counter(&format!("explore_expansions_w{me}")),
            batches: recorder.counter(&format!("explore_batches_w{me}")),
            batch_states: recorder.counter(&format!("explore_batch_states_w{me}")),
            steal_attempts: recorder.counter(&format!("explore_steal_attempts_w{me}")),
            steal_hits: recorder.counter(&format!("explore_steal_hits_w{me}")),
            // memo tallies aggregate across workers: one shared atomic
            memo_hits: recorder.counter("cursor_memo_hits"),
            memo_misses: recorder.counter("cursor_memo_misses"),
        }
    }

    /// Flushes a cursor's plain memo tallies into the shared counters
    /// (called once, when the worker exits).
    fn flush_memo(&self, cursor: &Cursor) {
        self.memo_hits.add(cursor.memo_hits());
        self.memo_misses.add(cursor.memo_misses());
    }
}

/// One expansion worker: pull ids, expand, intern successors, stream
/// records back. Exits on stop or when the replay hangs up.
fn worker_loop(
    me: usize,
    program: &Program,
    solver: &SolverOptions,
    interner: &Interner,
    queues: &WorkQueues,
    recorder: &Recorder,
    tx: mpsc::Sender<(u32, Record)>,
) {
    let _flag = PanicFlag { queues };
    let mut cursor = program.cursor();
    let obs = WorkerObs::new(recorder, me);
    'work: while let Some(batch) = queues.pop(me, &obs) {
        for id in batch {
            if queues.stopped() {
                break 'work;
            }
            let key = interner.key(id);
            let record = expand_record(&mut cursor, &key, solver, interner);
            obs.expansions.incr();
            if tx.send((id, record)).is_err() {
                break 'work;
            }
        }
    }
    obs.flush_memo(&cursor);
}

/// Where the replay gets its expansions from: inline (serial) or the
/// worker pipeline. `dispatch` announces a canonically accepted state;
/// `fetch` blocks until that state's record is available. The replay
/// fetches in exactly the order it dispatched.
trait ExpansionSource {
    fn dispatch(&mut self, id: u32);
    fn fetch(&mut self, id: u32) -> Record;
}

/// Serial path: expand on demand, on the caller's thread.
struct InlineSource<'a> {
    cursor: Cursor,
    solver: &'a SolverOptions,
    interner: &'a Interner,
    expansions: Counter,
}

impl ExpansionSource for InlineSource<'_> {
    fn dispatch(&mut self, _id: u32) {}

    fn fetch(&mut self, id: u32) -> Record {
        let key = self.interner.key(id);
        self.expansions.incr();
        expand_record(&mut self.cursor, &key, self.solver, self.interner)
    }
}

/// Parallel path: dispatch feeds the work-stealing deques, fetch
/// drains the record channel into a reorder cache until the wanted id
/// arrives.
struct PoolSource<'a> {
    rx: mpsc::Receiver<(u32, Record)>,
    queues: &'a WorkQueues,
    cache: HashMap<u32, Record>,
    pending: usize,
    monitor: Option<ExploreMonitor>,
    cache_peak: Gauge,
}

impl ExpansionSource for PoolSource<'_> {
    fn dispatch(&mut self, id: u32) {
        self.pending += 1;
        if let Some(m) = &self.monitor {
            m.set_pending(self.pending);
        }
        self.queues.push(id);
    }

    fn fetch(&mut self, id: u32) -> Record {
        self.pending -= 1;
        if let Some(m) = &self.monitor {
            m.set_pending(self.pending);
        }
        if let Some(record) = self.cache.remove(&id) {
            return record;
        }
        loop {
            match self.rx.recv_timeout(Duration::from_millis(50)) {
                Ok((got, record)) => {
                    if got == id {
                        return record;
                    }
                    self.cache.insert(got, record);
                    self.cache_peak.raise(self.cache.len() as u64);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    assert!(
                        !self.queues.panicked.load(Ordering::Acquire),
                        "explorer worker died mid-exploration (see its panic above)"
                    );
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    panic!("explorer workers exited before the replay finished")
                }
            }
        }
    }
}

/// What the replay produces; `ids` are interner ids in canonical (BFS
/// discovery) order, everything else is already canonical.
struct ReplayOutcome {
    ids: Vec<u32>,
    transitions: Vec<(usize, Step, usize)>,
    deadlocks: Vec<usize>,
    truncated: bool,
}

/// The canonical BFS replay — the single definition of the explorer's
/// observable behaviour, shared verbatim by the serial and parallel
/// paths.
///
/// Consumes expansion records in frontier order, renumbering interner
/// ids into BFS discovery order and applying the `max_states` bound,
/// transition recording, deadlock recording, and every visitor
/// callback in that canonical order. Because each record is a pure
/// function of its state key, the outcome is independent of how (and
/// on how many threads) the records were produced.
fn run_replay(
    root_id: u32,
    options: &ExploreOptions,
    interner: &Interner,
    visitor: &mut dyn ExploreVisitor,
    source: &mut dyn ExpansionSource,
) -> ReplayOutcome {
    let monitor = options.monitor.as_ref();
    let mut ids: Vec<u32> = vec![root_id];
    // interner id → canonical index (dense: ids interleave shards)
    let mut canon: Vec<u32> = Vec::new();
    set_canon(&mut canon, root_id, 0);
    let mut transitions: Vec<(usize, Step, usize)> = Vec::new();
    let mut deadlocks: Vec<usize> = Vec::new();
    let mut truncated = false;

    if options.max_depth > 0 {
        source.dispatch(root_id);
    }
    let mut frontier: Vec<usize> = vec![0];
    let mut depth = 0usize;
    'levels: while !frontier.is_empty() {
        if depth >= options.max_depth {
            truncated = true;
            break;
        }
        if let Some(m) = monitor {
            m.note_frontier(frontier.len());
            m.update_interner(interner.len(), interner.bucket_count());
        }
        let mut next = Vec::new();
        for &source_state in &frontier {
            let record = source.fetch(ids[source_state]);
            if record.deadlock {
                deadlocks.push(source_state);
                visitor.on_deadlock(source_state, depth);
                continue;
            }
            for (step, succ_id) in record.succs {
                let target = match get_canon(&canon, succ_id) {
                    Some(t) => t,
                    None => {
                        if ids.len() >= options.max_states {
                            truncated = true;
                            visitor.on_states_dropped(depth);
                            continue;
                        }
                        let t = ids.len();
                        ids.push(succ_id);
                        set_canon(&mut canon, succ_id, t as u32);
                        next.push(t);
                        // feed the pipeline the moment the state is
                        // canonically accepted — no level barrier
                        if depth + 1 < options.max_depth {
                            source.dispatch(succ_id);
                        }
                        t
                    }
                };
                visitor.on_transition(source_state, &step, target, depth);
                transitions.push((source_state, step, target));
                if let Some(m) = monitor {
                    m.update(ids.len(), transitions.len(), depth);
                }
                // mid-level checkpoint: call points depend only on the
                // absorbed-transition count, never on who expanded what
                if transitions.len().is_multiple_of(PROGRESS_INTERVAL)
                    && visitor.on_progress(ids.len(), transitions.len(), depth)
                        == VisitControl::Stop
                {
                    truncated = true;
                    break 'levels;
                }
            }
        }
        let control = visitor.on_level_end(depth, ids.len());
        frontier = next;
        depth += 1;
        if control == VisitControl::Stop {
            if !frontier.is_empty() {
                truncated = true;
            }
            break;
        }
    }

    deadlocks.sort_unstable();
    deadlocks.dedup();
    if let Some(m) = monitor {
        m.update(ids.len(), transitions.len(), depth);
        m.update_interner(interner.len(), interner.bucket_count());
        m.set_pending(0);
        // the terminal record: freeze the throughput clock here, so
        // states/sec never divides by pool teardown or arena moves
        m.freeze_clock();
    }
    ReplayOutcome {
        ids,
        transitions,
        deadlocks,
        truncated,
    }
}

fn set_canon(canon: &mut Vec<u32>, id: u32, value: u32) {
    let at = id as usize;
    if canon.len() <= at {
        canon.resize(at + 1, u32::MAX);
    }
    canon[at] = value;
}

fn get_canon(canon: &[u32], id: u32) -> Option<usize> {
    canon
        .get(id as usize)
        .copied()
        .filter(|&v| v != u32::MAX)
        .map(|v| v as usize)
}

/// BFS over `program` from `root`, serial or parallel per
/// `options.workers`, reporting every absorption to `visitor`.
pub(crate) fn explore_program(
    program: &Program,
    root: StateKey,
    options: &ExploreOptions,
    visitor: &mut dyn ExploreVisitor,
) -> StateSpace {
    // the empty step is a self-loop at every state: never enumerate it
    let solver = options.solver.clone().with_empty(false);
    let workers = options.workers.max(1);
    let interner = Interner::with_capacity(options.max_states);
    let (root_id, _) = interner.intern(&root);
    if let Some(m) = &options.monitor {
        m.begin();
        m.update_interner(interner.len(), interner.bucket_count());
    }

    let recorder = &options.recorder;
    let explore_span = recorder.span("explore");

    let outcome = if workers == 1 {
        let mut source = InlineSource {
            cursor: program.cursor(),
            solver: &solver,
            interner: &interner,
            expansions: recorder.counter("explore_expansions_w0"),
        };
        let outcome = run_replay(root_id, options, &interner, visitor, &mut source);
        recorder
            .counter("cursor_memo_hits")
            .add(source.cursor.memo_hits());
        recorder
            .counter("cursor_memo_misses")
            .add(source.cursor.memo_misses());
        outcome
    } else {
        let queues = WorkQueues::new(workers);
        let (tx, rx) = mpsc::channel();
        std::thread::scope(|scope| {
            for me in 0..workers {
                let tx = tx.clone();
                let (solver, interner, queues) = (&solver, &interner, &queues);
                scope.spawn(move || {
                    worker_loop(me, program, solver, interner, queues, recorder, tx)
                });
            }
            // workers hold the only senders: a fully disconnected
            // channel means they are all gone
            drop(tx);
            let mut source = PoolSource {
                rx,
                queues: &queues,
                cache: HashMap::new(),
                pending: 0,
                monitor: options.monitor.clone(),
                cache_peak: recorder.gauge("explore_replay_cache_peak"),
            };
            let outcome = run_replay(root_id, options, &interner, visitor, &mut source);
            queues.request_stop();
            outcome
        })
    };

    if recorder.is_enabled() {
        recorder.gauge("explore_workers").set(workers as u64);
        recorder
            .gauge("explore_states")
            .set(outcome.ids.len() as u64);
        recorder
            .gauge("explore_transitions")
            .set(outcome.transitions.len() as u64);
        recorder
            .gauge("explore_interner_keys")
            .set(interner.len() as u64);
        recorder
            .gauge("explore_interner_buckets")
            .set(interner.bucket_count() as u64);
    }
    drop(explore_span);
    let states = interner.into_states(&outcome.ids);
    if let Some(m) = &options.monitor {
        m.finish();
    }
    StateSpace::build(
        states,
        outcome.transitions,
        outcome.deadlocks,
        outcome.truncated,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_ccsl::{Alternation, Exclusion, Precedence, SubClock};
    use moccml_kernel::{Specification, Universe};

    fn explore(spec: &Specification, options: &ExploreOptions) -> StateSpace {
        Program::compile(spec).explore(options)
    }

    #[test]
    fn alternation_space_is_two_cycle() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 2);
        assert_eq!(space.transition_count(), 2);
        assert!(!space.truncated());
        assert_eq!(space.stats().max_step_parallelism, 1);
        // exactly one schedule of each length
        assert_eq!(space.count_schedules(5), 1);
    }

    #[test]
    fn stateless_constraints_yield_single_state() {
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("excl", u);
        spec.add_constraint(Box::new(Exclusion::new("x", [a, b, c])));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 1);
        assert_eq!(space.transition_count(), 3); // {a},{b},{c} self-loops
        assert_eq!(space.count_schedules(2), 9);
    }

    #[test]
    fn deadlocked_spec_reports_deadlock() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("dead", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<a", b, a)));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 1);
        assert_eq!(space.deadlocks(), &[0]);
        assert_eq!(space.count_schedules(1), 0);
    }

    #[test]
    fn unbounded_precedence_truncates_at_max_states() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("unbounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let space = explore(&spec, &ExploreOptions::default().with_max_states(10));
        assert!(space.truncated());
        assert_eq!(space.state_count(), 10);
    }

    #[test]
    fn bounded_precedence_space_is_finite() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("bounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b).with_bound(3)));
        let space = explore(&spec, &ExploreOptions::default());
        assert!(!space.truncated());
        assert_eq!(space.state_count(), 4); // δ ∈ {0,1,2,3}
    }

    #[test]
    fn depth_bound_truncates() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("unbounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let space = explore(&spec, &ExploreOptions::default().with_max_depth(3));
        assert!(space.truncated());
        assert!(space.state_count() <= 4);
    }

    #[test]
    fn outgoing_and_lookup() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.outgoing(space.initial()).count(), 1);
        let key = &space.states()[space.initial()];
        assert_eq!(space.state_index(key), Some(space.initial()));
        // a key that was never reached misses the fingerprint index
        let unseen = StateKey::from_values([i64::MIN, i64::MAX, 42]);
        assert_eq!(space.state_index(&unseen), None);
    }

    #[test]
    fn subclock_space_counts_match_formula() {
        // E2 cross-check: a ⊆ b over two events has 2 acceptable
        // non-empty steps at every instant ⇒ 2^k schedules of length k.
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("sub", u);
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 1);
        assert_eq!(space.count_schedules(3), 8);
    }

    #[test]
    fn naive_solver_explores_the_same_space() {
        // the B3 ablation now covers exploration: pruned and naive
        // enumeration must build identical graphs
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("mix", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<c", b, c).with_bound(2)));
        let pruned = explore(&spec, &ExploreOptions::default());
        let naive = explore(
            &spec,
            &ExploreOptions::default().with_solver(SolverOptions::naive()),
        );
        assert_eq!(pruned, naive);
    }

    #[test]
    fn include_empty_is_ignored_by_exploration() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let space = explore(
            &spec,
            &ExploreOptions::default().with_solver(SolverOptions::default().with_empty(true)),
        );
        assert_eq!(space.transition_count(), 2, "no stuttering self-loops");
        assert!(space.deadlocks().is_empty());
    }

    #[test]
    fn worker_counts_build_equal_spaces() {
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("mix", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<c", b, c).with_bound(3)));
        let serial = explore(&spec, &ExploreOptions::default().with_workers(1));
        for workers in [2, 3, 8] {
            let parallel = explore(&spec, &ExploreOptions::default().with_workers(workers));
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn threaded_path_agrees_on_wide_frontiers() {
        // three independent bounded precedences: a 5×5×5 product space
        // (125 states) with BFS levels wide enough that multi-worker
        // runs genuinely pipeline expansions across threads
        let mut u = Universe::new();
        let pairs: Vec<_> = (0..3)
            .map(|i| (u.event(&format!("a{i}")), u.event(&format!("b{i}"))))
            .collect();
        let mut spec = Specification::new("grid", u);
        for (i, (a, b)) in pairs.into_iter().enumerate() {
            spec.add_constraint(Box::new(
                Precedence::strict(&format!("p{i}"), a, b).with_bound(4),
            ));
        }
        let serial = explore(&spec, &ExploreOptions::default().with_workers(1));
        assert_eq!(serial.state_count(), 125);
        for workers in [2, 4] {
            let parallel = explore(&spec, &ExploreOptions::default().with_workers(workers));
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn deep_narrow_chain_agrees_across_workers() {
        // a single unbounded precedence discovers exactly one fresh
        // state per level: the worst case for the async pipeline
        // (pure dispatch → expand → fetch ping-pong, nothing to steal)
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("chain", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let options = ExploreOptions::default().with_max_states(500);
        let serial = explore(&spec, &options.clone().with_workers(1));
        assert_eq!(serial.state_count(), 500);
        for workers in [2, 4] {
            let parallel = explore(&spec, &options.clone().with_workers(workers));
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn worker_counts_agree_under_truncation() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("unbounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let options = ExploreOptions::default().with_max_states(7);
        let serial = explore(&spec, &options.clone().with_workers(1));
        assert!(serial.truncated());
        for workers in [2, 5] {
            let parallel = explore(&spec, &options.clone().with_workers(workers));
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn recorder_collects_counters_without_perturbing_the_space() {
        let mut u = Universe::new();
        let pairs: Vec<_> = (0..3)
            .map(|i| (u.event(&format!("a{i}")), u.event(&format!("b{i}"))))
            .collect();
        let mut spec = Specification::new("grid", u);
        for (i, (a, b)) in pairs.into_iter().enumerate() {
            spec.add_constraint(Box::new(
                Precedence::strict(&format!("p{i}"), a, b).with_bound(4),
            ));
        }
        let plain = explore(&spec, &ExploreOptions::default().with_workers(4));
        let rec = moccml_obs::Recorder::new();
        let recorded = explore(
            &spec,
            &ExploreOptions::default()
                .with_workers(4)
                .with_recorder(&rec),
        );
        assert_eq!(plain, recorded, "recording is observationally inert");
        let snap = rec.snapshot();
        // every canonically accepted state is expanded exactly once
        assert_eq!(
            snap.counter_sum("explore_expansions_w"),
            recorded.state_count() as u64
        );
        assert_eq!(snap.gauge("explore_states"), Some(125));
        assert_eq!(snap.gauge("explore_workers"), Some(4));
        assert_eq!(
            snap.counter_sum("explore_batch_states_w"),
            snap.counter_sum("explore_expansions_w"),
            "batches deliver each state once"
        );
        assert!(
            snap.counter_sum("cursor_memo_hits") + snap.counter_sum("cursor_memo_misses") > 0,
            "stateful constraints exercise the memo"
        );
        let spans = snap.spans;
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "explore");
        assert!(spans[0].dur_us > 0 || spans[0].start_us == 0);
    }

    #[test]
    fn serial_recorder_counts_inline_expansions() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let rec = moccml_obs::Recorder::new();
        let space = explore(
            &spec,
            &ExploreOptions::default()
                .with_workers(1)
                .with_recorder(&rec),
        );
        let snap = rec.snapshot();
        assert_eq!(
            snap.counter("explore_expansions_w0"),
            Some(space.state_count() as u64)
        );
        assert!(snap.counter("cursor_memo_hits").is_some());
    }

    #[test]
    fn monitor_elapsed_freezes_at_the_terminal_record() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("unbounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let monitor = ExploreMonitor::new();
        let options = ExploreOptions::default()
            .with_max_states(50)
            .with_workers(2)
            .with_monitor(&monitor);
        let _ = explore(&spec, &options);
        let first = monitor.snapshot();
        assert!(first.finished);
        std::thread::sleep(Duration::from_millis(5));
        let second = monitor.snapshot();
        assert_eq!(
            first.elapsed, second.elapsed,
            "finished elapsed is frozen, not live"
        );
        assert_eq!(first.states, 50);
    }

    #[test]
    fn explore_starts_from_the_cursor_state() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let program = Program::new(spec);
        let mut cursor = program.cursor();
        cursor
            .fire(&moccml_kernel::Step::from_events([a]))
            .expect("fires");
        let space = cursor.explore(&ExploreOptions::default());
        // same two-cycle, but rooted at the post-`a` state
        assert_eq!(space.state_count(), 2);
        assert_eq!(space.states()[space.initial()], cursor.state_key());
        // the next step from the root fires b
        let (_, step, _) = space.outgoing(space.initial()).next().expect("one edge");
        assert!(step.contains(b));
    }

    /// One recorded `on_transition` callback: source, step, target,
    /// depth.
    type SeenTransition = (usize, Step, usize, usize);

    /// Records every callback; stops after absorbing `stop_after` levels.
    struct Recorder {
        transitions: Vec<SeenTransition>,
        deadlocks: Vec<(usize, usize)>,
        levels: Vec<(usize, usize)>,
        stop_after: usize,
    }

    impl Recorder {
        fn new(stop_after: usize) -> Self {
            Recorder {
                transitions: Vec::new(),
                deadlocks: Vec::new(),
                levels: Vec::new(),
                stop_after,
            }
        }
    }

    impl ExploreVisitor for Recorder {
        fn on_transition(&mut self, source: usize, step: &Step, target: usize, depth: usize) {
            self.transitions.push((source, step.clone(), target, depth));
        }
        fn on_deadlock(&mut self, state: usize, depth: usize) {
            self.deadlocks.push((state, depth));
        }
        fn on_level_end(&mut self, depth: usize, state_count: usize) -> VisitControl {
            self.levels.push((depth, state_count));
            if self.levels.len() >= self.stop_after {
                VisitControl::Stop
            } else {
                VisitControl::Continue
            }
        }
    }

    #[test]
    fn visitor_sees_the_whole_space_in_recorded_order() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let program = Program::new(spec);
        let mut recorder = Recorder::new(usize::MAX);
        let space = program.explore_with(&ExploreOptions::default(), &mut recorder);
        let seen: Vec<(usize, Step, usize)> = recorder
            .transitions
            .iter()
            .map(|(s, st, t, _)| (*s, st.clone(), *t))
            .collect();
        assert_eq!(seen, space.transitions().to_vec());
        assert!(recorder.deadlocks.is_empty());
        // level boundaries: depths strictly increasing, counts monotone
        assert!(recorder.levels.windows(2).all(|w| w[0].0 + 1 == w[1].0));
        assert_eq!(recorder.levels.last().unwrap().1, space.state_count());
    }

    #[test]
    fn visitor_stop_truncates_deterministically() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("unbounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let program = Program::new(spec);
        let mut first: Option<(StateSpace, Vec<SeenTransition>)> = None;
        for workers in [1, 2, 8] {
            let mut recorder = Recorder::new(3);
            let space = program.explore_with(
                &ExploreOptions::default().with_workers(workers),
                &mut recorder,
            );
            assert!(space.truncated(), "stopped with frontier remaining");
            assert_eq!(recorder.levels.len(), 3);
            match &first {
                None => first = Some((space, recorder.transitions)),
                Some((s0, t0)) => {
                    assert_eq!(s0, &space, "workers={workers}");
                    assert_eq!(t0, &recorder.transitions, "workers={workers}");
                }
            }
        }
    }

    /// Counts `on_progress` checkpoints; stops after `stop_after`.
    struct ProgressProbe {
        calls: Vec<(usize, usize, usize)>,
        stop_after: usize,
    }

    impl ExploreVisitor for ProgressProbe {
        fn on_progress(&mut self, states: usize, transitions: usize, depth: usize) -> VisitControl {
            self.calls.push((states, transitions, depth));
            if self.calls.len() >= self.stop_after {
                VisitControl::Stop
            } else {
                VisitControl::Continue
            }
        }
    }

    /// A spec whose level widths grow without bound: three unbounded
    /// precedences produce a 3-D grid with ever-wider BFS levels.
    fn wide_grid() -> std::sync::Arc<Program> {
        let mut u = Universe::new();
        let pairs: Vec<_> = (0..3)
            .map(|i| (u.event(&format!("a{i}")), u.event(&format!("b{i}"))))
            .collect();
        let mut spec = Specification::new("wide", u);
        for (i, (a, b)) in pairs.into_iter().enumerate() {
            spec.add_constraint(Box::new(Precedence::strict(&format!("p{i}"), a, b)));
        }
        Program::new(spec)
    }

    #[test]
    fn progress_fires_every_interval_and_stop_aborts_mid_level() {
        let program = wide_grid();
        let mut probe = ProgressProbe {
            calls: Vec::new(),
            stop_after: 2,
        };
        let options = ExploreOptions::default().with_max_states(50_000);
        let space = program.explore_with(&options, &mut probe);
        assert_eq!(probe.calls.len(), 2, "stopped at the second checkpoint");
        for (i, (states, transitions, _)) in probe.calls.iter().enumerate() {
            assert_eq!(*transitions, (i + 1) * PROGRESS_INTERVAL);
            assert!(*states > 0);
        }
        assert!(space.truncated(), "a mid-level stop truncates");
        assert_eq!(space.transition_count(), 2 * PROGRESS_INTERVAL);
    }

    #[test]
    fn progress_checkpoints_are_worker_count_independent() {
        let program = wide_grid();
        type Checkpoints = Vec<(usize, usize, usize)>;
        let options = ExploreOptions::default().with_max_states(3_000);
        let mut first: Option<(Checkpoints, StateSpace)> = None;
        for workers in [1, 2, 8] {
            let mut probe = ProgressProbe {
                calls: Vec::new(),
                stop_after: 3,
            };
            let space = program.explore_with(&options.clone().with_workers(workers), &mut probe);
            match &first {
                None => first = Some((probe.calls, space)),
                Some((calls, s0)) => {
                    assert_eq!(calls, &probe.calls, "workers={workers}");
                    assert_eq!(s0, &space, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn default_progress_hook_is_a_noop() {
        // the alternation space is tiny: no checkpoint ever fires, and
        // the default visitor keeps exploring to completion
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let space = explore(&spec, &ExploreOptions::default());
        assert!(!space.truncated());
    }

    #[test]
    fn visitor_reports_deadlocks() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("dead", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<a", b, a)));
        let mut recorder = Recorder::new(usize::MAX);
        let _ = Program::new(spec).explore_with(&ExploreOptions::default(), &mut recorder);
        assert_eq!(recorder.deadlocks, vec![(0, 0)]);
    }

    #[test]
    fn stats_display_is_informative() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let stats = explore(&spec, &ExploreOptions::default()).stats();
        let text = stats.to_string();
        assert!(text.contains("states=2"));
        assert!(text.contains("transitions=2"));
    }

    #[test]
    fn interner_dedups_and_interleaves_shards() {
        let interner = Interner::with_capacity(64);
        let keys: Vec<StateKey> = (0..200)
            .map(|i| StateKey::from_values([i, i * 31 + 7, -i]))
            .collect();
        let mut ids = Vec::new();
        for key in &keys {
            let (id, fresh) = interner.intern(key);
            assert!(fresh, "first intern is fresh");
            ids.push(id);
        }
        for (key, &id) in keys.iter().zip(&ids) {
            let (again, fresh) = interner.intern(key);
            assert!(!fresh, "re-intern is a hit");
            assert_eq!(again, id, "ids are stable");
            assert_eq!(&interner.key(id), key, "arena round-trips the key");
        }
        assert_eq!(interner.len(), keys.len());
        assert!(interner.bucket_count() > 0);
        // dense-ish ids: interleaving keeps the max id close to the count
        let max = ids.iter().copied().max().unwrap() as usize;
        assert!(max < keys.len() * INTERNER_SHARDS);
        // ids decompose and recompose losslessly
        for &id in &ids {
            let (s, slot) = decompose_id(id);
            assert_eq!(compose_id(s, slot), id);
        }
    }

    #[test]
    fn fingerprint_is_stable_and_value_sensitive() {
        let a = StateKey::from_values([1, 2, 3]);
        let b = StateKey::from_values([1, 2, 3]);
        let c = StateKey::from_values([3, 2, 1]);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
        assert_ne!(
            fingerprint(&StateKey::from_values([0])),
            fingerprint(&StateKey::from_values([0, 0]))
        );
    }

    #[test]
    fn outgoing_adjacency_matches_transition_scan() {
        let program = wide_grid();
        let space = program.explore(&ExploreOptions::default().with_max_states(500));
        for state in 0..space.state_count() {
            let via_csr: Vec<_> = space.outgoing(state).collect();
            let via_scan: Vec<_> = space
                .transitions()
                .iter()
                .filter(|(s, _, _)| *s == state)
                .collect();
            assert_eq!(via_csr, via_scan, "state {state}");
        }
    }

    #[test]
    fn monitor_reports_counters_and_throughput() {
        let program = wide_grid();
        let monitor = ExploreMonitor::new();
        let options = ExploreOptions::default()
            .with_max_states(2_000)
            .with_workers(2)
            .with_monitor(&monitor);
        let space = program.explore(&options);
        let metrics = monitor.snapshot();
        assert!(metrics.finished);
        assert_eq!(metrics.states, space.state_count());
        assert_eq!(metrics.transitions, space.transition_count());
        assert_eq!(metrics.pending, 0, "pipeline drained");
        assert!(metrics.peak_frontier >= 1);
        assert!(
            metrics.interned >= metrics.states,
            "arena holds every state"
        );
        assert!(metrics.interner_occupancy() >= 1.0);
        assert!(metrics.states_per_sec() > 0.0);
        // the monitor is reusable: a second run re-arms it
        let space2 = program.explore(&options);
        assert_eq!(space, space2);
        assert!(monitor.snapshot().finished);
    }

    #[test]
    fn monitor_never_perturbs_the_space() {
        let program = wide_grid();
        let monitor = ExploreMonitor::new();
        let options = ExploreOptions::default().with_max_states(1_500);
        let bare = program.explore(&options);
        let watched = program.explore(&options.clone().with_monitor(&monitor));
        assert_eq!(bare, watched);
    }
}
