//! Exhaustive exploration of the scheduling state-space.
//!
//! The paper's PAM study obtains "by exploration quantitative results on
//! the scheduling state-space". This module implements that analysis: a
//! breadth-first construction of the graph whose nodes are global
//! constraint states ([`StateKey`](moccml_kernel::StateKey) snapshots)
//! and whose edges are acceptable non-empty steps.
//!
//! Exploration runs on the compiled path
//! ([`CompiledSpec::explore`](crate::CompiledSpec::explore) /
//! [`Engine::explore`](crate::Engine::explore)): every `restore` of an
//! already visited constraint state hits the per-constraint formula
//! memo, so BFS does no formula lowering after a constraint's local
//! states have been seen once.

use crate::compiled::CompiledSpec;
use crate::solver::SolverOptions;
use moccml_kernel::{Specification, StateKey, Step};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Options bounding and configuring the exploration.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Stop after interning this many states (the graph is then marked
    /// [`truncated`](StateSpace::truncated)). Counters in constraints
    /// such as unbounded precedences make the space infinite; the bound
    /// keeps exploration total.
    pub max_states: usize,
    /// Ignore states deeper than this BFS depth (`usize::MAX` = no
    /// bound).
    pub max_depth: usize,
    /// Solver configuration used to enumerate each state's outgoing
    /// steps, so the pruned/naive ablation covers exploration too.
    /// `include_empty` is ignored: stuttering self-loops exist at every
    /// state and would only add noise.
    pub solver: SolverOptions,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_states: 100_000,
            max_depth: usize::MAX,
            solver: SolverOptions::default(),
        }
    }
}

impl ExploreOptions {
    /// Bounds the number of states (builder style).
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Bounds the BFS depth (builder style).
    #[must_use]
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Sets the solver configuration (builder style).
    #[must_use]
    pub fn with_solver(mut self, solver: SolverOptions) -> Self {
        self.solver = solver;
        self
    }
}

/// The reachable scheduling state-space of a specification.
#[derive(Debug, Clone)]
pub struct StateSpace {
    states: Vec<StateKey>,
    index: HashMap<StateKey, usize>,
    transitions: Vec<(usize, Step, usize)>,
    initial: usize,
    deadlocks: Vec<usize>,
    truncated: bool,
}

impl StateSpace {
    /// Number of distinct reachable states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions (edges labelled by steps).
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Index of the initial state.
    #[must_use]
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// The interned state keys, indexable by state index.
    #[must_use]
    pub fn states(&self) -> &[StateKey] {
        &self.states
    }

    /// All `(source, step, target)` transitions.
    #[must_use]
    pub fn transitions(&self) -> &[(usize, Step, usize)] {
        &self.transitions
    }

    /// Indices of deadlock states (no outgoing non-empty step).
    #[must_use]
    pub fn deadlocks(&self) -> &[usize] {
        &self.deadlocks
    }

    /// Whether the exploration hit a bound before exhausting the space.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Index of `key` if it was reached.
    #[must_use]
    pub fn state_index(&self, key: &StateKey) -> Option<usize> {
        self.index.get(key).copied()
    }

    /// Outgoing transitions of state `state`.
    pub fn outgoing(&self, state: usize) -> impl Iterator<Item = &(usize, Step, usize)> {
        self.transitions.iter().filter(move |(s, _, _)| *s == state)
    }

    /// Counts the schedules (paths from the initial state) of exactly
    /// `len` steps, saturating at `u128::MAX`.
    ///
    /// This is the "number of acceptable schedules" metric of Sec. II-C
    /// restricted to non-stuttering steps; without constraints it would
    /// be `(2^n − 1)^len`.
    #[must_use]
    pub fn count_schedules(&self, len: usize) -> u128 {
        let mut counts = vec![0u128; self.states.len()];
        counts[self.initial] = 1;
        for _ in 0..len {
            let mut next = vec![0u128; self.states.len()];
            for (s, _, t) in &self.transitions {
                next[*t] = next[*t].saturating_add(counts[*s]);
            }
            counts = next;
        }
        counts.iter().fold(0u128, |acc, c| acc.saturating_add(*c))
    }

    /// Aggregate metrics — the rows of the PAM experiment table.
    #[must_use]
    pub fn stats(&self) -> StateSpaceStats {
        let max_step_parallelism = self
            .transitions
            .iter()
            .map(|(_, step, _)| step.len())
            .max()
            .unwrap_or(0);
        let mean_branching = if self.states.is_empty() {
            0.0
        } else {
            self.transitions.len() as f64 / self.states.len() as f64
        };
        StateSpaceStats {
            states: self.states.len(),
            transitions: self.transitions.len(),
            deadlocks: self.deadlocks.len(),
            max_step_parallelism,
            mean_branching,
            truncated: self.truncated,
        }
    }
}

/// Aggregate state-space metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSpaceStats {
    /// Reachable states.
    pub states: usize,
    /// Transitions.
    pub transitions: usize,
    /// Deadlock states.
    pub deadlocks: usize,
    /// Largest step cardinality on any transition — the attainable
    /// parallelism of the configuration.
    pub max_step_parallelism: usize,
    /// Mean outgoing transitions per state.
    pub mean_branching: f64,
    /// Whether bounds truncated the exploration.
    pub truncated: bool,
}

impl fmt::Display for StateSpaceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "states={} transitions={} deadlocks={} max_parallelism={} mean_branching={:.2}{}",
            self.states,
            self.transitions,
            self.deadlocks,
            self.max_step_parallelism,
            self.mean_branching,
            if self.truncated { " (truncated)" } else { "" }
        )
    }
}

/// BFS over the compiled specification, starting at (and returning to)
/// its current state.
pub(crate) fn explore_compiled(
    compiled: &mut CompiledSpec,
    options: &ExploreOptions,
) -> StateSpace {
    // the empty step is a self-loop at every state: never enumerate it
    let solver_options = options.solver.clone().with_empty(false);
    let entry_key = compiled.state_key();

    let initial_key = entry_key.clone();
    let mut states = vec![initial_key.clone()];
    let mut index = HashMap::from([(initial_key, 0usize)]);
    let mut transitions = Vec::new();
    let mut deadlocks = Vec::new();
    let mut truncated = false;

    let mut queue: VecDeque<(usize, usize)> = VecDeque::from([(0usize, 0usize)]);
    while let Some((state, depth)) = queue.pop_front() {
        if depth >= options.max_depth {
            truncated = true;
            continue;
        }
        compiled
            .restore(&states[state])
            .expect("interned keys restore cleanly");
        let steps = compiled.acceptable_steps(&solver_options);
        if steps.is_empty() {
            deadlocks.push(state);
            continue;
        }
        for step in steps {
            compiled
                .restore(&states[state])
                .expect("interned keys restore cleanly");
            compiled
                .fire(&step)
                .expect("solver returns acceptable steps");
            let key = compiled.state_key();
            let target = match index.get(&key) {
                Some(&t) => t,
                None => {
                    if states.len() >= options.max_states {
                        truncated = true;
                        continue;
                    }
                    let t = states.len();
                    states.push(key.clone());
                    index.insert(key, t);
                    queue.push_back((t, depth + 1));
                    t
                }
            };
            transitions.push((state, step, target));
        }
    }
    compiled
        .restore(&entry_key)
        .expect("entry snapshot restores");
    deadlocks.sort_unstable();
    deadlocks.dedup();
    StateSpace {
        states,
        index,
        transitions,
        initial: 0,
        deadlocks,
        truncated,
    }
}

/// Explores the reachable scheduling state-space of `spec` by BFS.
///
/// This free function compiles a clone of `spec` on every call; it is
/// kept as a migration shim for one release. Compile once instead:
///
/// ```
/// # #![allow(deprecated)]
/// use moccml_ccsl::Alternation;
/// use moccml_engine::{CompiledSpec, ExploreOptions};
/// use moccml_kernel::{Specification, Universe};
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let mut spec = Specification::new("alt", u);
/// spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
/// let space = CompiledSpec::new(spec).explore(&ExploreOptions::default());
/// // the alternation automaton has exactly two states
/// assert_eq!(space.state_count(), 2);
/// assert_eq!(space.transition_count(), 2);
/// assert!(space.deadlocks().is_empty());
/// ```
#[must_use]
#[deprecated(
    since = "0.2.0",
    note = "compiles a throwaway clone per call; build a `CompiledSpec` once and \
            call `.explore(..)` on it (or `Engine::explore`)"
)]
pub fn explore(spec: &Specification, options: &ExploreOptions) -> StateSpace {
    explore_compiled(&mut CompiledSpec::compile(spec), options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_ccsl::{Alternation, Exclusion, Precedence, SubClock};
    use moccml_kernel::Universe;

    fn explore(spec: &Specification, options: &ExploreOptions) -> StateSpace {
        CompiledSpec::compile(spec).explore(options)
    }

    #[test]
    fn alternation_space_is_two_cycle() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 2);
        assert_eq!(space.transition_count(), 2);
        assert!(!space.truncated());
        assert_eq!(space.stats().max_step_parallelism, 1);
        // exactly one schedule of each length
        assert_eq!(space.count_schedules(5), 1);
    }

    #[test]
    fn stateless_constraints_yield_single_state() {
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("excl", u);
        spec.add_constraint(Box::new(Exclusion::new("x", [a, b, c])));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 1);
        assert_eq!(space.transition_count(), 3); // {a},{b},{c} self-loops
        assert_eq!(space.count_schedules(2), 9);
    }

    #[test]
    fn deadlocked_spec_reports_deadlock() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("dead", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<a", b, a)));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 1);
        assert_eq!(space.deadlocks(), &[0]);
        assert_eq!(space.count_schedules(1), 0);
    }

    #[test]
    fn unbounded_precedence_truncates_at_max_states() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("unbounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let space = explore(&spec, &ExploreOptions::default().with_max_states(10));
        assert!(space.truncated());
        assert_eq!(space.state_count(), 10);
    }

    #[test]
    fn bounded_precedence_space_is_finite() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("bounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b).with_bound(3)));
        let space = explore(&spec, &ExploreOptions::default());
        assert!(!space.truncated());
        assert_eq!(space.state_count(), 4); // δ ∈ {0,1,2,3}
    }

    #[test]
    fn depth_bound_truncates() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("unbounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let space = explore(&spec, &ExploreOptions::default().with_max_depth(3));
        assert!(space.truncated());
        assert!(space.state_count() <= 4);
    }

    #[test]
    fn outgoing_and_lookup() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.outgoing(space.initial()).count(), 1);
        let key = &space.states()[space.initial()];
        assert_eq!(space.state_index(key), Some(space.initial()));
    }

    #[test]
    fn subclock_space_counts_match_formula() {
        // E2 cross-check: a ⊆ b over two events has 2 acceptable
        // non-empty steps at every instant ⇒ 2^k schedules of length k.
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("sub", u);
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 1);
        assert_eq!(space.count_schedules(3), 8);
    }

    #[test]
    fn naive_solver_explores_the_same_space() {
        // the B3 ablation now covers exploration: pruned and naive
        // enumeration must build identical graphs
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("mix", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<c", b, c).with_bound(2)));
        let pruned = explore(&spec, &ExploreOptions::default());
        let naive = explore(
            &spec,
            &ExploreOptions::default().with_solver(SolverOptions::naive()),
        );
        assert_eq!(pruned.state_count(), naive.state_count());
        assert_eq!(pruned.transitions(), naive.transitions());
        assert_eq!(pruned.deadlocks(), naive.deadlocks());
    }

    #[test]
    fn include_empty_is_ignored_by_exploration() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let space = explore(
            &spec,
            &ExploreOptions::default().with_solver(SolverOptions::default().with_empty(true)),
        );
        assert_eq!(space.transition_count(), 2, "no stuttering self-loops");
        assert!(space.deadlocks().is_empty());
    }

    #[test]
    fn stats_display_is_informative() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let stats = explore(&spec, &ExploreOptions::default()).stats();
        let text = stats.to_string();
        assert!(text.contains("states=2"));
        assert!(text.contains("transitions=2"));
    }
}
