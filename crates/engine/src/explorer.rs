//! Exhaustive exploration of the scheduling state-space.
//!
//! The paper's PAM study obtains "by exploration quantitative results on
//! the scheduling state-space". This module implements that analysis: a
//! breadth-first construction of the graph whose nodes are global
//! constraint states ([`StateKey`](moccml_kernel::StateKey) snapshots)
//! and whose edges are acceptable non-empty steps.

use crate::solver::{acceptable_steps, SolverOptions};
use moccml_kernel::{Specification, StateKey, Step};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Options bounding the exploration.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Stop after interning this many states (the graph is then marked
    /// [`truncated`](StateSpace::truncated)). Counters in constraints
    /// such as unbounded precedences make the space infinite; the bound
    /// keeps exploration total.
    pub max_states: usize,
    /// Ignore states deeper than this BFS depth (`usize::MAX` = no
    /// bound).
    pub max_depth: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_states: 100_000,
            max_depth: usize::MAX,
        }
    }
}

impl ExploreOptions {
    /// Bounds the number of states (builder style).
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Bounds the BFS depth (builder style).
    #[must_use]
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }
}

/// The reachable scheduling state-space of a specification.
#[derive(Debug, Clone)]
pub struct StateSpace {
    states: Vec<StateKey>,
    index: HashMap<StateKey, usize>,
    transitions: Vec<(usize, Step, usize)>,
    initial: usize,
    deadlocks: Vec<usize>,
    truncated: bool,
}

impl StateSpace {
    /// Number of distinct reachable states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions (edges labelled by steps).
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Index of the initial state.
    #[must_use]
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// The interned state keys, indexable by state index.
    #[must_use]
    pub fn states(&self) -> &[StateKey] {
        &self.states
    }

    /// All `(source, step, target)` transitions.
    #[must_use]
    pub fn transitions(&self) -> &[(usize, Step, usize)] {
        &self.transitions
    }

    /// Indices of deadlock states (no outgoing non-empty step).
    #[must_use]
    pub fn deadlocks(&self) -> &[usize] {
        &self.deadlocks
    }

    /// Whether the exploration hit a bound before exhausting the space.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Index of `key` if it was reached.
    #[must_use]
    pub fn state_index(&self, key: &StateKey) -> Option<usize> {
        self.index.get(key).copied()
    }

    /// Outgoing transitions of state `state`.
    pub fn outgoing(&self, state: usize) -> impl Iterator<Item = &(usize, Step, usize)> {
        self.transitions.iter().filter(move |(s, _, _)| *s == state)
    }

    /// Counts the schedules (paths from the initial state) of exactly
    /// `len` steps, saturating at `u128::MAX`.
    ///
    /// This is the "number of acceptable schedules" metric of Sec. II-C
    /// restricted to non-stuttering steps; without constraints it would
    /// be `(2^n − 1)^len`.
    #[must_use]
    pub fn count_schedules(&self, len: usize) -> u128 {
        let mut counts = vec![0u128; self.states.len()];
        counts[self.initial] = 1;
        for _ in 0..len {
            let mut next = vec![0u128; self.states.len()];
            for (s, _, t) in &self.transitions {
                next[*t] = next[*t].saturating_add(counts[*s]);
            }
            counts = next;
        }
        counts.iter().fold(0u128, |acc, c| acc.saturating_add(*c))
    }

    /// Aggregate metrics — the rows of the PAM experiment table.
    #[must_use]
    pub fn stats(&self) -> StateSpaceStats {
        let max_step_parallelism = self
            .transitions
            .iter()
            .map(|(_, step, _)| step.len())
            .max()
            .unwrap_or(0);
        let mean_branching = if self.states.is_empty() {
            0.0
        } else {
            self.transitions.len() as f64 / self.states.len() as f64
        };
        StateSpaceStats {
            states: self.states.len(),
            transitions: self.transitions.len(),
            deadlocks: self.deadlocks.len(),
            max_step_parallelism,
            mean_branching,
            truncated: self.truncated,
        }
    }
}

/// Aggregate state-space metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSpaceStats {
    /// Reachable states.
    pub states: usize,
    /// Transitions.
    pub transitions: usize,
    /// Deadlock states.
    pub deadlocks: usize,
    /// Largest step cardinality on any transition — the attainable
    /// parallelism of the configuration.
    pub max_step_parallelism: usize,
    /// Mean outgoing transitions per state.
    pub mean_branching: f64,
    /// Whether bounds truncated the exploration.
    pub truncated: bool,
}

impl fmt::Display for StateSpaceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "states={} transitions={} deadlocks={} max_parallelism={} mean_branching={:.2}{}",
            self.states,
            self.transitions,
            self.deadlocks,
            self.max_step_parallelism,
            self.mean_branching,
            if self.truncated { " (truncated)" } else { "" }
        )
    }
}

/// Explores the reachable scheduling state-space of `spec` by BFS.
///
/// The exploration clones the specification, so `spec` is left
/// untouched. Edges are the acceptable **non-empty** steps (stuttering
/// self-loops exist at every state and would only add noise).
///
/// # Example
///
/// ```
/// use moccml_ccsl::Alternation;
/// use moccml_engine::{explore, ExploreOptions};
/// use moccml_kernel::{Specification, Universe};
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let mut spec = Specification::new("alt", u);
/// spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
/// let space = explore(&spec, &ExploreOptions::default());
/// // the alternation automaton has exactly two states
/// assert_eq!(space.state_count(), 2);
/// assert_eq!(space.transition_count(), 2);
/// assert!(space.deadlocks().is_empty());
/// ```
#[must_use]
pub fn explore(spec: &Specification, options: &ExploreOptions) -> StateSpace {
    let mut work = spec.clone();
    let solver_options = SolverOptions::default();

    let initial_key = work.state_key();
    let mut states = vec![initial_key.clone()];
    let mut index = HashMap::from([(initial_key, 0usize)]);
    let mut transitions = Vec::new();
    let mut deadlocks = Vec::new();
    let mut truncated = false;

    let mut queue: VecDeque<(usize, usize)> = VecDeque::from([(0usize, 0usize)]);
    while let Some((state, depth)) = queue.pop_front() {
        if depth >= options.max_depth {
            truncated = true;
            continue;
        }
        work.restore(&states[state])
            .expect("interned keys restore cleanly");
        let steps = acceptable_steps(&work, &solver_options);
        if steps.is_empty() {
            deadlocks.push(state);
            continue;
        }
        for step in steps {
            work.restore(&states[state])
                .expect("interned keys restore cleanly");
            work.fire(&step).expect("solver returns acceptable steps");
            let key = work.state_key();
            let target = match index.get(&key) {
                Some(&t) => t,
                None => {
                    if states.len() >= options.max_states {
                        truncated = true;
                        continue;
                    }
                    let t = states.len();
                    states.push(key.clone());
                    index.insert(key, t);
                    queue.push_back((t, depth + 1));
                    t
                }
            };
            transitions.push((state, step, target));
        }
    }
    deadlocks.sort_unstable();
    deadlocks.dedup();
    StateSpace {
        states,
        index,
        transitions,
        initial: 0,
        deadlocks,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_ccsl::{Alternation, Exclusion, Precedence, SubClock};
    use moccml_kernel::Universe;

    #[test]
    fn alternation_space_is_two_cycle() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 2);
        assert_eq!(space.transition_count(), 2);
        assert!(!space.truncated());
        assert_eq!(space.stats().max_step_parallelism, 1);
        // exactly one schedule of each length
        assert_eq!(space.count_schedules(5), 1);
    }

    #[test]
    fn stateless_constraints_yield_single_state() {
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("excl", u);
        spec.add_constraint(Box::new(Exclusion::new("x", [a, b, c])));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 1);
        assert_eq!(space.transition_count(), 3); // {a},{b},{c} self-loops
        assert_eq!(space.count_schedules(2), 9);
    }

    #[test]
    fn deadlocked_spec_reports_deadlock() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("dead", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<a", b, a)));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 1);
        assert_eq!(space.deadlocks(), &[0]);
        assert_eq!(space.count_schedules(1), 0);
    }

    #[test]
    fn unbounded_precedence_truncates_at_max_states() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("unbounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let space = explore(&spec, &ExploreOptions::default().with_max_states(10));
        assert!(space.truncated());
        assert_eq!(space.state_count(), 10);
    }

    #[test]
    fn bounded_precedence_space_is_finite() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("bounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b).with_bound(3)));
        let space = explore(&spec, &ExploreOptions::default());
        assert!(!space.truncated());
        assert_eq!(space.state_count(), 4); // δ ∈ {0,1,2,3}
    }

    #[test]
    fn depth_bound_truncates() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("unbounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let space = explore(&spec, &ExploreOptions::default().with_max_depth(3));
        assert!(space.truncated());
        assert!(space.state_count() <= 4);
    }

    #[test]
    fn outgoing_and_lookup() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.outgoing(space.initial()).count(), 1);
        let key = &space.states()[space.initial()];
        assert_eq!(space.state_index(key), Some(space.initial()));
    }

    #[test]
    fn subclock_space_counts_match_formula() {
        // E2 cross-check: a ⊆ b over two events has 2 acceptable
        // non-empty steps at every instant ⇒ 2^k schedules of length k.
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("sub", u);
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 1);
        assert_eq!(space.count_schedules(3), 8);
    }

    #[test]
    fn stats_display_is_informative() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let stats = explore(&spec, &ExploreOptions::default()).stats();
        let text = stats.to_string();
        assert!(text.contains("states=2"));
        assert!(text.contains("transitions=2"));
    }
}
