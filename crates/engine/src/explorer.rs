//! Exhaustive exploration of the scheduling state-space — breadth
//! first, optionally across worker threads, always deterministic.
//!
//! The paper's PAM study obtains "by exploration quantitative results on
//! the scheduling state-space". This module implements that analysis: a
//! breadth-first construction of the graph whose nodes are global
//! constraint states ([`StateKey`](moccml_kernel::StateKey) snapshots)
//! and whose edges are acceptable non-empty steps.
//!
//! # Architecture: depth-synchronized parallel BFS
//!
//! Exploration proceeds level by level. Within a level, every frontier
//! state is *expanded* independently — restore the state on a worker's
//! [`Cursor`](crate::Cursor), enumerate its acceptable steps, fire each
//! to learn the successor key. Expansion dominates the cost (it is
//! where formulas are evaluated), and it embarrasses in parallel:
//! [`ExploreOptions::workers`] worker threads pull striped batches of
//! frontier states off the level, resolving successor keys against a
//! sharded read-only index of all previously interned states.
//!
//! At the level barrier, a single canonicalization pass absorbs the
//! expansions *in frontier order*: new states are interned (and the
//! [`max_states`](ExploreOptions::max_states) bound applied) in the
//! order the serial explorer would have discovered them — by (source
//! state index, step rank) — and transitions are appended in that same
//! order. The result is **byte-identical for every worker count**: the
//! worker threads only change *who computes* an expansion, never the
//! order in which its results are absorbed. `workers == 1` skips the
//! threads entirely and runs the identical algorithm inline.
//!
//! All of this uses only `std::thread` scoped threads and `mpsc`
//! channels — no dependencies. Worker cursors share the program's
//! sharded formula memo, so a constraint state reached by one worker is
//! never re-lowered by another.

use crate::cursor::Cursor;
use crate::program::Program;
use crate::solver::SolverOptions;
use moccml_kernel::{StateKey, Step};
use std::collections::HashMap;
use std::fmt;
use std::sync::mpsc;
use std::sync::RwLock;

/// Options bounding and configuring the exploration.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Stop after interning this many states (the graph is then marked
    /// [`truncated`](StateSpace::truncated)). Counters in constraints
    /// such as unbounded precedences make the space infinite; the bound
    /// keeps exploration total.
    pub max_states: usize,
    /// Ignore states deeper than this BFS depth (`usize::MAX` = no
    /// bound).
    pub max_depth: usize,
    /// Solver configuration used to enumerate each state's outgoing
    /// steps, so the pruned/naive ablation covers exploration too.
    /// `include_empty` is ignored: stuttering self-loops exist at every
    /// state and would only add noise.
    pub solver: SolverOptions,
    /// Number of worker threads expanding each BFS level. Defaults to
    /// [`std::thread::available_parallelism`]; `1` runs the identical
    /// algorithm inline with no threads. The resulting [`StateSpace`]
    /// is byte-identical for every value.
    pub workers: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_states: 100_000,
            max_depth: usize::MAX,
            solver: SolverOptions::default(),
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// Flow control returned by [`ExploreVisitor::on_level_end`]: keep
/// exploring, or stop at this level barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisitControl {
    /// Continue with the next BFS level.
    Continue,
    /// Stop the exploration at this level barrier. The returned
    /// [`StateSpace`] contains everything absorbed so far and is marked
    /// [`truncated`](StateSpace::truncated) iff unexplored frontier
    /// states remain.
    Stop,
}

/// Streaming hook into the explorer's canonicalization pass — the
/// on-the-fly half of `explore`.
///
/// Callbacks fire *inside the level barrier*, in the canonical
/// absorption order (source frontier order, then step rank), which is
/// identical for every [`ExploreOptions::workers`] count. A visitor
/// therefore observes the exact same call sequence — and can stop at
/// the exact same level — whether the expansion ran on one thread or
/// eight. This is what lets `moccml-verify` evaluate property monitors
/// during BFS and terminate deterministically at the first violating
/// level instead of materialising the full space.
///
/// All methods have no-op defaults; `()` implements the trait as the
/// always-continue visitor.
pub trait ExploreVisitor {
    /// A transition `(source, step, target)` was just recorded while
    /// absorbing level `depth`. Target states of fresh keys are
    /// announced here with their newly interned index.
    fn on_transition(&mut self, source: usize, step: &Step, target: usize, depth: usize) {
        let _ = (source, step, target, depth);
    }

    /// Frontier state `state` (expanded at level `depth`) has no
    /// outgoing non-empty step.
    fn on_deadlock(&mut self, state: usize, depth: usize) {
        let _ = (state, depth);
    }

    /// The [`max_states`](ExploreOptions::max_states) bound just
    /// dropped a freshly discovered successor (and its transition)
    /// while absorbing level `depth`. From this point on the visitor
    /// sees an *incomplete* transition relation: "nothing reachable"
    /// conclusions drawn from the absorbed graph are no longer sound,
    /// while every positively observed path remains real.
    fn on_states_dropped(&mut self, depth: usize) {
        let _ = depth;
    }

    /// Level `depth` was fully absorbed; `state_count` states are
    /// interned so far. Returning [`VisitControl::Stop`] ends the
    /// exploration at this barrier — deterministically, because the
    /// barrier sequence itself is worker-count-independent.
    fn on_level_end(&mut self, depth: usize, state_count: usize) -> VisitControl {
        let _ = (depth, state_count);
        VisitControl::Continue
    }

    /// Periodic mid-absorption checkpoint: called once every
    /// [`PROGRESS_INTERVAL`] absorbed transitions with the running
    /// totals (`states` interned, `transitions` absorbed, current BFS
    /// `depth`). Large levels can absorb hundreds of thousands of
    /// transitions between two barriers; this hook is what lets a
    /// long-running exploration report progress — and be cancelled —
    /// *inside* a level instead of only at its end.
    ///
    /// Returning [`VisitControl::Stop`] aborts the exploration
    /// immediately; the returned [`StateSpace`] contains everything
    /// absorbed so far and is always marked
    /// [`truncated`](StateSpace::truncated) (a mid-level stop leaves
    /// the transition relation incomplete). Call points are a pure
    /// function of the absorbed-transition count, so — like every
    /// other callback — the hook sequence is identical for every
    /// [`ExploreOptions::workers`] count.
    fn on_progress(&mut self, states: usize, transitions: usize, depth: usize) -> VisitControl {
        let _ = (states, transitions, depth);
        VisitControl::Continue
    }
}

/// Number of absorbed transitions between two
/// [`ExploreVisitor::on_progress`] checkpoints.
pub const PROGRESS_INTERVAL: usize = 1024;

/// The always-continue visitor: plain exploration.
impl ExploreVisitor for () {}

impl ExploreOptions {
    /// Bounds the number of states (builder style).
    #[must_use]
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = max_states;
        self
    }

    /// Bounds the BFS depth (builder style).
    #[must_use]
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    /// Sets the solver configuration (builder style).
    #[must_use]
    pub fn with_solver(mut self, solver: SolverOptions) -> Self {
        self.solver = solver;
        self
    }

    /// Sets the number of worker threads (builder style). `1` selects
    /// the serial in-line path; any value yields the same
    /// [`StateSpace`], byte for byte.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// The reachable scheduling state-space of a specification.
///
/// Equality compares the full graph — interned states, transitions,
/// initial state, deadlocks and the truncation flag — which is exactly
/// the explorer's determinism contract: `explore` with any
/// [`workers`](ExploreOptions::workers) count yields `==` spaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateSpace {
    states: Vec<StateKey>,
    index: HashMap<StateKey, usize>,
    transitions: Vec<(usize, Step, usize)>,
    initial: usize,
    deadlocks: Vec<usize>,
    truncated: bool,
}

impl StateSpace {
    /// Number of distinct reachable states.
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of transitions (edges labelled by steps).
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Index of the initial state.
    #[must_use]
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// The interned state keys, indexable by state index.
    #[must_use]
    pub fn states(&self) -> &[StateKey] {
        &self.states
    }

    /// All `(source, step, target)` transitions.
    #[must_use]
    pub fn transitions(&self) -> &[(usize, Step, usize)] {
        &self.transitions
    }

    /// Indices of deadlock states (no outgoing non-empty step).
    #[must_use]
    pub fn deadlocks(&self) -> &[usize] {
        &self.deadlocks
    }

    /// Whether the exploration hit a bound before exhausting the space.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Index of `key` if it was reached.
    #[must_use]
    pub fn state_index(&self, key: &StateKey) -> Option<usize> {
        self.index.get(key).copied()
    }

    /// Outgoing transitions of state `state`.
    pub fn outgoing(&self, state: usize) -> impl Iterator<Item = &(usize, Step, usize)> {
        self.transitions.iter().filter(move |(s, _, _)| *s == state)
    }

    /// Counts the schedules (paths from the initial state) of exactly
    /// `len` steps, saturating at `u128::MAX`.
    ///
    /// This is the "number of acceptable schedules" metric of Sec. II-C
    /// restricted to non-stuttering steps; without constraints it would
    /// be `(2^n − 1)^len`.
    #[must_use]
    pub fn count_schedules(&self, len: usize) -> u128 {
        let mut counts = vec![0u128; self.states.len()];
        counts[self.initial] = 1;
        for _ in 0..len {
            let mut next = vec![0u128; self.states.len()];
            for (s, _, t) in &self.transitions {
                next[*t] = next[*t].saturating_add(counts[*s]);
            }
            counts = next;
        }
        counts.iter().fold(0u128, |acc, c| acc.saturating_add(*c))
    }

    /// Aggregate metrics — the rows of the PAM experiment table.
    #[must_use]
    pub fn stats(&self) -> StateSpaceStats {
        let max_step_parallelism = self
            .transitions
            .iter()
            .map(|(_, step, _)| step.len())
            .max()
            .unwrap_or(0);
        let mean_branching = if self.states.is_empty() {
            0.0
        } else {
            self.transitions.len() as f64 / self.states.len() as f64
        };
        StateSpaceStats {
            states: self.states.len(),
            transitions: self.transitions.len(),
            deadlocks: self.deadlocks.len(),
            max_step_parallelism,
            mean_branching,
            truncated: self.truncated,
        }
    }
}

/// Aggregate state-space metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct StateSpaceStats {
    /// Reachable states.
    pub states: usize,
    /// Transitions.
    pub transitions: usize,
    /// Deadlock states.
    pub deadlocks: usize,
    /// Largest step cardinality on any transition — the attainable
    /// parallelism of the configuration.
    pub max_step_parallelism: usize,
    /// Mean outgoing transitions per state.
    pub mean_branching: f64,
    /// Whether bounds truncated the exploration.
    pub truncated: bool,
}

impl fmt::Display for StateSpaceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "states={} transitions={} deadlocks={} max_parallelism={} mean_branching={:.2}{}",
            self.states,
            self.transitions,
            self.deadlocks,
            self.max_step_parallelism,
            self.mean_branching,
            if self.truncated { " (truncated)" } else { "" }
        )
    }
}

/// Explores the reachable scheduling state-space of `program` from its
/// template (compile-time) state.
///
/// Convenience free function over [`Program::explore`] /
/// [`Cursor::explore`](crate::Cursor::explore) for one-shot analyses:
///
/// ```
/// use moccml_ccsl::Alternation;
/// use moccml_engine::{explore, ExploreOptions, Program};
/// use moccml_kernel::{Specification, Universe};
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let mut spec = Specification::new("alt", u);
/// spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
/// let space = explore(&Program::new(spec), &ExploreOptions::default());
/// // the alternation automaton has exactly two states
/// assert_eq!(space.state_count(), 2);
/// assert_eq!(space.transition_count(), 2);
/// assert!(space.deadlocks().is_empty());
/// ```
#[must_use]
pub fn explore(program: &Program, options: &ExploreOptions) -> StateSpace {
    program.explore(options)
}

/// Sharded `StateKey → state index` map: read concurrently by workers
/// during a level, written only by the canonicalization pass at the
/// level barrier — reads vastly outnumber writes, so shards are
/// `RwLock`s. Shard selection is shared with the formula memo
/// ([`shard_of`](crate::program::shard_of)).
struct ShardedIndex {
    shards: Vec<RwLock<HashMap<StateKey, usize>>>,
}

impl ShardedIndex {
    fn new() -> Self {
        ShardedIndex {
            shards: (0..crate::program::SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn get(&self, key: &StateKey) -> Option<usize> {
        self.shards[crate::program::shard_of(key, self.shards.len())]
            .read()
            .expect("state index shard lock")
            .get(key)
            .copied()
    }

    fn insert(&self, key: StateKey, index: usize) {
        self.shards[crate::program::shard_of(&key, self.shards.len())]
            .write()
            .expect("state index shard lock")
            .insert(key, index);
    }
}

/// A successor resolved by a worker: either a state interned in a
/// previous level (index known) or a fresh key the barrier will intern.
enum Target {
    Known(usize),
    New(StateKey),
}

/// One frontier state's expansion: its position in the frontier (the
/// canonical absorption order) and its outgoing steps, or a deadlock.
struct Expansion {
    order: usize,
    deadlock: bool,
    succs: Vec<(Step, Target)>,
}

/// Expands one frontier state on `cursor`: enumerate its acceptable
/// steps, fire each, resolve the successor against `index`.
fn expand_state(
    cursor: &mut Cursor,
    order: usize,
    key: &StateKey,
    solver: &SolverOptions,
    index: &ShardedIndex,
) -> Expansion {
    cursor.restore(key).expect("interned keys restore cleanly");
    let steps = cursor.acceptable_steps(solver);
    if steps.is_empty() {
        return Expansion {
            order,
            deadlock: true,
            succs: Vec::new(),
        };
    }
    let mut succs = Vec::with_capacity(steps.len());
    for step in steps {
        cursor.restore(key).expect("interned keys restore cleanly");
        cursor.fire(&step).expect("solver returns acceptable steps");
        let successor = cursor.state_key();
        let target = match index.get(&successor) {
            Some(t) => Target::Known(t),
            None => Target::New(successor),
        };
        succs.push((step, target));
    }
    Expansion {
        order,
        deadlock: false,
        succs,
    }
}

/// The canonical BFS construction shared by the serial and parallel
/// paths. `expand_level` turns one frontier (as `(order, key)` jobs)
/// into its expansions, in any order; everything order-sensitive —
/// interning, the `max_states` bound, transition and deadlock
/// recording — happens here, in frontier order.
fn explore_with(
    root: StateKey,
    options: &ExploreOptions,
    index: &ShardedIndex,
    visitor: &mut dyn ExploreVisitor,
    mut expand_level: impl FnMut(Vec<(usize, StateKey)>, &ShardedIndex) -> Vec<Expansion>,
) -> StateSpace {
    let mut states = vec![root.clone()];
    index.insert(root, 0);
    let mut transitions = Vec::new();
    let mut deadlocks = Vec::new();
    let mut truncated = false;

    let mut frontier: Vec<usize> = vec![0];
    let mut depth = 0usize;
    'levels: while !frontier.is_empty() {
        if depth >= options.max_depth {
            truncated = true;
            break;
        }
        let jobs: Vec<(usize, StateKey)> = frontier
            .iter()
            .enumerate()
            .map(|(order, &s)| (order, states[s].clone()))
            .collect();
        let mut expansions = expand_level(jobs, index);
        expansions.sort_unstable_by_key(|e| e.order);
        let mut next = Vec::new();
        for expansion in expansions {
            let source = frontier[expansion.order];
            if expansion.deadlock {
                deadlocks.push(source);
                visitor.on_deadlock(source, depth);
                continue;
            }
            for (step, target) in expansion.succs {
                let target = match target {
                    Target::Known(t) => t,
                    Target::New(key) => {
                        // the key may have been interned earlier in
                        // this very pass (discovered twice in a level)
                        match index.get(&key) {
                            Some(t) => t,
                            None => {
                                if states.len() >= options.max_states {
                                    truncated = true;
                                    visitor.on_states_dropped(depth);
                                    continue;
                                }
                                let t = states.len();
                                states.push(key.clone());
                                index.insert(key, t);
                                next.push(t);
                                t
                            }
                        }
                    }
                };
                visitor.on_transition(source, &step, target, depth);
                transitions.push((source, step, target));
                // mid-level checkpoint: call points depend only on the
                // absorbed-transition count, never on who expanded what
                if transitions.len() % PROGRESS_INTERVAL == 0
                    && visitor.on_progress(states.len(), transitions.len(), depth)
                        == VisitControl::Stop
                {
                    truncated = true;
                    break 'levels;
                }
            }
        }
        let control = visitor.on_level_end(depth, states.len());
        frontier = next;
        depth += 1;
        if control == VisitControl::Stop {
            if !frontier.is_empty() {
                truncated = true;
            }
            break;
        }
    }

    deadlocks.sort_unstable();
    deadlocks.dedup();
    let index = states
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, k)| (k, i))
        .collect();
    StateSpace {
        states,
        index,
        transitions,
        initial: 0,
        deadlocks,
        truncated,
    }
}

/// BFS over `program` from `root`, serial or parallel per
/// `options.workers`, reporting every absorption to `visitor`.
pub(crate) fn explore_program(
    program: &Program,
    root: StateKey,
    options: &ExploreOptions,
    visitor: &mut dyn ExploreVisitor,
) -> StateSpace {
    // the empty step is a self-loop at every state: never enumerate it
    let solver = options.solver.clone().with_empty(false);
    let workers = options.workers.max(1);
    let index = ShardedIndex::new();

    if workers == 1 {
        let mut cursor = program.cursor();
        return explore_with(root, options, &index, visitor, |jobs, index| {
            jobs.iter()
                .map(|(order, key)| expand_state(&mut cursor, *order, key, &solver, index))
                .collect()
        });
    }

    // Parallel: `workers` persistent threads, one cursor each, fed one
    // striped batch of the frontier per level. The scope borrows
    // `program` and `index`; job/result channels carry owned data.
    // Workers are spawned lazily, on the first frontier wide enough to
    // amortise the channel round trip — narrow levels (and entire
    // small explorations) run inline on the main thread's cursor, so
    // a 2-state doctest pays for zero threads even at `workers = 8`.
    std::thread::scope(|scope| {
        let index = &index;
        let solver = &solver;
        let mut pool: Option<WorkerPool> = None;
        let mut inline_cursor = program.cursor();

        // the closure ignores its `&ShardedIndex` argument in favour of
        // the captured `index` — same object, but the capture carries
        // the scope-level lifetime the spawned workers need
        let space = explore_with(root, options, index, visitor, |jobs, _| {
            if jobs.len() < MIN_PARALLEL_FRONTIER.max(workers) {
                return jobs
                    .iter()
                    .map(|(order, key)| {
                        expand_state(&mut inline_cursor, *order, key, solver, index)
                    })
                    .collect();
            }
            let pool = pool
                .get_or_insert_with(|| WorkerPool::spawn(scope, workers, program, solver, index));
            // stripe the frontier across workers: neighbouring states
            // (often similar expansion cost) land on different threads
            let mut batches: Vec<Vec<(usize, StateKey)>> = vec![Vec::new(); workers];
            for (i, job) in jobs.into_iter().enumerate() {
                batches[i % workers].push(job);
            }
            for (tx, batch) in pool.job_txs.iter().zip(batches) {
                tx.send(batch).expect("worker alive while exploring");
            }
            let mut expansions = Vec::new();
            for (w, rx) in pool.result_rxs.iter().enumerate() {
                // a disconnected result channel means that worker
                // panicked (a Constraint broke the restore/stuttering
                // contract): fail loudly instead of waiting forever
                expansions.extend(rx.recv().unwrap_or_else(|_| {
                    panic!("explorer worker {w} died mid-level (see its panic above)")
                }));
            }
            expansions
        });
        drop(pool); // job channels disconnect; workers drain and exit
        space
    })
}

/// Frontiers narrower than this are expanded inline even when worker
/// threads are available: the per-level channel round trip costs more
/// than enumerating a handful of states.
const MIN_PARALLEL_FRONTIER: usize = 16;

/// The lazily spawned expansion threads of one parallel exploration:
/// per-worker job and result channels (one result vector per batch, so
/// a worker that dies is detected as *its* channel disconnecting
/// rather than a barrier that never completes).
struct WorkerPool {
    job_txs: Vec<mpsc::Sender<Vec<(usize, StateKey)>>>,
    result_rxs: Vec<mpsc::Receiver<Vec<Expansion>>>,
}

impl WorkerPool {
    fn spawn<'scope>(
        scope: &'scope std::thread::Scope<'scope, '_>,
        workers: usize,
        program: &'scope Program,
        solver: &'scope SolverOptions,
        index: &'scope ShardedIndex,
    ) -> Self {
        let mut job_txs = Vec::with_capacity(workers);
        let mut result_rxs = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (job_tx, job_rx) = mpsc::channel::<Vec<(usize, StateKey)>>();
            let (result_tx, result_rx) = mpsc::channel::<Vec<Expansion>>();
            scope.spawn(move || {
                let mut cursor = program.cursor();
                while let Ok(batch) = job_rx.recv() {
                    let out: Vec<Expansion> = batch
                        .iter()
                        .map(|(order, key)| expand_state(&mut cursor, *order, key, solver, index))
                        .collect();
                    if result_tx.send(out).is_err() {
                        break;
                    }
                }
            });
            job_txs.push(job_tx);
            result_rxs.push(result_rx);
        }
        WorkerPool {
            job_txs,
            result_rxs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_ccsl::{Alternation, Exclusion, Precedence, SubClock};
    use moccml_kernel::{Specification, Universe};

    fn explore(spec: &Specification, options: &ExploreOptions) -> StateSpace {
        Program::compile(spec).explore(options)
    }

    #[test]
    fn alternation_space_is_two_cycle() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 2);
        assert_eq!(space.transition_count(), 2);
        assert!(!space.truncated());
        assert_eq!(space.stats().max_step_parallelism, 1);
        // exactly one schedule of each length
        assert_eq!(space.count_schedules(5), 1);
    }

    #[test]
    fn stateless_constraints_yield_single_state() {
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("excl", u);
        spec.add_constraint(Box::new(Exclusion::new("x", [a, b, c])));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 1);
        assert_eq!(space.transition_count(), 3); // {a},{b},{c} self-loops
        assert_eq!(space.count_schedules(2), 9);
    }

    #[test]
    fn deadlocked_spec_reports_deadlock() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("dead", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<a", b, a)));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 1);
        assert_eq!(space.deadlocks(), &[0]);
        assert_eq!(space.count_schedules(1), 0);
    }

    #[test]
    fn unbounded_precedence_truncates_at_max_states() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("unbounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let space = explore(&spec, &ExploreOptions::default().with_max_states(10));
        assert!(space.truncated());
        assert_eq!(space.state_count(), 10);
    }

    #[test]
    fn bounded_precedence_space_is_finite() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("bounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b).with_bound(3)));
        let space = explore(&spec, &ExploreOptions::default());
        assert!(!space.truncated());
        assert_eq!(space.state_count(), 4); // δ ∈ {0,1,2,3}
    }

    #[test]
    fn depth_bound_truncates() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("unbounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let space = explore(&spec, &ExploreOptions::default().with_max_depth(3));
        assert!(space.truncated());
        assert!(space.state_count() <= 4);
    }

    #[test]
    fn outgoing_and_lookup() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.outgoing(space.initial()).count(), 1);
        let key = &space.states()[space.initial()];
        assert_eq!(space.state_index(key), Some(space.initial()));
    }

    #[test]
    fn subclock_space_counts_match_formula() {
        // E2 cross-check: a ⊆ b over two events has 2 acceptable
        // non-empty steps at every instant ⇒ 2^k schedules of length k.
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("sub", u);
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        let space = explore(&spec, &ExploreOptions::default());
        assert_eq!(space.state_count(), 1);
        assert_eq!(space.count_schedules(3), 8);
    }

    #[test]
    fn naive_solver_explores_the_same_space() {
        // the B3 ablation now covers exploration: pruned and naive
        // enumeration must build identical graphs
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("mix", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<c", b, c).with_bound(2)));
        let pruned = explore(&spec, &ExploreOptions::default());
        let naive = explore(
            &spec,
            &ExploreOptions::default().with_solver(SolverOptions::naive()),
        );
        assert_eq!(pruned, naive);
    }

    #[test]
    fn include_empty_is_ignored_by_exploration() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let space = explore(
            &spec,
            &ExploreOptions::default().with_solver(SolverOptions::default().with_empty(true)),
        );
        assert_eq!(space.transition_count(), 2, "no stuttering self-loops");
        assert!(space.deadlocks().is_empty());
    }

    #[test]
    fn worker_counts_build_equal_spaces() {
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("mix", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<c", b, c).with_bound(3)));
        let serial = explore(&spec, &ExploreOptions::default().with_workers(1));
        for workers in [2, 3, 8] {
            let parallel = explore(&spec, &ExploreOptions::default().with_workers(workers));
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn threaded_path_agrees_on_wide_frontiers() {
        // three independent bounded precedences: a 5×5×5 product space
        // (125 states) whose BFS levels grow past MIN_PARALLEL_FRONTIER
        // (level d holds the states with max coordinate d; d=2 already
        // has 19), so multi-worker runs genuinely engage the thread
        // pool instead of the inline small-frontier path
        let mut u = Universe::new();
        let pairs: Vec<_> = (0..3)
            .map(|i| (u.event(&format!("a{i}")), u.event(&format!("b{i}"))))
            .collect();
        let mut spec = Specification::new("grid", u);
        for (i, (a, b)) in pairs.into_iter().enumerate() {
            spec.add_constraint(Box::new(
                Precedence::strict(&format!("p{i}"), a, b).with_bound(4),
            ));
        }
        let serial = explore(&spec, &ExploreOptions::default().with_workers(1));
        assert_eq!(serial.state_count(), 125);
        for workers in [2, 4] {
            let parallel = explore(&spec, &ExploreOptions::default().with_workers(workers));
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn worker_counts_agree_under_truncation() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("unbounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let options = ExploreOptions::default().with_max_states(7);
        let serial = explore(&spec, &options.clone().with_workers(1));
        assert!(serial.truncated());
        for workers in [2, 5] {
            let parallel = explore(&spec, &options.clone().with_workers(workers));
            assert_eq!(serial, parallel, "workers={workers}");
        }
    }

    #[test]
    fn explore_starts_from_the_cursor_state() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let program = Program::new(spec);
        let mut cursor = program.cursor();
        cursor
            .fire(&moccml_kernel::Step::from_events([a]))
            .expect("fires");
        let space = cursor.explore(&ExploreOptions::default());
        // same two-cycle, but rooted at the post-`a` state
        assert_eq!(space.state_count(), 2);
        assert_eq!(space.states()[space.initial()], cursor.state_key());
        // the next step from the root fires b
        let (_, step, _) = space.outgoing(space.initial()).next().expect("one edge");
        assert!(step.contains(b));
    }

    /// One recorded `on_transition` callback: source, step, target,
    /// depth.
    type SeenTransition = (usize, Step, usize, usize);

    /// Records every callback; stops after absorbing `stop_after` levels.
    struct Recorder {
        transitions: Vec<SeenTransition>,
        deadlocks: Vec<(usize, usize)>,
        levels: Vec<(usize, usize)>,
        stop_after: usize,
    }

    impl Recorder {
        fn new(stop_after: usize) -> Self {
            Recorder {
                transitions: Vec::new(),
                deadlocks: Vec::new(),
                levels: Vec::new(),
                stop_after,
            }
        }
    }

    impl ExploreVisitor for Recorder {
        fn on_transition(&mut self, source: usize, step: &Step, target: usize, depth: usize) {
            self.transitions.push((source, step.clone(), target, depth));
        }
        fn on_deadlock(&mut self, state: usize, depth: usize) {
            self.deadlocks.push((state, depth));
        }
        fn on_level_end(&mut self, depth: usize, state_count: usize) -> VisitControl {
            self.levels.push((depth, state_count));
            if self.levels.len() >= self.stop_after {
                VisitControl::Stop
            } else {
                VisitControl::Continue
            }
        }
    }

    #[test]
    fn visitor_sees_the_whole_space_in_recorded_order() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let program = Program::new(spec);
        let mut recorder = Recorder::new(usize::MAX);
        let space = program.explore_with(&ExploreOptions::default(), &mut recorder);
        let seen: Vec<(usize, Step, usize)> = recorder
            .transitions
            .iter()
            .map(|(s, st, t, _)| (*s, st.clone(), *t))
            .collect();
        assert_eq!(seen, space.transitions().to_vec());
        assert!(recorder.deadlocks.is_empty());
        // level barriers: depths strictly increasing, counts monotone
        assert!(recorder.levels.windows(2).all(|w| w[0].0 + 1 == w[1].0));
        assert_eq!(recorder.levels.last().unwrap().1, space.state_count());
    }

    #[test]
    fn visitor_stop_truncates_deterministically() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("unbounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let program = Program::new(spec);
        let mut first: Option<(StateSpace, Vec<SeenTransition>)> = None;
        for workers in [1, 2, 8] {
            let mut recorder = Recorder::new(3);
            let space = program.explore_with(
                &ExploreOptions::default().with_workers(workers),
                &mut recorder,
            );
            assert!(space.truncated(), "stopped with frontier remaining");
            assert_eq!(recorder.levels.len(), 3);
            match &first {
                None => first = Some((space, recorder.transitions)),
                Some((s0, t0)) => {
                    assert_eq!(s0, &space, "workers={workers}");
                    assert_eq!(t0, &recorder.transitions, "workers={workers}");
                }
            }
        }
    }

    /// Counts `on_progress` checkpoints; stops after `stop_after`.
    struct ProgressProbe {
        calls: Vec<(usize, usize, usize)>,
        stop_after: usize,
    }

    impl ExploreVisitor for ProgressProbe {
        fn on_progress(&mut self, states: usize, transitions: usize, depth: usize) -> VisitControl {
            self.calls.push((states, transitions, depth));
            if self.calls.len() >= self.stop_after {
                VisitControl::Stop
            } else {
                VisitControl::Continue
            }
        }
    }

    /// A spec whose level widths grow without bound: three unbounded
    /// precedences produce a 3-D grid with ever-wider BFS levels.
    fn wide_grid() -> std::sync::Arc<Program> {
        let mut u = Universe::new();
        let pairs: Vec<_> = (0..3)
            .map(|i| (u.event(&format!("a{i}")), u.event(&format!("b{i}"))))
            .collect();
        let mut spec = Specification::new("wide", u);
        for (i, (a, b)) in pairs.into_iter().enumerate() {
            spec.add_constraint(Box::new(Precedence::strict(&format!("p{i}"), a, b)));
        }
        Program::new(spec)
    }

    #[test]
    fn progress_fires_every_interval_and_stop_aborts_mid_level() {
        let program = wide_grid();
        let mut probe = ProgressProbe {
            calls: Vec::new(),
            stop_after: 2,
        };
        let options = ExploreOptions::default().with_max_states(50_000);
        let space = program.explore_with(&options, &mut probe);
        assert_eq!(probe.calls.len(), 2, "stopped at the second checkpoint");
        for (i, (states, transitions, _)) in probe.calls.iter().enumerate() {
            assert_eq!(*transitions, (i + 1) * PROGRESS_INTERVAL);
            assert!(*states > 0);
        }
        assert!(space.truncated(), "a mid-level stop truncates");
        assert_eq!(space.transition_count(), 2 * PROGRESS_INTERVAL);
    }

    #[test]
    fn progress_checkpoints_are_worker_count_independent() {
        let program = wide_grid();
        type Checkpoints = Vec<(usize, usize, usize)>;
        let options = ExploreOptions::default().with_max_states(3_000);
        let mut first: Option<(Checkpoints, StateSpace)> = None;
        for workers in [1, 2, 8] {
            let mut probe = ProgressProbe {
                calls: Vec::new(),
                stop_after: 3,
            };
            let space = program.explore_with(&options.clone().with_workers(workers), &mut probe);
            match &first {
                None => first = Some((probe.calls, space)),
                Some((calls, s0)) => {
                    assert_eq!(calls, &probe.calls, "workers={workers}");
                    assert_eq!(s0, &space, "workers={workers}");
                }
            }
        }
    }

    #[test]
    fn default_progress_hook_is_a_noop() {
        // the alternation space is tiny: no checkpoint ever fires, and
        // the default visitor keeps exploring to completion
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let space = explore(&spec, &ExploreOptions::default());
        assert!(!space.truncated());
    }

    #[test]
    fn visitor_reports_deadlocks() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("dead", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<a", b, a)));
        let mut recorder = Recorder::new(usize::MAX);
        let _ = Program::new(spec).explore_with(&ExploreOptions::default(), &mut recorder);
        assert_eq!(recorder.deadlocks, vec![(0, 0)]);
    }

    #[test]
    fn stats_display_is_informative() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let stats = explore(&spec, &ExploreOptions::default()).stats();
        let text = stats.to_string();
        assert!(text.contains("states=2"));
        assert!(text.contains("transitions=2"));
    }
}
