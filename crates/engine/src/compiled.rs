//! [`CompiledSpec`]: a specification lowered once, queried many times.
//!
//! The legacy entry points re-lowered `spec.conjunction()` — walking
//! every constraint, building and simplifying one big `And` — on *every*
//! step of a simulation and every state of an exploration. A
//! `CompiledSpec` hoists that work out of the query loop:
//!
//! * the constrained-event list is interned once at compile time;
//! * each constraint keeps its lowered (simplified) formula in a slot,
//!   memoised by the constraint's local
//!   [`StateKey`](moccml_kernel::StateKey), so lowering happens once per
//!   *reached constraint state* instead of once per query;
//! * after a [`fire`](CompiledSpec::fire), only the slots whose events
//!   intersect the fired step are refreshed (the stuttering guarantee of
//!   the [`Constraint`](moccml_kernel::Constraint) protocol: a step that
//!   touches none of a constraint's events leaves its state unchanged);
//! * [`restore`](CompiledSpec::restore) re-syncs slots by comparing
//!   local keys, hitting the memo for every previously seen state — the
//!   common case in breadth-first exploration, which revisits the same
//!   constraint states across many global states.

use crate::explorer::{explore_compiled, ExploreOptions, StateSpace};
use crate::solver::{enumerate_steps, SolverOptions};
use moccml_kernel::{EventId, KernelError, Specification, StateKey, Step, StepFormula};
use std::collections::HashMap;
use std::sync::Arc;

/// One constraint's compiled view: its event footprint, its lowered
/// formula for the current local state, and the memo of formulas for
/// every local state seen so far.
#[derive(Debug, Clone)]
struct Slot {
    events: Step,
    key: StateKey,
    formula: Arc<StepFormula>,
    memo: HashMap<StateKey, Arc<StepFormula>>,
}

impl Slot {
    fn new(events: Step, key: StateKey, formula: StepFormula) -> Self {
        let formula = Arc::new(formula);
        let memo = HashMap::from([(key.clone(), Arc::clone(&formula))]);
        Slot {
            events,
            key,
            formula,
            memo,
        }
    }
}

/// A [`Specification`] compiled for repeated step queries.
///
/// Constructed once (from an owned spec with [`new`](CompiledSpec::new)
/// or from a borrow with [`compile`](CompiledSpec::compile)), then
/// driven through [`acceptable_steps`](CompiledSpec::acceptable_steps),
/// [`fire`](CompiledSpec::fire), [`state_key`](CompiledSpec::state_key)
/// / [`restore`](CompiledSpec::restore) and
/// [`explore`](CompiledSpec::explore). The constraint population is
/// frozen at compile time — that is what makes the interned event list
/// and the per-slot memos sound.
///
/// # Example
///
/// ```
/// use moccml_ccsl::Alternation;
/// use moccml_engine::{CompiledSpec, SolverOptions};
/// use moccml_kernel::{Specification, Universe};
///
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let mut spec = Specification::new("alt", u);
/// spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
///
/// let mut compiled = CompiledSpec::new(spec);
/// let options = SolverOptions::default();
/// let first = compiled.acceptable_steps(&options);
/// assert_eq!(first.len(), 1); // only {a}
/// compiled.fire(&first[0]).expect("acceptable");
/// assert!(compiled.acceptable_steps(&options)[0].contains(b));
/// ```
#[derive(Debug, Clone)]
pub struct CompiledSpec {
    spec: Specification,
    events: Vec<EventId>,
    slots: Vec<Slot>,
}

impl CompiledSpec {
    /// Compiles an owned specification.
    #[must_use]
    pub fn new(spec: Specification) -> Self {
        let events: Vec<EventId> = spec.constrained_events().iter().collect();
        let keys = spec.constraint_state_keys();
        let formulas = spec.lowered_formulas();
        let slots = spec
            .constraints()
            .iter()
            .zip(keys)
            .zip(formulas)
            .map(|((c, key), formula)| {
                Slot::new(Step::from_events(c.constrained_events()), key, formula)
            })
            .collect();
        CompiledSpec {
            spec,
            events,
            slots,
        }
    }

    /// Compiles a borrowed specification (clones it).
    #[must_use]
    pub fn compile(spec: &Specification) -> Self {
        Self::new(spec.clone())
    }

    /// Read access to the underlying specification.
    #[must_use]
    pub fn specification(&self) -> &Specification {
        &self.spec
    }

    /// Recovers the specification (in its current state).
    #[must_use]
    pub fn into_specification(self) -> Specification {
        self.spec
    }

    /// The interned list of constrained events the solver ranges over.
    #[must_use]
    pub fn constrained_events(&self) -> &[EventId] {
        &self.events
    }

    /// Total number of `(constraint, local state)` formulas currently
    /// memoised — a cache-size observability hook for tests and tuning.
    #[must_use]
    pub fn cached_formula_count(&self) -> usize {
        self.slots.iter().map(|s| s.memo.len()).sum()
    }

    /// Enumerates every acceptable step in the current state, using the
    /// cached per-constraint formulas (no lowering on this path). The
    /// result is sorted, exactly as the legacy free function sorted it.
    #[must_use]
    pub fn acceptable_steps(&self, options: &SolverOptions) -> Vec<Step> {
        let formulas: Vec<&StepFormula> = self.slots.iter().map(|s| s.formula.as_ref()).collect();
        enumerate_steps(&formulas, &self.events, options)
    }

    /// Whether `step` satisfies every constraint in the current state —
    /// evaluated on the cached formulas, without lowering.
    #[must_use]
    pub fn accepts(&self, step: &Step) -> bool {
        self.slots.iter().all(|s| s.formula.eval(step))
    }

    /// Fires `step` and refreshes the slots of the constraints whose
    /// events intersect it.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::StepRejected`] if `step` is not
    /// acceptable; like [`Specification::fire`], the underlying state is
    /// then poisoned and the caller should [`reset`](CompiledSpec::reset)
    /// or [`restore`](CompiledSpec::restore).
    pub fn fire(&mut self, step: &Step) -> Result<(), KernelError> {
        self.spec.fire(step)?;
        let Self { spec, slots, .. } = self;
        for (slot, c) in slots.iter_mut().zip(spec.constraints()) {
            if !slot.events.is_disjoint_from(step) {
                refresh(slot, c.as_ref());
            }
        }
        Ok(())
    }

    /// Snapshot of the global constraint state (delegates to
    /// [`Specification::state_key`]).
    #[must_use]
    pub fn state_key(&self) -> StateKey {
        self.spec.state_key()
    }

    /// Restores a state produced by [`state_key`](CompiledSpec::state_key)
    /// and re-syncs every slot whose local state changed. Previously
    /// visited states hit the formula memo, so winding exploration back
    /// and forth does not re-lower anything.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidStateKey`] if the key does not
    /// match the constraint population.
    pub fn restore(&mut self, key: &StateKey) -> Result<(), KernelError> {
        self.spec.restore(key)?;
        self.resync();
        Ok(())
    }

    /// Resets every constraint to its initial state.
    pub fn reset(&mut self) {
        self.spec.reset();
        self.resync();
    }

    /// Explores the reachable scheduling state-space from the *current*
    /// state (restored afterwards). See the module docs of
    /// [`explorer`](crate::StateSpace) for the graph's semantics.
    #[must_use]
    pub fn explore(&mut self, options: &ExploreOptions) -> StateSpace {
        explore_compiled(self, options)
    }

    /// Re-syncs every slot against the constraint's actual local state.
    fn resync(&mut self) {
        let Self { spec, slots, .. } = self;
        for (slot, c) in slots.iter_mut().zip(spec.constraints()) {
            refresh(slot, c.as_ref());
        }
    }
}

impl From<Specification> for CompiledSpec {
    fn from(spec: Specification) -> Self {
        CompiledSpec::new(spec)
    }
}

/// Brings `slot` up to date with `c`'s current state, lowering the
/// formula only on the first visit of that state.
fn refresh(slot: &mut Slot, c: &dyn moccml_kernel::Constraint) {
    let key = c.state_key();
    if key == slot.key {
        return;
    }
    let formula = slot
        .memo
        .entry(key.clone())
        .or_insert_with(|| Arc::new(c.current_formula().simplify()));
    slot.formula = Arc::clone(formula);
    slot.key = key;
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_ccsl::{Alternation, Precedence, SubClock};
    use moccml_kernel::Universe;

    fn alternating() -> (Specification, EventId, EventId) {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        (spec, a, b)
    }

    #[test]
    #[allow(deprecated)]
    fn matches_legacy_solver_along_a_run() {
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("mix", u);
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<c", b, c).with_bound(2)));
        let mut compiled = CompiledSpec::compile(&spec);
        let options = SolverOptions::default();
        for _ in 0..8 {
            let fast = compiled.acceptable_steps(&options);
            let slow = crate::solver::acceptable_steps(&spec, &options);
            assert_eq!(fast, slow);
            let Some(step) = fast.first().cloned() else {
                break;
            };
            compiled.fire(&step).expect("acceptable");
            spec.fire(&step).expect("acceptable");
        }
    }

    #[test]
    fn fire_refreshes_only_touched_slots() {
        let (spec, a, _) = alternating();
        let mut compiled = CompiledSpec::new(spec);
        let initial = compiled.cached_formula_count();
        assert_eq!(initial, 1);
        compiled.fire(&Step::from_events([a])).expect("fires");
        // the alternation moved to its second state: one new memo entry
        assert_eq!(compiled.cached_formula_count(), 2);
    }

    #[test]
    fn restore_hits_the_memo() {
        let (spec, a, b) = alternating();
        let mut compiled = CompiledSpec::new(spec);
        let start = compiled.state_key();
        compiled.fire(&Step::from_events([a])).expect("fires");
        compiled.fire(&Step::from_events([b])).expect("fires");
        let after_cycle = compiled.cached_formula_count();
        // wind back and forth: the memo must not grow
        for _ in 0..4 {
            compiled.restore(&start).expect("restores");
            compiled.fire(&Step::from_events([a])).expect("fires");
        }
        assert_eq!(compiled.cached_formula_count(), after_cycle);
    }

    #[test]
    fn reset_returns_to_initial_answers() {
        let (spec, a, _) = alternating();
        let mut compiled = CompiledSpec::new(spec);
        let options = SolverOptions::default();
        let initial = compiled.acceptable_steps(&options);
        compiled.fire(&Step::from_events([a])).expect("fires");
        assert_ne!(compiled.acceptable_steps(&options), initial);
        compiled.reset();
        assert_eq!(compiled.acceptable_steps(&options), initial);
    }

    #[test]
    fn accepts_agrees_with_enumeration() {
        let (spec, a, b) = alternating();
        let compiled = CompiledSpec::new(spec);
        assert!(compiled.accepts(&Step::from_events([a])));
        assert!(!compiled.accepts(&Step::from_events([b])));
        assert!(compiled.accepts(&Step::new()), "stuttering is acceptable");
    }

    #[test]
    fn into_specification_round_trips_state() {
        let (spec, a, _) = alternating();
        let mut compiled = CompiledSpec::new(spec);
        compiled.fire(&Step::from_events([a])).expect("fires");
        let key = compiled.state_key();
        let spec = compiled.into_specification();
        assert_eq!(spec.state_key(), key);
    }
}
