//! [`Policy`]: the open strategy interface for picking one acceptable
//! step among many.
//!
//! The paper leaves the choice to the engine ("for each step, one or
//! several event(s) can occur"). The seed shipped a closed enum; this
//! module opens it: any `Policy` implementation can be plugged into an
//! [`Engine`](crate::Engine) session, and the five historical variants
//! ship as provided implementations — [`Random`], [`MaxParallel`],
//! [`MinSerial`], [`Lexicographic`] and [`SafeMaxParallel`].

use crate::cursor::Cursor;
use crate::rng::SplitMix64;
use crate::solver::SolverOptions;
use moccml_kernel::{Specification, Step};
use std::fmt;

/// What a policy sees when asked to choose: the sorted candidate list
/// and a bounded lookahead into successor configurations, implemented
/// on the session's [`Cursor`] with `state_key()`/`restore()`
/// snapshots (no specification cloning).
pub struct PolicyContext<'a> {
    candidates: &'a [Step],
    cursor: &'a mut Cursor,
    solver: &'a SolverOptions,
}

impl<'a> PolicyContext<'a> {
    pub(crate) fn new(
        candidates: &'a [Step],
        cursor: &'a mut Cursor,
        solver: &'a SolverOptions,
    ) -> Self {
        PolicyContext {
            candidates,
            cursor,
            solver,
        }
    }

    /// The acceptable steps of the current configuration, in the
    /// solver's deterministic sorted order. Never empty: the engine
    /// reports a deadlock itself instead of consulting the policy.
    #[must_use]
    pub fn candidates(&self) -> &[Step] {
        self.candidates
    }

    /// The solver options of the running session (lookahead uses the
    /// same options as the main enumeration).
    #[must_use]
    pub fn solver(&self) -> &SolverOptions {
        self.solver
    }

    /// Read access to the driven specification (event names, universe).
    #[must_use]
    pub fn specification(&self) -> &Specification {
        self.cursor.specification()
    }

    /// One-step lookahead: would firing `candidate` leave a
    /// configuration that still admits an acceptable **non-empty**
    /// step? (The stuttering step is acceptable in every state, so
    /// counting it would make the lookahead vacuous — it is excluded
    /// regardless of the session's `include_empty` setting.)
    ///
    /// Implemented as snapshot → fire → query → restore on the
    /// session's cursor; thanks to the program-wide formula memo the
    /// round trip does no formula lowering after the first visit of a
    /// state. Returns `false` for a step the current state rejects.
    pub fn successor_admits_step(&mut self, candidate: &Step) -> bool {
        if !self.cursor.accepts(candidate) {
            return false;
        }
        let lookahead = self.solver.clone().with_empty(false);
        let snapshot = self.cursor.state_key();
        self.cursor
            .fire(candidate)
            .expect("accepted candidate fires");
        let admits = !self.cursor.acceptable_steps(&lookahead).is_empty();
        self.cursor
            .restore(&snapshot)
            .expect("own snapshot restores");
        admits
    }
}

impl fmt::Debug for PolicyContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyContext")
            .field("candidates", &self.candidates.len())
            .finish_non_exhaustive()
    }
}

/// Strategy for picking one step among the acceptable ones.
///
/// Implementations return the *index* of the chosen candidate in
/// [`PolicyContext::candidates`]; returning `None` halts the run (the
/// provided policies never do — the engine only consults a policy when
/// at least one candidate exists).
pub trait Policy: fmt::Debug + Send {
    /// Short human-readable name, used in traces and diagnostics.
    fn name(&self) -> &str;

    /// Picks the index of one candidate step.
    fn choose(&mut self, ctx: &mut PolicyContext<'_>) -> Option<usize>;

    /// Rewinds any internal state (e.g. a PRNG) to its initial value;
    /// called by [`Engine::reset`](crate::Engine::reset).
    fn reset(&mut self) {}
}

/// Uniformly random among the acceptable steps, deterministic for a
/// given seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Random {
    seed: u64,
    rng: SplitMix64,
}

impl Random {
    /// A random policy with the given PRNG seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Random {
            seed,
            rng: SplitMix64::new(seed),
        }
    }
}

impl Policy for Random {
    fn name(&self) -> &str {
        "random"
    }
    fn choose(&mut self, ctx: &mut PolicyContext<'_>) -> Option<usize> {
        Some(self.rng.next_below(ctx.candidates().len()))
    }
    fn reset(&mut self) {
        self.rng = SplitMix64::new(self.seed);
    }
}

/// The acceptable step with the most events (ASAP / maximal
/// parallelism; ties broken by step order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxParallel;

impl Policy for MaxParallel {
    fn name(&self) -> &str {
        "max-parallel"
    }
    fn choose(&mut self, ctx: &mut PolicyContext<'_>) -> Option<usize> {
        ctx.candidates()
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| s.len())
            .map(|(i, _)| i)
    }
}

/// The acceptable non-empty step with the fewest events (interleaving
/// semantics; ties broken by step order).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinSerial;

impl Policy for MinSerial {
    fn name(&self) -> &str {
        "min-serial"
    }
    fn choose(&mut self, ctx: &mut PolicyContext<'_>) -> Option<usize> {
        // skip the stuttering step (a session with `include_empty` may
        // offer it): this policy picks the smallest step that makes
        // progress, falling back to {} only when it is the sole option
        ctx.candidates()
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .min_by_key(|(_, s)| s.len())
            .map(|(i, _)| i)
            .or(Some(0))
    }
}

/// The first acceptable step in the solver's deterministic order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lexicographic;

impl Policy for Lexicographic {
    fn name(&self) -> &str {
        "lexicographic"
    }
    fn choose(&mut self, _ctx: &mut PolicyContext<'_>) -> Option<usize> {
        Some(0)
    }
}

/// Like [`MaxParallel`], but with one-step deadlock avoidance: prefers
/// the largest step whose successor configuration still admits a step.
/// Falls back to plain max-parallel when every choice wedges.
///
/// The seed implementation cloned the entire specification per
/// candidate per step; this one uses the compiled
/// `state_key()`/`restore()` lookahead of
/// [`PolicyContext::successor_admits_step`] — same chosen schedule,
/// no cloning.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SafeMaxParallel;

impl Policy for SafeMaxParallel {
    fn name(&self) -> &str {
        "safe-max-parallel"
    }
    fn choose(&mut self, ctx: &mut PolicyContext<'_>) -> Option<usize> {
        let mut by_size: Vec<usize> = (0..ctx.candidates().len()).collect();
        // stable sort: candidates of equal size keep the solver's order,
        // matching the seed's tie-breaking exactly
        by_size.sort_by_key(|&i| std::cmp::Reverse(ctx.candidates()[i].len()));
        for &i in &by_size {
            let candidate = ctx.candidates()[i].clone();
            if ctx.successor_admits_step(&candidate) {
                return Some(i);
            }
        }
        by_size.first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use moccml_ccsl::{Alternation, SubClock};
    use moccml_kernel::Universe;

    fn subclock_spec() -> Specification {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("sub", u);
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        spec
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(MaxParallel.name(), "max-parallel");
        assert_eq!(MinSerial.name(), "min-serial");
        assert_eq!(Lexicographic.name(), "lexicographic");
        assert_eq!(SafeMaxParallel.name(), "safe-max-parallel");
        assert_eq!(Random::new(9).name(), "random");
    }

    #[test]
    fn max_parallel_picks_biggest_min_serial_smallest() {
        let mut max = Engine::builder(subclock_spec()).policy(MaxParallel).build();
        assert_eq!(max.step().expect("step").len(), 2); // {a,b}
        let mut min = Engine::builder(subclock_spec()).policy(MinSerial).build();
        assert_eq!(min.step().expect("step").len(), 1); // {b}
    }

    #[test]
    fn min_serial_skips_the_empty_step() {
        use crate::solver::SolverOptions;
        let mut engine = Engine::builder(subclock_spec())
            .policy(MinSerial)
            .solver(SolverOptions::default().with_empty(true))
            .build();
        // candidates are [{}, {b}, {a,b}]: the documented choice is the
        // smallest *non-empty* step
        assert_eq!(engine.step().expect("step").len(), 1);
    }

    #[test]
    fn random_resets_with_its_seed() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let mut engine = Engine::builder(spec).policy(Random::new(3)).build();
        let first = engine.run(8).schedule;
        engine.reset();
        assert_eq!(engine.run(8).schedule, first);
    }

    #[test]
    fn custom_policies_plug_in() {
        /// Picks the last candidate — not expressible with the old enum.
        #[derive(Debug)]
        struct Last;
        impl Policy for Last {
            fn name(&self) -> &str {
                "last"
            }
            fn choose(&mut self, ctx: &mut PolicyContext<'_>) -> Option<usize> {
                Some(ctx.candidates().len() - 1)
            }
        }
        let mut engine = Engine::builder(subclock_spec()).policy(Last).build();
        // sorted candidates of a⊆b are [{b}, {a,b}]: last is {a,b}
        assert_eq!(engine.step().expect("step").len(), 2);
    }
}
