//! [`Engine`]: a compiled execution session over one specification.
//!
//! This is the paper's "generic execution engine" (Fig. 1) as a single
//! configured object: the specification is compiled once into an
//! immutable [`Program`], the session drives its own [`Cursor`] over
//! it, a pluggable [`Policy`] picks among acceptable steps,
//! [`Observer`]s stream every fired step, and simulation, exploration
//! and the analysis queries all run on the same compiled program — no
//! re-lowering anywhere in the hot loop.

use crate::cursor::Cursor;
use crate::explorer::{ExploreOptions, StateSpace};
use crate::observer::Observer;
use crate::policy::{Lexicographic, Policy, PolicyContext};
use crate::program::Program;
use crate::solver::SolverOptions;
use moccml_kernel::{Schedule, Specification, Step};
use std::fmt;
use std::sync::Arc;

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// The schedule prefix that was executed.
    pub schedule: Schedule,
    /// `true` if the run stopped because no non-empty step was
    /// acceptable.
    pub deadlocked: bool,
    /// Number of steps executed (equals `schedule.len()`).
    pub steps_taken: usize,
}

/// A configured execution session: a cursor over a compiled program +
/// policy + solver options + observers.
///
/// Built with [`Engine::builder`]:
///
/// ```
/// use moccml_ccsl::Alternation;
/// use moccml_engine::{Engine, MetricsObserver, Random, SolverOptions};
/// use moccml_kernel::{Specification, Universe};
///
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let mut spec = Specification::new("alt", u);
/// spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
///
/// let metrics = MetricsObserver::new();
/// let mut engine = Engine::builder(spec)
///     .policy(Random::new(2015))
///     .solver(SolverOptions::default())
///     .observer(metrics.clone())
///     .build();
/// let report = engine.run(10);
/// assert_eq!(report.steps_taken, 10);
/// assert_eq!(metrics.snapshot().steps, 10);
/// ```
pub struct Engine {
    cursor: Cursor,
    policy: Box<dyn Policy>,
    solver: SolverOptions,
    observers: Vec<Box<dyn Observer>>,
    steps_taken: usize,
}

impl Engine {
    /// Starts configuring a session over `spec` (compiles it).
    #[must_use]
    pub fn builder(spec: Specification) -> EngineBuilder {
        Self::from_program(&Program::new(spec))
    }

    /// Starts configuring a session over an already compiled program.
    /// Sessions created this way share the program's formula memo with
    /// every other cursor of that program.
    #[must_use]
    pub fn from_program(program: &Arc<Program>) -> EngineBuilder {
        EngineBuilder {
            cursor: program.cursor(),
            policy: None,
            solver: SolverOptions::default(),
            observers: Vec::new(),
        }
    }

    /// Read access to the driven specification (in its current state).
    #[must_use]
    pub fn specification(&self) -> &Specification {
        self.cursor.specification()
    }

    /// The compiled program this session executes.
    #[must_use]
    pub fn program(&self) -> &Arc<Program> {
        self.cursor.program()
    }

    /// The session's cursor (its current execution position).
    #[must_use]
    pub fn cursor(&self) -> &Cursor {
        &self.cursor
    }

    /// The session's solver options.
    #[must_use]
    pub fn solver(&self) -> &SolverOptions {
        &self.solver
    }

    /// Steps fired since the session started (or was last reset).
    #[must_use]
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// The acceptable steps of the current configuration, on the
    /// compiled path.
    #[must_use]
    pub fn acceptable_steps(&self) -> Vec<Step> {
        self.cursor.acceptable_steps(&self.solver)
    }

    /// Picks and fires one step. Returns the step, or `None` when no
    /// step is acceptable (observers get
    /// [`on_deadlock`](Observer::on_deadlock)) or the policy declines.
    pub fn step(&mut self) -> Option<Step> {
        let mut candidates = self.cursor.acceptable_steps(&self.solver);
        if candidates.is_empty() {
            for o in &mut self.observers {
                o.on_deadlock(self.steps_taken);
            }
            return None;
        }
        let chosen = {
            let mut ctx = PolicyContext::new(&candidates, &mut self.cursor, &self.solver);
            self.policy.choose(&mut ctx)?
        };
        assert!(
            chosen < candidates.len(),
            "policy `{}` chose candidate {chosen} of {}",
            self.policy.name(),
            candidates.len()
        );
        let step = candidates.swap_remove(chosen);
        self.cursor
            .fire(&step)
            .expect("solver only returns acceptable steps");
        for o in &mut self.observers {
            o.on_step(self.steps_taken, &step);
        }
        self.steps_taken += 1;
        Some(step)
    }

    /// Runs up to `max_steps` steps, stopping early on deadlock or
    /// when the policy declines to choose. Only a genuine deadlock (no
    /// acceptable step) sets
    /// [`deadlocked`](SimulationReport::deadlocked); a policy returning
    /// `None` merely ends the run.
    pub fn run(&mut self, max_steps: usize) -> SimulationReport {
        let mut schedule = Schedule::new();
        let mut deadlocked = false;
        for _ in 0..max_steps {
            match self.step() {
                Some(step) => schedule.push(step),
                None => {
                    deadlocked = self.acceptable_steps().is_empty();
                    break;
                }
            }
        }
        let steps_taken = schedule.len();
        SimulationReport {
            schedule,
            deadlocked,
            steps_taken,
        }
    }

    /// Explores the reachable scheduling state-space from the current
    /// configuration. The session itself is untouched — exploration
    /// runs on its own worker cursors over the shared program. The
    /// solver configuration comes from `options`
    /// ([`ExploreOptions::solver`]), not from the session's simulation
    /// options.
    #[must_use]
    pub fn explore(&self, options: &ExploreOptions) -> StateSpace {
        self.cursor.explore(options)
    }

    /// Resets the specification, the policy (PRNG seeds) and the step
    /// counter to the initial state, and restarts the observers.
    pub fn reset(&mut self) {
        self.cursor.reset();
        self.policy.reset();
        self.steps_taken = 0;
        for o in &mut self.observers {
            o.on_session_start(self.cursor.specification());
        }
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("spec", &self.cursor.specification().name())
            .field("policy", &self.policy.name())
            .field("solver", &self.solver)
            .field("observers", &self.observers.len())
            .field("steps_taken", &self.steps_taken)
            .finish()
    }
}

/// Builder for an [`Engine`] session. Defaults: [`Lexicographic`]
/// policy, [`SolverOptions::default`], no observers.
pub struct EngineBuilder {
    cursor: Cursor,
    policy: Option<Box<dyn Policy>>,
    solver: SolverOptions,
    observers: Vec<Box<dyn Observer>>,
}

impl EngineBuilder {
    /// Sets the step-choice policy.
    #[must_use]
    pub fn policy(mut self, policy: impl Policy + 'static) -> Self {
        self.policy = Some(Box::new(policy));
        self
    }

    /// Sets an already boxed policy (for heterogeneous policy lists).
    #[must_use]
    pub fn policy_boxed(mut self, policy: Box<dyn Policy>) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Sets the solver options used for simulation stepping.
    #[must_use]
    pub fn solver(mut self, solver: SolverOptions) -> Self {
        self.solver = solver;
        self
    }

    /// Registers an observer (may be called repeatedly).
    #[must_use]
    pub fn observer(mut self, observer: impl Observer + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Finishes the session; notifies every observer of the start.
    #[must_use]
    pub fn build(self) -> Engine {
        let mut engine = Engine {
            cursor: self.cursor,
            policy: self.policy.unwrap_or_else(|| Box::new(Lexicographic)),
            solver: self.solver,
            observers: self.observers,
            steps_taken: 0,
        };
        for o in &mut engine.observers {
            o.on_session_start(engine.cursor.specification());
        }
        engine
    }
}

impl fmt::Debug for EngineBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineBuilder")
            .field("spec", &self.cursor.specification().name())
            .field("observers", &self.observers.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{MaxParallel, Random};
    use moccml_ccsl::{Alternation, Precedence, SubClock};
    use moccml_kernel::Universe;

    fn alternating() -> (Specification, moccml_kernel::EventId) {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        (spec, a)
    }

    #[test]
    fn default_policy_is_lexicographic() {
        let (spec, a) = alternating();
        let mut engine = Engine::builder(spec).build();
        let step = engine.step().expect("step");
        assert!(step.contains(a));
        assert_eq!(engine.steps_taken(), 1);
    }

    #[test]
    fn run_detects_deadlock() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("dead", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<a", b, a)));
        let report = Engine::builder(spec).build().run(10);
        assert!(report.deadlocked);
        assert_eq!(report.steps_taken, 0);
    }

    #[test]
    fn explore_leaves_the_session_state_alone() {
        let (spec, _) = alternating();
        let mut engine = Engine::builder(spec).policy(MaxParallel).build();
        let before = engine.acceptable_steps();
        let space = engine.explore(&ExploreOptions::default());
        assert_eq!(space.state_count(), 2);
        assert_eq!(engine.acceptable_steps(), before);
        // mid-run exploration is rooted at the session's current state
        engine.step().expect("step");
        let rooted = engine.explore(&ExploreOptions::default());
        assert_eq!(
            rooted.states()[rooted.initial()],
            engine.cursor().state_key()
        );
    }

    #[test]
    fn sessions_over_one_program_share_the_memo() {
        let (spec, _) = alternating();
        let program = Program::new(spec);
        let mut first = Engine::from_program(&program).build();
        first.run(6);
        let grown = program.cached_formula_count();
        let mut second = Engine::from_program(&program).build();
        second.run(6);
        assert_eq!(program.cached_formula_count(), grown);
    }

    #[test]
    fn reset_restarts_policy_and_counter() {
        let (spec, _) = alternating();
        let mut engine = Engine::builder(spec).policy(Random::new(5)).build();
        let first = engine.run(6).schedule;
        assert_eq!(engine.steps_taken(), 6);
        engine.reset();
        assert_eq!(engine.steps_taken(), 0);
        assert_eq!(engine.run(6).schedule, first);
    }

    #[test]
    fn policy_decline_is_not_a_deadlock() {
        /// Halts after two choices.
        #[derive(Debug)]
        struct Budgeted(usize);
        impl crate::Policy for Budgeted {
            fn name(&self) -> &str {
                "budgeted"
            }
            fn choose(&mut self, _ctx: &mut crate::PolicyContext<'_>) -> Option<usize> {
                if self.0 == 0 {
                    return None;
                }
                self.0 -= 1;
                Some(0)
            }
        }
        let (spec, _) = alternating();
        let report = Engine::builder(spec).policy(Budgeted(2)).build().run(10);
        assert_eq!(report.steps_taken, 2);
        assert!(
            !report.deadlocked,
            "a declining policy must not be reported as a deadlock"
        );
    }

    #[test]
    fn solver_options_apply_to_stepping() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("sub", u);
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        // with the empty step included, lexicographic picks {} forever
        let mut engine = Engine::builder(spec)
            .solver(SolverOptions::default().with_empty(true))
            .build();
        assert!(engine.step().expect("empty step is a candidate").is_empty());
    }

    #[test]
    fn debug_formats_name_and_policy() {
        let (spec, _) = alternating();
        let engine = Engine::builder(spec).policy(MaxParallel).build();
        let text = format!("{engine:?}");
        assert!(text.contains("alt") && text.contains("max-parallel"));
    }
}
