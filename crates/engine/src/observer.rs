//! [`Observer`]: streaming hooks over an [`Engine`](crate::Engine)
//! session.
//!
//! The seed exported artefacts *post-hoc*: run a simulation, keep the
//! whole [`Schedule`](moccml_kernel::Schedule), then render it. An
//! observer instead receives every fired step as it happens, so VCD
//! waveforms ([`VcdObserver`]) and run metrics ([`MetricsObserver`])
//! stream during the run — no second pass, no buffered schedule needed
//! for arbitrarily long sessions.
//!
//! Provided observers are cheap clones sharing one buffer
//! (`Arc<Mutex<_>>`): register one clone with the engine builder and
//! keep the other to read the result after (or during) the run.

use moccml_kernel::{Specification, Step};
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Hooks called by the engine as a session progresses. All methods have
/// empty defaults; implement only what you need.
pub trait Observer: Send {
    /// Called once when the session is built (and again after a
    /// [`reset`](crate::Engine::reset)), with the driven specification.
    fn on_session_start(&mut self, _spec: &Specification) {}

    /// Called after step number `index` (0-based) was fired.
    fn on_step(&mut self, _index: usize, _step: &Step) {}

    /// Called when the engine finds no acceptable step at step `index`.
    fn on_deadlock(&mut self, _index: usize) {}
}

/// VCD identifier code for the event with the given index: printable
/// ASCII starting at `'!'`, base 94 — shared between the streaming
/// observer and the post-hoc exporter so both emit identical files.
pub(crate) fn vcd_code(index: usize) -> String {
    let mut n = index;
    let mut s = String::new();
    loop {
        s.push(char::from(b'!' + (n % 94) as u8));
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

#[derive(Debug, Default)]
struct VcdBuffer {
    header: String,
    body: String,
    steps: usize,
}

/// Streams a session as a Value Change Dump (IEEE 1364): one 1-bit wire
/// per event, pulsed high for one half-timestep at each occurrence.
/// Produces byte-identical output to
/// [`schedule_to_vcd`](crate::schedule_to_vcd) over the same schedule,
/// without ever materialising the schedule.
///
/// # Example
///
/// ```
/// use moccml_ccsl::Alternation;
/// use moccml_engine::{Engine, Lexicographic, VcdObserver};
/// use moccml_kernel::{Specification, Universe};
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let mut spec = Specification::new("alt", u);
/// spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
///
/// let vcd = VcdObserver::new("alt");
/// let mut engine = Engine::builder(spec)
///     .policy(Lexicographic)
///     .observer(vcd.clone())
///     .build();
/// engine.run(4);
/// assert!(vcd.render().contains("$var wire 1"));
/// ```
#[derive(Debug, Clone)]
pub struct VcdObserver {
    module: String,
    buffer: Arc<Mutex<VcdBuffer>>,
}

impl VcdObserver {
    /// A streaming VCD recorder labelling its scope `module`.
    #[must_use]
    pub fn new(module: &str) -> Self {
        VcdObserver {
            module: module.to_owned(),
            buffer: Arc::new(Mutex::new(VcdBuffer::default())),
        }
    }

    /// The VCD text recorded so far, closed with the final timestamp.
    /// Can be called mid-run; later steps keep appending.
    #[must_use]
    pub fn render(&self) -> String {
        let buf = self.buffer.lock().expect("observer buffer lock");
        format!("{}{}#{}\n", buf.header, buf.body, 2 * buf.steps)
    }
}

impl Observer for VcdObserver {
    fn on_session_start(&mut self, spec: &Specification) {
        let mut buf = self.buffer.lock().expect("observer buffer lock");
        *buf = VcdBuffer::default();
        let out = &mut buf.header;
        let _ = writeln!(out, "$date MoCCML reproduction $end");
        let _ = writeln!(out, "$version moccml-engine $end");
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for (id, name) in spec.universe().iter_named() {
            let _ = writeln!(
                out,
                "$var wire 1 {} {} $end",
                vcd_code(id.index()),
                name.replace(' ', "_")
            );
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        let _ = writeln!(out, "$dumpvars");
        for id in spec.universe().iter() {
            let _ = writeln!(out, "0{}", vcd_code(id.index()));
        }
        let _ = writeln!(out, "$end");
    }

    fn on_step(&mut self, index: usize, step: &Step) {
        let mut buf = self.buffer.lock().expect("observer buffer lock");
        let out = &mut buf.body;
        let _ = writeln!(out, "#{}", 2 * index);
        for id in step.iter() {
            let _ = writeln!(out, "1{}", vcd_code(id.index()));
        }
        let _ = writeln!(out, "#{}", 2 * index + 1);
        for id in step.iter() {
            let _ = writeln!(out, "0{}", vcd_code(id.index()));
        }
        buf.steps = buf.steps.max(index + 1);
    }
}

/// Aggregate metrics of a session, streamed by [`MetricsObserver`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Steps fired so far.
    pub steps: usize,
    /// Total event occurrences across all steps.
    pub occurrences: usize,
    /// Occurrence count per event, indexed by
    /// [`EventId::index`](moccml_kernel::EventId::index).
    pub per_event: Vec<usize>,
    /// Largest step cardinality seen.
    pub max_parallelism: usize,
    /// Number of deadlock reports.
    pub deadlocks: usize,
}

impl Metrics {
    /// Mean events per fired step (0.0 before the first step).
    #[must_use]
    pub fn mean_parallelism(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.occurrences as f64 / self.steps as f64
        }
    }
}

/// Streams run metrics: step count, per-event occurrence counts,
/// attainable parallelism, deadlocks — the simulation half of the
/// paper's quantitative tables, computed without keeping the schedule.
#[derive(Debug, Clone, Default)]
pub struct MetricsObserver {
    metrics: Arc<Mutex<Metrics>>,
}

impl MetricsObserver {
    /// A fresh metrics recorder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the metrics accumulated so far.
    #[must_use]
    pub fn snapshot(&self) -> Metrics {
        self.metrics.lock().expect("observer metrics lock").clone()
    }
}

impl Observer for MetricsObserver {
    fn on_session_start(&mut self, spec: &Specification) {
        let mut m = self.metrics.lock().expect("observer metrics lock");
        *m = Metrics::default();
        m.per_event = vec![0; spec.universe().len()];
    }

    fn on_step(&mut self, _index: usize, step: &Step) {
        let mut m = self.metrics.lock().expect("observer metrics lock");
        m.steps += 1;
        m.max_parallelism = m.max_parallelism.max(step.len());
        for e in step.iter() {
            m.occurrences += 1;
            if e.index() >= m.per_event.len() {
                m.per_event.resize(e.index() + 1, 0);
            }
            m.per_event[e.index()] += 1;
        }
    }

    fn on_deadlock(&mut self, _index: usize) {
        let mut m = self.metrics.lock().expect("observer metrics lock");
        m.deadlocks += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::export::schedule_to_vcd;
    use crate::policy::Lexicographic;
    use moccml_ccsl::{Alternation, Precedence};
    use moccml_kernel::Universe;

    fn alternating() -> Specification {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        spec
    }

    #[test]
    fn streaming_vcd_matches_posthoc_export() {
        let spec = alternating();
        let vcd = VcdObserver::new("m");
        let mut engine = Engine::builder(spec)
            .policy(Lexicographic)
            .observer(vcd.clone())
            .build();
        let report = engine.run(6);
        let posthoc = schedule_to_vcd(&report.schedule, engine.specification().universe(), "m");
        assert_eq!(vcd.render(), posthoc);
    }

    #[test]
    fn metrics_stream_counts_and_parallelism() {
        let spec = alternating();
        let metrics = MetricsObserver::new();
        let mut engine = Engine::builder(spec)
            .policy(Lexicographic)
            .observer(metrics.clone())
            .build();
        engine.run(6);
        let m = metrics.snapshot();
        assert_eq!(m.steps, 6);
        assert_eq!(m.occurrences, 6);
        assert_eq!(m.max_parallelism, 1);
        assert_eq!(m.per_event, vec![3, 3]);
        assert_eq!(m.deadlocks, 0);
        assert!((m.mean_parallelism() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn metrics_report_deadlocks() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("dead", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<a", b, a)));
        let metrics = MetricsObserver::new();
        let mut engine = Engine::builder(spec)
            .policy(Lexicographic)
            .observer(metrics.clone())
            .build();
        let report = engine.run(4);
        assert!(report.deadlocked);
        assert_eq!(metrics.snapshot().deadlocks, 1);
        assert_eq!(metrics.snapshot().steps, 0);
    }

    #[test]
    fn vcd_render_is_valid_on_the_empty_run() {
        let vcd = VcdObserver::new("m");
        // never attached to an engine: header empty, trailing timestamp
        assert_eq!(vcd.render(), "#0\n");
    }
}
