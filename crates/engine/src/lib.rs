//! # moccml-engine
//!
//! The *generic execution engine* of the paper's Fig. 1: it takes an
//! execution model (a [`Specification`](moccml_kernel::Specification) —
//! events plus instantiated constraints) as its configuration and offers
//! **simulation** and **exhaustive exploration** of any conforming
//! model.
//!
//! The engine is organised around three concepts:
//!
//! * [`Program`] — the *immutable* half of a compiled specification:
//!   interned constrained-event list, per-constraint event footprints,
//!   and the `(constraint, local state) → lowered formula` memo behind
//!   interior sharding. A program is `Send + Sync` and shared by every
//!   execution over it — across threads, all cursors hit one cache.
//! * [`Cursor`] — the *mutable* per-worker half: one execution
//!   position (constraint states + currently selected formulas) with
//!   `fire` / `restore` / `state_key` / `acceptable_steps`. Cursors
//!   are cheap; the parallel explorer hands one to every worker.
//! * [`Engine`] — a configured session (a cursor plus policy, solver
//!   options and observers): a pluggable [`Policy`] (open trait;
//!   [`Random`], [`MaxParallel`], [`MinSerial`], [`Lexicographic`] and
//!   [`SafeMaxParallel`] are provided), [`SolverOptions`] for the
//!   pruned/naive ablation, and streaming [`Observer`]s
//!   ([`VcdObserver`], [`MetricsObserver`]) that receive every fired
//!   step as it happens.
//!
//! [`Simulator`] is a thin wrapper over [`Engine`] implementing
//! `Iterator<Item = Step>`; [`Program::explore`] / [`Cursor::explore`]
//! / [`Engine::explore`] (or the [`explore`] free function) build the
//! reachable scheduling state-space ([`StateSpace`]) whose quantitative
//! metrics the paper's PAM study reports — breadth first, across
//! [`ExploreOptions::workers`] threads, with a **byte-identical result
//! for every worker count**. [`Program::explore_with`] additionally
//! streams every absorbed transition, deadlock and level boundary to an
//! [`ExploreVisitor`] — in canonical order, worker-count-independent —
//! which is the hook the `moccml-verify` crate checks temporal
//! properties through on the fly, with deterministic early stop. The
//! analysis queries ([`dead_events`], [`is_event_live`],
//! [`live_events`], [`shortest_path_to`], [`deadlock_witness`])
//! operate on the explored space.
//!
//! ## Example
//!
//! ```
//! use moccml_ccsl::Alternation;
//! use moccml_engine::{Engine, MetricsObserver, Random};
//! use moccml_kernel::{Specification, Universe};
//!
//! let mut u = Universe::new();
//! let a = u.event("a");
//! let b = u.event("b");
//! let mut spec = Specification::new("alt", u);
//! spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
//!
//! let metrics = MetricsObserver::new();
//! let mut engine = Engine::builder(spec)
//!     .policy(Random::new(42))
//!     .observer(metrics.clone())
//!     .build();
//!
//! // initially only {a} is acceptable (besides the excluded empty step)
//! assert_eq!(engine.acceptable_steps().len(), 1);
//! let report = engine.run(6);
//! assert!(!report.deadlocked);
//! assert_eq!(metrics.snapshot().steps, 6);
//! ```
//!
//! ## Migrating from 0.2 (`CompiledSpec`) and the 0.1 free functions
//!
//! The 0.2 `CompiledSpec` fused the immutable compiled artifacts with
//! the mutable run state; it is split into [`Program`] + [`Cursor`]:
//!
//! * `CompiledSpec::new(spec)` / `CompiledSpec::compile(&spec)` →
//!   [`Program::new`] / [`Program::compile`] (now returning
//!   `Arc<Program>`), then [`Program::cursor`] for a queryable
//!   position;
//! * `compiled.acceptable_steps(..)` / `fire` / `restore` /
//!   `state_key` / `reset` → the same methods on [`Cursor`];
//! * `compiled.explore(..)` → [`Program::explore`] (from the
//!   compile-time state) or [`Cursor::explore`] (from the cursor's
//!   current state);
//! * `Engine::from_compiled(compiled)` → [`Engine::from_program`].
//!
//! The 0.1 free functions `acceptable_steps(&spec, ..)` and
//! `explore(&spec, ..)` — deprecated shims that re-lowered every
//! formula per call — are **removed** as promised; compile a
//! [`Program`] once instead. (The [`explore`] name now takes a
//! `&Program`.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod cursor;
mod engine;
mod explorer;
mod export;
mod observer;
mod policy;
mod program;
mod rng;
mod simulator;
mod solver;

pub use analysis::{
    dead_events, deadlock_witness, is_event_fireable, is_event_live, live_events, shortest_path_to,
    Witness,
};
pub use cursor::{Cursor, StateExpansion};
pub use engine::{Engine, EngineBuilder, SimulationReport};
pub use explorer::{
    explore, ExploreMetrics, ExploreMonitor, ExploreOptions, ExploreVisitor, StateSpace,
    StateSpaceStats, VisitControl, PROGRESS_INTERVAL,
};
pub use export::{schedule_to_vcd, state_space_to_dot};
pub use observer::{Metrics, MetricsObserver, Observer, VcdObserver};
pub use policy::{
    Lexicographic, MaxParallel, MinSerial, Policy, PolicyContext, Random, SafeMaxParallel,
};
pub use program::Program;
pub use rng::SplitMix64;
pub use simulator::Simulator;
pub use solver::SolverOptions;
