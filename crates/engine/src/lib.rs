//! # moccml-engine
//!
//! The *generic execution engine* of the paper's Fig. 1: it takes an
//! execution model (a [`Specification`](moccml_kernel::Specification) —
//! events plus instantiated constraints) as its configuration and offers
//! **simulation** and **exhaustive exploration** of any conforming
//! model.
//!
//! * [`acceptable_steps`] enumerates the acceptable steps of the current
//!   configuration — the models of the conjunction of the constraints'
//!   boolean formulas (Sec. II-C). Pruned search is the default; the
//!   naive `2^n` enumeration is kept for the ablation benchmark.
//! * [`Simulator`] drives a run: at every step a [`Policy`] picks one of
//!   the acceptable steps, the engine fires it and records the schedule.
//! * [`explore`] builds the reachable scheduling state-space by
//!   breadth-first search over constraint state snapshots, yielding the
//!   quantitative results the paper's PAM study reports (state and
//!   transition counts, deadlocks, attainable parallelism).
//!
//! ## Example
//!
//! ```
//! use moccml_ccsl::Alternation;
//! use moccml_engine::{acceptable_steps, SolverOptions};
//! use moccml_kernel::{Specification, Universe};
//!
//! let mut u = Universe::new();
//! let a = u.event("a");
//! let b = u.event("b");
//! let mut spec = Specification::new("alt", u);
//! spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
//!
//! let steps = acceptable_steps(&spec, &SolverOptions::default());
//! // initially only {a} is acceptable (besides the excluded empty step)
//! assert_eq!(steps.len(), 1);
//! assert!(steps[0].contains(a));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod explorer;
mod export;
mod rng;
mod simulator;
mod solver;

pub use analysis::{
    dead_events, deadlock_witness, is_event_fireable, is_event_live, shortest_path_to, Witness,
};
pub use explorer::{explore, ExploreOptions, StateSpace, StateSpaceStats};
pub use export::{schedule_to_vcd, state_space_to_dot};
pub use rng::SplitMix64;
pub use simulator::{Policy, SimulationReport, Simulator};
pub use solver::{acceptable_steps, SolverOptions};
