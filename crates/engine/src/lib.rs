//! # moccml-engine
//!
//! The *generic execution engine* of the paper's Fig. 1: it takes an
//! execution model (a [`Specification`](moccml_kernel::Specification) —
//! events plus instantiated constraints) as its configuration and offers
//! **simulation** and **exhaustive exploration** of any conforming
//! model.
//!
//! The engine is organised around two concepts:
//!
//! * [`CompiledSpec`] — a specification *lowered once*: the
//!   constrained-event list is interned and each constraint's boolean
//!   formula (Sec. II-C) is cached per local state, so neither
//!   simulation steps nor exploration states ever re-lower the
//!   conjunction.
//! * [`Engine`] — a configured session over a compiled specification:
//!   a pluggable [`Policy`] (open trait; [`Random`], [`MaxParallel`],
//!   [`MinSerial`], [`Lexicographic`] and [`SafeMaxParallel`] are
//!   provided), [`SolverOptions`] for the pruned/naive ablation, and
//!   streaming [`Observer`]s ([`VcdObserver`], [`MetricsObserver`])
//!   that receive every fired step as it happens.
//!
//! [`Simulator`] is a thin wrapper over [`Engine`] implementing
//! `Iterator<Item = Step>`; [`CompiledSpec::explore`] /
//! [`Engine::explore`] build the reachable scheduling state-space
//! ([`StateSpace`]) whose quantitative metrics the paper's PAM study
//! reports, and the analysis queries ([`dead_events`],
//! [`is_event_live`], [`shortest_path_to`], [`deadlock_witness`])
//! operate on that explored space.
//!
//! ## Example
//!
//! ```
//! use moccml_ccsl::Alternation;
//! use moccml_engine::{Engine, MetricsObserver, Random};
//! use moccml_kernel::{Specification, Universe};
//!
//! let mut u = Universe::new();
//! let a = u.event("a");
//! let b = u.event("b");
//! let mut spec = Specification::new("alt", u);
//! spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
//!
//! let metrics = MetricsObserver::new();
//! let mut engine = Engine::builder(spec)
//!     .policy(Random::new(42))
//!     .observer(metrics.clone())
//!     .build();
//!
//! // initially only {a} is acceptable (besides the excluded empty step)
//! assert_eq!(engine.acceptable_steps().len(), 1);
//! let report = engine.run(6);
//! assert!(!report.deadlocked);
//! assert_eq!(metrics.snapshot().steps, 6);
//! ```
//!
//! ## Migrating from the 0.1 free functions
//!
//! The 0.1 entry points re-lowered every constraint formula on every
//! call; they remain as `#[deprecated]` shims for one release:
//!
//! * `acceptable_steps(&spec, &options)` →
//!   `CompiledSpec::new(spec).acceptable_steps(&options)` (compile
//!   once, query many times), or `engine.acceptable_steps()` inside a
//!   session;
//! * `explore(&spec, &options)` →
//!   `CompiledSpec::new(spec).explore(&options)` or
//!   `engine.explore(&options)`;
//! * `Policy` enum variants → the provided policy structs
//!   (`Policy::Random { seed }` → `Random::new(seed)`,
//!   `Policy::MaxParallel` → `MaxParallel`, …); custom strategies
//!   implement the [`Policy`] trait;
//! * post-hoc `schedule_to_vcd` stays for rendering stored schedules,
//!   but long-running sessions should stream through a [`VcdObserver`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod compiled;
mod engine;
mod explorer;
mod export;
mod observer;
mod policy;
mod rng;
mod simulator;
mod solver;

pub use analysis::{
    dead_events, deadlock_witness, is_event_fireable, is_event_live, shortest_path_to, Witness,
};
pub use compiled::CompiledSpec;
pub use engine::{Engine, EngineBuilder, SimulationReport};
pub use explorer::{ExploreOptions, StateSpace, StateSpaceStats};
pub use export::{schedule_to_vcd, state_space_to_dot};
pub use observer::{Metrics, MetricsObserver, Observer, VcdObserver};
pub use policy::{
    Lexicographic, MaxParallel, MinSerial, Policy, PolicyContext, Random, SafeMaxParallel,
};
pub use rng::SplitMix64;
pub use simulator::Simulator;
pub use solver::SolverOptions;

#[allow(deprecated)]
pub use explorer::explore;
#[allow(deprecated)]
pub use solver::acceptable_steps;
