//! The step solver: enumerating the acceptable steps of a configuration.
//!
//! Sec. II-C of the paper: with `n` events and no constraints there are
//! `2^n` possible steps; every constraint conjoins a boolean expression
//! that shrinks the set. The solver enumerates the models of the
//! conjunction over the *constrained* events (free events never appear
//! in any formula; each would merely double every answer, so they are
//! reported separately by
//! [`Specification::free_events`](moccml_kernel::Specification::free_events)).

use moccml_kernel::{EventId, Specification, Step, StepFormula};

/// Options controlling the step enumeration.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Include the empty (stuttering) step in the result. Defaults to
    /// `false`: simulation and exploration treat "nothing happens" as a
    /// non-step, and its acceptance is an invariant anyway.
    pub include_empty: bool,
    /// Prune the search with three-valued partial evaluation (default).
    /// `false` selects the naive `2^n` enumeration — kept only for the
    /// B3 ablation benchmark.
    pub prune: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            include_empty: false,
            prune: true,
        }
    }
}

impl SolverOptions {
    /// Options selecting the naive (unpruned) enumeration.
    #[must_use]
    pub fn naive() -> Self {
        SolverOptions {
            include_empty: false,
            prune: false,
        }
    }

    /// Builder-style toggle for including the empty step.
    #[must_use]
    pub fn with_empty(mut self, include: bool) -> Self {
        self.include_empty = include;
        self
    }
}

/// Enumerates every acceptable step of `spec` in its current state.
///
/// A step is acceptable iff it satisfies the conjunction of all
/// constraints' current formulas. Steps range over the constrained
/// events only; the result is sorted (by the `Ord` on [`Step`]) so the
/// output is deterministic.
///
/// # Example
///
/// ```
/// use moccml_ccsl::Exclusion;
/// use moccml_engine::{acceptable_steps, SolverOptions};
/// use moccml_kernel::{Specification, Universe};
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let mut spec = Specification::new("x", u);
/// spec.add_constraint(Box::new(Exclusion::new("a#b", [a, b])));
/// let steps = acceptable_steps(&spec, &SolverOptions::default());
/// assert_eq!(steps.len(), 2); // {a} and {b}, not {a,b}
/// ```
#[must_use]
pub fn acceptable_steps(spec: &Specification, options: &SolverOptions) -> Vec<Step> {
    let formula = spec.conjunction();
    let events: Vec<EventId> = spec.constrained_events().iter().collect();
    let mut out = Vec::new();
    if options.prune {
        let mut assigned = Step::new();
        let mut value = Step::new();
        prune_search(&formula, &events, 0, &mut assigned, &mut value, &mut out);
    } else {
        naive_search(&formula, &events, &mut out);
    }
    if !options.include_empty {
        out.retain(|s| !s.is_empty());
    }
    out.sort();
    out
}

fn prune_search(
    formula: &StepFormula,
    events: &[EventId],
    depth: usize,
    assigned: &mut Step,
    value: &mut Step,
    out: &mut Vec<Step>,
) {
    match formula.eval_partial(assigned, value) {
        moccml_kernel::Ternary::False => return,
        moccml_kernel::Ternary::True => {
            // every extension over the remaining events is a model
            enumerate_extensions(events, depth, value.clone(), out);
            return;
        }
        moccml_kernel::Ternary::Unknown => {}
    }
    if depth == events.len() {
        out.push(value.clone());
        return;
    }
    let e = events[depth];
    assigned.insert(e);
    // branch: event absent
    prune_search(formula, events, depth + 1, assigned, value, out);
    // branch: event present
    value.insert(e);
    prune_search(formula, events, depth + 1, assigned, value, out);
    value.remove(e);
    assigned.remove(e);
}

fn enumerate_extensions(events: &[EventId], depth: usize, base: Step, out: &mut Vec<Step>) {
    if depth == events.len() {
        out.push(base);
        return;
    }
    enumerate_extensions(events, depth + 1, base.clone(), out);
    let mut with = base;
    with.insert(events[depth]);
    enumerate_extensions(events, depth + 1, with, out);
}

fn naive_search(formula: &StepFormula, events: &[EventId], out: &mut Vec<Step>) {
    let n = events.len();
    assert!(n < 26, "naive enumeration is capped at 2^26 candidates");
    for mask in 0u64..(1u64 << n) {
        let step: Step = events
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &e)| e)
            .collect();
        if formula.eval(&step) {
            out.push(step);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_ccsl::{Coincidence, Exclusion, Precedence, SubClock};
    use moccml_kernel::Universe;

    fn three_events() -> (Specification, EventId, EventId, EventId) {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        let c = u.event("c");
        let spec = Specification::new("s", u);
        (spec, a, b, c)
    }

    #[test]
    fn unconstrained_spec_has_no_constrained_events() {
        let (spec, _, _, _) = three_events();
        // no constraints ⇒ no constrained events ⇒ only the empty step,
        // which is excluded by default
        assert!(acceptable_steps(&spec, &SolverOptions::default()).is_empty());
        let with_empty = acceptable_steps(&spec, &SolverOptions::default().with_empty(true));
        assert_eq!(with_empty.len(), 1);
        assert!(with_empty[0].is_empty());
    }

    #[test]
    fn each_constraint_shrinks_the_step_set() {
        // E2: monotone restriction (Sec. II-C) — over a fixed event set.
        let (mut spec, a, b, _) = three_events();
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        let s1 = acceptable_steps(&spec, &SolverOptions::default().with_empty(true));
        assert_eq!(s1.len(), 3); // {}, {b}, {a,b}
        spec.add_constraint(Box::new(Exclusion::new("a#b", [a, b])));
        let s2 = acceptable_steps(&spec, &SolverOptions::default().with_empty(true));
        assert_eq!(s2.len(), 2); // {}, {b}
        for s in &s2 {
            assert!(s1.contains(s), "adding constraints only removes steps");
        }
    }

    #[test]
    fn subclock_steps_match_implication() {
        let (mut spec, a, b, _) = three_events();
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        let steps = acceptable_steps(&spec, &SolverOptions::default());
        // over {a,b}: acceptable non-empty steps are {b}, {a,b}
        assert_eq!(steps.len(), 2);
        assert!(steps.contains(&Step::from_events([b])));
        assert!(steps.contains(&Step::from_events([a, b])));
    }

    #[test]
    fn pruned_and_naive_agree() {
        let (mut spec, a, b, c) = three_events();
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        spec.add_constraint(Box::new(Exclusion::new("a#c", [a, c])));
        spec.add_constraint(Box::new(Coincidence::new("b=c", b, c)));
        let pruned = acceptable_steps(&spec, &SolverOptions::default());
        let naive = acceptable_steps(&spec, &SolverOptions::naive());
        assert_eq!(pruned, naive);
    }

    #[test]
    fn stateful_constraint_changes_answers_after_fire() {
        let (mut spec, a, b, _) = three_events();
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let before = acceptable_steps(&spec, &SolverOptions::default());
        assert_eq!(before, vec![Step::from_events([a])]);
        spec.fire(&Step::from_events([a])).expect("fires");
        let after = acceptable_steps(&spec, &SolverOptions::default());
        // now b alone, a alone, or both are acceptable
        assert_eq!(after.len(), 3);
    }

    #[test]
    fn results_are_sorted_and_deduplicated_by_construction() {
        let (mut spec, a, b, c) = three_events();
        spec.add_constraint(Box::new(Exclusion::new("x", [a, b, c])));
        let steps = acceptable_steps(&spec, &SolverOptions::default());
        let mut sorted = steps.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(steps, sorted);
        assert_eq!(steps.len(), 3); // {a}, {b}, {c}
    }
}
