//! The step solver: enumerating the acceptable steps of a configuration.
//!
//! Sec. II-C of the paper: with `n` events and no constraints there are
//! `2^n` possible steps; every constraint conjoins a boolean expression
//! that shrinks the set. The solver enumerates the models of the
//! conjunction over the *constrained* events (free events never appear
//! in any formula; each would merely double every answer, so they are
//! reported separately by
//! [`Specification::free_events`](moccml_kernel::Specification::free_events)).
//!
//! The conjunction is represented as a *slice of per-constraint
//! formulas* rather than one materialised `And` node: that is what lets
//! a [`Program`](crate::Program) cache each constraint's lowered
//! formula independently and hand the solver a
//! [`Cursor`](crate::Cursor)'s cached slice with zero per-query
//! lowering work.

use moccml_kernel::{EventId, Step, StepFormula, Ternary};

/// Options controlling the step enumeration.
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Include the empty (stuttering) step in the result. Defaults to
    /// `false`: simulation and exploration treat "nothing happens" as a
    /// non-step, and its acceptance is an invariant anyway.
    pub include_empty: bool,
    /// Prune the search with three-valued partial evaluation (default).
    /// `false` selects the naive `2^n` enumeration — kept only for the
    /// B3 ablation benchmark.
    pub prune: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            include_empty: false,
            prune: true,
        }
    }
}

impl SolverOptions {
    /// Options selecting the naive (unpruned) enumeration.
    #[must_use]
    pub fn naive() -> Self {
        SolverOptions {
            include_empty: false,
            prune: false,
        }
    }

    /// Builder-style toggle for including the empty step.
    #[must_use]
    pub fn with_empty(mut self, include: bool) -> Self {
        self.include_empty = include;
        self
    }
}

/// Enumerates the models of a conjunction of formulas over `events`.
///
/// The caller owns the lowering (once per reached constraint state, in
/// the [`Program`](crate::Program) memo) and the solver only searches.
/// The result is sorted by the `Ord` on [`Step`].
pub(crate) fn enumerate_steps(
    formulas: &[&StepFormula],
    events: &[EventId],
    options: &SolverOptions,
) -> Vec<Step> {
    let mut out = Vec::new();
    if options.prune {
        let mut assigned = Step::new();
        let mut value = Step::new();
        prune_search(formulas, events, 0, &mut assigned, &mut value, &mut out);
    } else {
        naive_search(formulas, events, &mut out);
    }
    if !options.include_empty {
        out.retain(|s| !s.is_empty());
    }
    out.sort();
    out
}

/// Three-valued evaluation of the conjunction: `False` as soon as one
/// conjunct is refuted, `True` only when every conjunct is decided
/// true. Mirrors `StepFormula::eval_partial` on an `And` node without
/// requiring the conjuncts to live in one allocation.
fn eval_partial_all(formulas: &[&StepFormula], assigned: &Step, value: &Step) -> Ternary {
    let mut out = Ternary::True;
    for f in formulas {
        match f.eval_partial(assigned, value) {
            Ternary::False => return Ternary::False,
            Ternary::Unknown => out = Ternary::Unknown,
            Ternary::True => {}
        }
    }
    out
}

fn prune_search(
    formulas: &[&StepFormula],
    events: &[EventId],
    depth: usize,
    assigned: &mut Step,
    value: &mut Step,
    out: &mut Vec<Step>,
) {
    match eval_partial_all(formulas, assigned, value) {
        Ternary::False => return,
        Ternary::True => {
            // every extension over the remaining events is a model
            enumerate_extensions(events, depth, value.clone(), out);
            return;
        }
        Ternary::Unknown => {}
    }
    if depth == events.len() {
        out.push(value.clone());
        return;
    }
    let e = events[depth];
    assigned.insert(e);
    // branch: event absent
    prune_search(formulas, events, depth + 1, assigned, value, out);
    // branch: event present
    value.insert(e);
    prune_search(formulas, events, depth + 1, assigned, value, out);
    value.remove(e);
    assigned.remove(e);
}

fn enumerate_extensions(events: &[EventId], depth: usize, base: Step, out: &mut Vec<Step>) {
    if depth == events.len() {
        out.push(base);
        return;
    }
    enumerate_extensions(events, depth + 1, base.clone(), out);
    let mut with = base;
    with.insert(events[depth]);
    enumerate_extensions(events, depth + 1, with, out);
}

fn naive_search(formulas: &[&StepFormula], events: &[EventId], out: &mut Vec<Step>) {
    let n = events.len();
    assert!(n < 26, "naive enumeration is capped at 2^26 candidates");
    for mask in 0u64..(1u64 << n) {
        let step: Step = events
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &e)| e)
            .collect();
        if formulas.iter().all(|f| f.eval(&step)) {
            out.push(step);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use moccml_ccsl::{Coincidence, Exclusion, Precedence, SubClock};
    use moccml_kernel::{Specification, Universe};

    fn three_events() -> (Specification, EventId, EventId, EventId) {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        let c = u.event("c");
        let spec = Specification::new("s", u);
        (spec, a, b, c)
    }

    fn steps(spec: &Specification, options: &SolverOptions) -> Vec<Step> {
        Program::compile(spec).cursor().acceptable_steps(options)
    }

    #[test]
    fn unconstrained_spec_has_no_constrained_events() {
        let (spec, _, _, _) = three_events();
        // no constraints ⇒ no constrained events ⇒ only the empty step,
        // which is excluded by default
        assert!(steps(&spec, &SolverOptions::default()).is_empty());
        let with_empty = steps(&spec, &SolverOptions::default().with_empty(true));
        assert_eq!(with_empty.len(), 1);
        assert!(with_empty[0].is_empty());
    }

    #[test]
    fn each_constraint_shrinks_the_step_set() {
        // E2: monotone restriction (Sec. II-C) — over a fixed event set.
        let (mut spec, a, b, _) = three_events();
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        let s1 = steps(&spec, &SolverOptions::default().with_empty(true));
        assert_eq!(s1.len(), 3); // {}, {b}, {a,b}
        spec.add_constraint(Box::new(Exclusion::new("a#b", [a, b])));
        let s2 = steps(&spec, &SolverOptions::default().with_empty(true));
        assert_eq!(s2.len(), 2); // {}, {b}
        for s in &s2 {
            assert!(s1.contains(s), "adding constraints only removes steps");
        }
    }

    #[test]
    fn subclock_steps_match_implication() {
        let (mut spec, a, b, _) = three_events();
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        let steps = steps(&spec, &SolverOptions::default());
        // over {a,b}: acceptable non-empty steps are {b}, {a,b}
        assert_eq!(steps.len(), 2);
        assert!(steps.contains(&Step::from_events([b])));
        assert!(steps.contains(&Step::from_events([a, b])));
    }

    #[test]
    fn pruned_and_naive_agree() {
        let (mut spec, a, b, c) = three_events();
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        spec.add_constraint(Box::new(Exclusion::new("a#c", [a, c])));
        spec.add_constraint(Box::new(Coincidence::new("b=c", b, c)));
        let pruned = steps(&spec, &SolverOptions::default());
        let naive = steps(&spec, &SolverOptions::naive());
        assert_eq!(pruned, naive);
    }

    #[test]
    fn stateful_constraint_changes_answers_after_fire() {
        let (mut spec, a, b, _) = three_events();
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        let mut cursor = Program::new(spec).cursor();
        let before = cursor.acceptable_steps(&SolverOptions::default());
        assert_eq!(before, vec![Step::from_events([a])]);
        cursor.fire(&Step::from_events([a])).expect("fires");
        let after = cursor.acceptable_steps(&SolverOptions::default());
        // now b alone, a alone, or both are acceptable
        assert_eq!(after.len(), 3);
    }

    #[test]
    fn results_are_sorted_and_deduplicated_by_construction() {
        let (mut spec, a, b, c) = three_events();
        spec.add_constraint(Box::new(Exclusion::new("x", [a, b, c])));
        let steps = steps(&spec, &SolverOptions::default());
        let mut sorted = steps.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(steps, sorted);
        assert_eq!(steps.len(), 3); // {a}, {b}, {c}
    }

    #[test]
    fn enumeration_is_stable_across_fresh_compiles() {
        let (mut spec, a, b, c) = three_events();
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<c", b, c)));
        for options in [
            SolverOptions::default(),
            SolverOptions::naive(),
            SolverOptions::default().with_empty(true),
        ] {
            assert_eq!(
                steps(&spec, &options),
                steps(&spec, &options),
                "two compiles of one spec must enumerate identically"
            );
        }
    }
}
