//! [`Cursor`]: the mutable per-worker half of a compiled
//! specification.
//!
//! A cursor owns exactly the state one execution needs — a clone of
//! the constraint vector plus, per constraint, the currently selected
//! lowered formula — and borrows everything immutable (event interning,
//! footprints, the formula memo) from its [`Program`](crate::Program).
//! Cursors are therefore cheap to create and fully independent: the
//! parallel explorer hands one to every worker thread, and all of them
//! share every formula-lowering cache hit through the program's
//! sharded memo.
//!
//! Each cursor keeps a small L1 cache in front of the shared memo
//! (one map per constraint), so a `(constraint, state)` pair locks a
//! memo shard only the first time *this cursor* meets it — re-visits,
//! the overwhelmingly common case in breadth-first exploration, are
//! lock-free.

use crate::explorer::{explore_program, ExploreOptions, StateSpace};
use crate::program::Program;
use crate::solver::{enumerate_steps, SolverOptions};
use moccml_kernel::{EventId, KernelError, Specification, StateKey, Step, StepFormula};
use std::collections::HashMap;
use std::sync::Arc;

/// One constraint's run state inside a cursor: its local state key,
/// the lowered formula selected for that state, and the cursor-local
/// L1 cache over the program's shared memo.
#[derive(Debug, Clone)]
struct Slot {
    key: StateKey,
    formula: Arc<StepFormula>,
    l1: HashMap<StateKey, Arc<StepFormula>>,
}

/// A mutable execution position over a compiled [`Program`].
///
/// Created by [`Program::cursor`]; driven through
/// [`acceptable_steps`](Cursor::acceptable_steps),
/// [`fire`](Cursor::fire), [`state_key`](Cursor::state_key) /
/// [`restore`](Cursor::restore) and [`explore`](Cursor::explore) —
/// the same step protocol as the constraints themselves.
///
/// # Example
///
/// ```
/// use moccml_ccsl::Alternation;
/// use moccml_engine::{Program, SolverOptions};
/// use moccml_kernel::{Specification, Universe};
///
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let mut spec = Specification::new("alt", u);
/// spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
///
/// let program = Program::new(spec);
/// let mut cursor = program.cursor();
/// let snapshot = cursor.state_key();
/// let steps = cursor.acceptable_steps(&SolverOptions::default());
/// cursor.fire(&steps[0]).expect("acceptable");
/// cursor.restore(&snapshot).expect("own snapshot restores");
/// assert_eq!(cursor.acceptable_steps(&SolverOptions::default()), steps);
/// ```
#[derive(Debug, Clone)]
pub struct Cursor {
    program: Arc<Program>,
    spec: Specification,
    slots: Vec<Slot>,
    memo_hits: u64,
    memo_misses: u64,
}

impl Cursor {
    pub(crate) fn new(program: Arc<Program>) -> Self {
        let spec = program.specification().clone();
        let slots = program
            .initial_slots()
            .iter()
            .map(|(key, formula)| Slot {
                key: key.clone(),
                formula: Arc::clone(formula),
                l1: HashMap::from([(key.clone(), Arc::clone(formula))]),
            })
            .collect();
        Cursor {
            program,
            spec,
            slots,
            memo_hits: 0,
            memo_misses: 0,
        }
    }

    /// L1 cache hits across all slot refreshes: `(constraint, state)`
    /// pairs this cursor had already met, resolved without touching
    /// the program's shared memo. Plain per-cursor tallies — no
    /// atomics — read by the explorer's memo-hit-rate counters.
    #[must_use]
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// L1 cache misses: refreshes that went to the shared memo (and
    /// possibly lowered a formula program-wide first).
    #[must_use]
    pub fn memo_misses(&self) -> u64 {
        self.memo_misses
    }

    /// The program this cursor executes.
    #[must_use]
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Read access to this cursor's specification (in its *current*
    /// state — unlike [`Program::specification`], which stays at the
    /// compile-time state).
    #[must_use]
    pub fn specification(&self) -> &Specification {
        &self.spec
    }

    /// Recovers the specification (in its current state).
    #[must_use]
    pub fn into_specification(self) -> Specification {
        self.spec
    }

    /// Enumerates every acceptable step in the current state, using the
    /// cached per-constraint formulas (no lowering on this path). The
    /// result is sorted by the `Ord` on [`Step`].
    #[must_use]
    pub fn acceptable_steps(&self, options: &SolverOptions) -> Vec<Step> {
        let formulas: Vec<&StepFormula> = self.slots.iter().map(|s| s.formula.as_ref()).collect();
        enumerate_steps(&formulas, self.program.constrained_events(), options)
    }

    /// Whether `step` satisfies every constraint in the current state —
    /// evaluated on the cached formulas, without lowering.
    #[must_use]
    pub fn accepts(&self, step: &Step) -> bool {
        self.slots.iter().all(|s| s.formula.eval(step))
    }

    /// Names of the constraints whose current formula rejects `step`,
    /// in constraint order — empty iff [`accepts`](Cursor::accepts).
    /// The conformance checker's diagnostic: *which* constraints a
    /// recorded schedule violates at a step, not just that one does.
    #[must_use]
    pub fn violated_constraints(&self, step: &Step) -> Vec<String> {
        self.slots
            .iter()
            .zip(self.spec.constraints())
            .filter(|(slot, _)| !slot.formula.eval(step))
            .map(|(_, c)| c.name().to_owned())
            .collect()
    }

    /// Enumerates every acceptable step over an explicit `events` list
    /// instead of the program's own constrained-event list. Events in
    /// `events` that no constraint of *this* program mentions are free
    /// (they may occur or not in any step); events outside `events`
    /// never occur. The synchronized-product equivalence checker uses
    /// this to compare two programs over the *union* of their
    /// constrained events. Sorted by the `Ord` on [`Step`].
    #[must_use]
    pub fn acceptable_steps_over(&self, events: &[EventId], options: &SolverOptions) -> Vec<Step> {
        let formulas: Vec<&StepFormula> = self.slots.iter().map(|s| s.formula.as_ref()).collect();
        enumerate_steps(&formulas, events, options)
    }

    /// Fires `step` and refreshes the slots of the constraints whose
    /// event footprints intersect it (the stuttering guarantee of the
    /// [`Constraint`](moccml_kernel::Constraint) protocol: a step that
    /// touches none of a constraint's events leaves its state
    /// unchanged).
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::StepRejected`] if `step` is not
    /// acceptable; like [`Specification::fire`], the underlying state
    /// is then poisoned and the caller should [`reset`](Cursor::reset)
    /// or [`restore`](Cursor::restore).
    pub fn fire(&mut self, step: &Step) -> Result<(), KernelError> {
        self.spec.fire(step)?;
        let Self {
            program,
            spec,
            slots,
            memo_hits,
            memo_misses,
        } = self;
        let footprints = program.footprints();
        for (i, (slot, c)) in slots.iter_mut().zip(spec.constraints()).enumerate() {
            if !footprints[i].is_disjoint_from(step) {
                tally(
                    refresh(program, i, slot, c.as_ref()),
                    memo_hits,
                    memo_misses,
                );
            }
        }
        Ok(())
    }

    /// Snapshot of the global constraint state (delegates to
    /// [`Specification::state_key`]).
    #[must_use]
    pub fn state_key(&self) -> StateKey {
        self.spec.state_key()
    }

    /// Restores a state produced by [`state_key`](Cursor::state_key)
    /// and re-syncs every slot whose local state changed. Previously
    /// visited states hit the cursor's L1 cache (or, first time, the
    /// program memo), so winding exploration back and forth does not
    /// re-lower anything.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidStateKey`] if the key does not
    /// match the constraint population.
    pub fn restore(&mut self, key: &StateKey) -> Result<(), KernelError> {
        self.spec.restore(key)?;
        self.resync();
        Ok(())
    }

    /// Resets every constraint to its initial state.
    pub fn reset(&mut self) {
        self.spec.reset();
        self.resync();
    }

    /// Explores the reachable scheduling state-space from the cursor's
    /// *current* state. The cursor itself is untouched — exploration
    /// runs on its own worker cursors. See the
    /// [`explorer`](crate::StateSpace) docs for the graph's semantics
    /// and the determinism guarantee.
    #[must_use]
    pub fn explore(&self, options: &ExploreOptions) -> StateSpace {
        explore_program(&self.program, self.state_key(), options, &mut ())
    }

    /// [`explore`](Cursor::explore) with a streaming
    /// [`ExploreVisitor`](crate::ExploreVisitor) — see
    /// [`Program::explore_with`].
    #[must_use]
    pub fn explore_with(
        &self,
        options: &ExploreOptions,
        visitor: &mut dyn crate::ExploreVisitor,
    ) -> StateSpace {
        explore_program(&self.program, self.state_key(), options, visitor)
    }

    /// Expands one state: restores `key`, enumerates its acceptable
    /// non-empty-capable steps under `solver`, and fires each to learn
    /// the successor key. Steps come back in canonical ([`Step`] `Ord`)
    /// order, which is what the explorer's determinism contract rests
    /// on. The cursor is left in the state of the last fired step (or
    /// `key` itself for a deadlock); callers that care should
    /// [`restore`](Cursor::restore) afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::InvalidStateKey`] if `key` does not match
    /// the constraint population.
    pub fn expand(
        &mut self,
        key: &StateKey,
        solver: &SolverOptions,
    ) -> Result<StateExpansion, KernelError> {
        self.restore(key)?;
        let steps = self.acceptable_steps(solver);
        let mut succs = Vec::with_capacity(steps.len());
        for step in steps {
            self.restore(key)?;
            self.fire(&step).expect("solver returns acceptable steps");
            succs.push((step, self.state_key()));
        }
        Ok(StateExpansion {
            state: key.clone(),
            steps: succs,
        })
    }

    /// [`expand`](Cursor::expand) over a batch of states — the bulk
    /// API the explorer's workers drain their deques through. One
    /// expansion per key, in input order.
    ///
    /// # Errors
    ///
    /// Returns the first [`KernelError::InvalidStateKey`] encountered;
    /// earlier expansions are discarded.
    pub fn expand_batch<'k>(
        &mut self,
        keys: impl IntoIterator<Item = &'k StateKey>,
        solver: &SolverOptions,
    ) -> Result<Vec<StateExpansion>, KernelError> {
        keys.into_iter()
            .map(|key| self.expand(key, solver))
            .collect()
    }

    /// Re-syncs every slot against the constraint's actual local state.
    fn resync(&mut self) {
        let Self {
            program,
            spec,
            slots,
            memo_hits,
            memo_misses,
        } = self;
        for (i, (slot, c)) in slots.iter_mut().zip(spec.constraints()).enumerate() {
            tally(
                refresh(program, i, slot, c.as_ref()),
                memo_hits,
                memo_misses,
            );
        }
    }
}

/// Folds one refresh outcome into the cursor's memo tallies (`None`
/// means the slot was already current — no cache was consulted).
#[inline]
fn tally(outcome: Option<bool>, hits: &mut u64, misses: &mut u64) {
    match outcome {
        Some(true) => *hits += 1,
        Some(false) => *misses += 1,
        None => {}
    }
}

/// One state's outgoing behaviour, as produced by
/// [`Cursor::expand`]: the acceptable non-empty steps in canonical
/// ([`Step`] `Ord`) order, each paired with its successor state key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateExpansion {
    state: StateKey,
    steps: Vec<(Step, StateKey)>,
}

impl StateExpansion {
    /// The expanded state's key.
    #[must_use]
    pub fn state(&self) -> &StateKey {
        &self.state
    }

    /// The acceptable steps with their successor keys, in step order.
    #[must_use]
    pub fn steps(&self) -> &[(Step, StateKey)] {
        &self.steps
    }

    /// Consumes the expansion into its `(step, successor)` pairs.
    #[must_use]
    pub fn into_steps(self) -> Vec<(Step, StateKey)> {
        self.steps
    }

    /// Whether the state has no outgoing non-empty step.
    #[must_use]
    pub fn is_deadlock(&self) -> bool {
        self.steps.is_empty()
    }
}

/// Brings `slot` up to date with `c`'s current state, lowering the
/// formula only on the program-wide first visit of that state.
/// Returns `Some(true)` on an L1 hit, `Some(false)` when the shared
/// memo had to be consulted, and `None` when the slot was current.
fn refresh(
    program: &Program,
    index: usize,
    slot: &mut Slot,
    c: &dyn moccml_kernel::Constraint,
) -> Option<bool> {
    let key = c.state_key();
    if key == slot.key {
        return None;
    }
    let (formula, hit) = if let Some(f) = slot.l1.get(&key) {
        (Arc::clone(f), true)
    } else {
        let f = program
            .memo()
            .get_or_insert(index, &key, || c.current_formula().simplify());
        slot.l1.insert(key.clone(), Arc::clone(&f));
        (f, false)
    };
    slot.formula = formula;
    slot.key = key;
    Some(hit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_ccsl::{Alternation, Precedence, SubClock};
    use moccml_kernel::{EventId, Universe};

    fn alternating() -> (Specification, EventId, EventId) {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        (spec, a, b)
    }

    #[test]
    fn matches_recompiled_solver_along_a_run() {
        let mut u = Universe::new();
        let (a, b, c) = (u.event("a"), u.event("b"), u.event("c"));
        let mut spec = Specification::new("mix", u);
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<c", b, c).with_bound(2)));
        let mut cursor = Program::compile(&spec).cursor();
        let options = SolverOptions::default();
        for _ in 0..8 {
            let fast = cursor.acceptable_steps(&options);
            // the recompile-per-query baseline: lower everything afresh
            let slow = Program::compile(&spec).cursor().acceptable_steps(&options);
            assert_eq!(fast, slow);
            let Some(step) = fast.first().cloned() else {
                break;
            };
            cursor.fire(&step).expect("acceptable");
            spec.fire(&step).expect("acceptable");
        }
    }

    #[test]
    fn fire_refreshes_only_touched_slots() {
        let (spec, a, _) = alternating();
        let program = Program::new(spec);
        let mut cursor = program.cursor();
        assert_eq!(program.cached_formula_count(), 1);
        cursor.fire(&Step::from_events([a])).expect("fires");
        // the alternation moved to its second state: one new memo entry
        assert_eq!(program.cached_formula_count(), 2);
    }

    #[test]
    fn restore_hits_the_memo() {
        let (spec, a, b) = alternating();
        let program = Program::new(spec);
        let mut cursor = program.cursor();
        let start = cursor.state_key();
        cursor.fire(&Step::from_events([a])).expect("fires");
        cursor.fire(&Step::from_events([b])).expect("fires");
        let after_cycle = program.cached_formula_count();
        // wind back and forth: the memo must not grow
        for _ in 0..4 {
            cursor.restore(&start).expect("restores");
            cursor.fire(&Step::from_events([a])).expect("fires");
        }
        assert_eq!(program.cached_formula_count(), after_cycle);
    }

    #[test]
    fn memo_counters_track_l1_hits_and_misses() {
        let (spec, a, b) = alternating();
        let program = Program::new(spec);
        let mut cursor = program.cursor();
        assert_eq!((cursor.memo_hits(), cursor.memo_misses()), (0, 0));
        cursor.fire(&Step::from_events([a])).expect("fires");
        // first visit of the post-`a` state: the L1 misses
        assert_eq!(cursor.memo_misses(), 1);
        cursor.fire(&Step::from_events([b])).expect("fires");
        // back to the initial state, which seeded the L1
        assert_eq!(cursor.memo_hits(), 1);
    }

    #[test]
    fn reset_returns_to_initial_answers() {
        let (spec, a, _) = alternating();
        let mut cursor = Program::new(spec).cursor();
        let options = SolverOptions::default();
        let initial = cursor.acceptable_steps(&options);
        cursor.fire(&Step::from_events([a])).expect("fires");
        assert_ne!(cursor.acceptable_steps(&options), initial);
        cursor.reset();
        assert_eq!(cursor.acceptable_steps(&options), initial);
    }

    #[test]
    fn accepts_agrees_with_enumeration() {
        let (spec, a, b) = alternating();
        let cursor = Program::new(spec).cursor();
        assert!(cursor.accepts(&Step::from_events([a])));
        assert!(!cursor.accepts(&Step::from_events([b])));
        assert!(cursor.accepts(&Step::new()), "stuttering is acceptable");
    }

    #[test]
    fn into_specification_round_trips_state() {
        let (spec, a, _) = alternating();
        let mut cursor = Program::new(spec).cursor();
        cursor.fire(&Step::from_events([a])).expect("fires");
        let key = cursor.state_key();
        let spec = cursor.into_specification();
        assert_eq!(spec.state_key(), key);
    }

    #[test]
    fn cloned_cursor_diverges_without_affecting_the_original() {
        let (spec, a, _) = alternating();
        let mut original = Program::new(spec).cursor();
        let before = original.state_key();
        let mut clone = original.clone();
        clone.fire(&Step::from_events([a])).expect("fires");
        assert_eq!(original.state_key(), before);
        assert_ne!(clone.state_key(), before);
        // both still answer correctly
        original.fire(&Step::from_events([a])).expect("fires");
        assert_eq!(original.state_key(), clone.state_key());
    }
}
