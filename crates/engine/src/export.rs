//! Exporters: schedules as VCD waveforms, state spaces as Graphviz DOT.
//!
//! The paper positions MoCCML in the design-automation flow; these
//! exporters connect the engine to the standard EDA viewers: a
//! [`schedule_to_vcd`] dump opens in GTKWave, a [`state_space_to_dot`]
//! graph renders with Graphviz.

use crate::explorer::StateSpace;
use crate::observer::vcd_code;
use moccml_kernel::{Schedule, Universe};
use std::fmt::Write as _;

/// Renders a schedule as a Value Change Dump (IEEE 1364): one 1-bit
/// wire per event, pulsed high for one half-timestep at each
/// occurrence.
///
/// # Example
///
/// ```
/// use moccml_engine::schedule_to_vcd;
/// use moccml_kernel::{Schedule, Step, Universe};
/// let mut u = Universe::new();
/// let a = u.event("a");
/// let sched: Schedule = vec![Step::from_events([a]), Step::new()].into_iter().collect();
/// let vcd = schedule_to_vcd(&sched, &u, "demo");
/// assert!(vcd.contains("$var wire 1"));
/// assert!(vcd.contains("$enddefinitions"));
/// ```
#[must_use]
pub fn schedule_to_vcd(schedule: &Schedule, universe: &Universe, module: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date MoCCML reproduction $end");
    let _ = writeln!(out, "$version moccml-engine $end");
    let _ = writeln!(out, "$timescale 1ns $end");
    let _ = writeln!(out, "$scope module {module} $end");
    // VCD identifier codes: printable ASCII starting at '!' (shared
    // with the streaming `VcdObserver` so both emit identical files)
    let code = vcd_code;
    for (id, name) in universe.iter_named() {
        let _ = writeln!(
            out,
            "$var wire 1 {} {} $end",
            code(id.index()),
            name.replace(' ', "_")
        );
    }
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");
    let _ = writeln!(out, "$dumpvars");
    for id in universe.iter() {
        let _ = writeln!(out, "0{}", code(id.index()));
    }
    let _ = writeln!(out, "$end");
    for (t, step) in schedule.iter().enumerate() {
        let _ = writeln!(out, "#{}", 2 * t);
        for id in step.iter() {
            let _ = writeln!(out, "1{}", code(id.index()));
        }
        let _ = writeln!(out, "#{}", 2 * t + 1);
        for id in step.iter() {
            let _ = writeln!(out, "0{}", code(id.index()));
        }
    }
    let _ = writeln!(out, "#{}", 2 * schedule.len());
    out
}

/// Escapes a string for use inside a double-quoted DOT string: quotes
/// and backslashes would otherwise terminate the label (or smuggle
/// Graphviz escapes) and produce an invalid or misleading graph.
fn escape_dot(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders an explored state space as a Graphviz `digraph`: states are
/// nodes (deadlocks drawn as double circles), transitions are edges
/// labelled with the step's event names. Names are escaped, so hostile
/// universes (quotes or backslashes in event names) still yield valid
/// DOT.
#[must_use]
pub fn state_space_to_dot(space: &StateSpace, universe: &Universe, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape_dot(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    for (i, key) in space.states().iter().enumerate() {
        let shape = if space.deadlocks().contains(&i) {
            "doublecircle, color=red"
        } else if i == space.initial() {
            "circle, style=bold"
        } else {
            "circle"
        };
        let _ = writeln!(
            out,
            "  s{i} [shape={shape}, label=\"s{i}\\n{}\"];",
            escape_dot(&key.to_string())
        );
    }
    for (src, step, dst) in space.transitions() {
        let label = step
            .iter()
            .map(|e| escape_dot(universe.name(e)))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "  s{src} -> s{dst} [label=\"{label}\"];");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::ExploreOptions;
    use crate::program::Program;
    use moccml_ccsl::{Alternation, Precedence};
    use moccml_kernel::{Specification, Step};

    fn explore(spec: &Specification, options: &ExploreOptions) -> StateSpace {
        Program::compile(spec).explore(options)
    }

    #[test]
    fn vcd_pulses_every_occurrence() {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        let sched: Schedule = vec![Step::from_events([a]), Step::from_events([a, b])]
            .into_iter()
            .collect();
        let vcd = schedule_to_vcd(&sched, &u, "m");
        assert!(vcd.contains("$var wire 1 ! a $end"));
        assert!(vcd.contains("$var wire 1 \" b $end"));
        // a pulses twice, b once
        assert_eq!(vcd.matches("\n1!").count(), 2);
        assert_eq!(vcd.matches("\n1\"").count(), 1);
        // timestamps 0..4 present
        assert!(vcd.contains("#0\n") && vcd.contains("#3\n"));
    }

    #[test]
    fn vcd_identifier_codes_are_unique_beyond_94_events() {
        let mut u = Universe::new();
        for i in 0..100 {
            u.event(&format!("e{i}"));
        }
        let vcd = schedule_to_vcd(&Schedule::new(), &u, "m");
        let ids: Vec<&str> = vcd
            .lines()
            .filter(|l| l.starts_with("$var"))
            .map(|l| l.split_whitespace().nth(3).expect("code column"))
            .collect();
        let unique: std::collections::HashSet<&&str> = ids.iter().collect();
        assert_eq!(unique.len(), 100);
    }

    #[test]
    fn dot_marks_deadlocks_and_initial() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("d", u.clone());
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<a", b, a)));
        let space = explore(&spec, &ExploreOptions::default());
        let dot = state_space_to_dot(&space, &u, "dead");
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("digraph \"dead\""));
    }

    #[test]
    fn dot_escapes_hostile_event_names() {
        // names with quotes and backslashes must not break out of the
        // label strings
        let mut u = Universe::new();
        let (a, b) = (u.event("ev\"il"), u.event("back\\slash"));
        let mut spec = Specification::new("hostile", u.clone());
        spec.add_constraint(Box::new(Alternation::new("x", a, b)));
        let space = explore(&spec, &ExploreOptions::default());
        let dot = state_space_to_dot(&space, &u, "na\"me");
        assert!(dot.contains("digraph \"na\\\"me\""));
        assert!(dot.contains("label=\"ev\\\"il\""));
        assert!(dot.contains("label=\"back\\\\slash\""));
        // every label's quotes are balanced: no line has a bare quote
        // that terminates the attribute early
        for line in dot.lines().filter(|l| l.contains("label=")) {
            let unescaped = line.replace("\\\\", "").replace("\\\"", "");
            let quotes = unescaped.matches('"').count();
            assert_eq!(quotes % 2, 0, "unbalanced quotes in: {line}");
        }
    }

    #[test]
    fn dot_labels_edges_with_event_names() {
        let mut u = Universe::new();
        let (a, b) = (u.event("go"), u.event("done"));
        let mut spec = Specification::new("alt", u.clone());
        spec.add_constraint(Box::new(Alternation::new("x", a, b)));
        let space = explore(&spec, &ExploreOptions::default());
        let dot = state_space_to_dot(&space, &u, "alt");
        assert!(dot.contains("label=\"go\""));
        assert!(dot.contains("label=\"done\""));
    }
}
