//! [`Simulator`]: a thin convenience wrapper over an [`Engine`]
//! session, implementing `Iterator<Item = Step>`.
//!
//! The seed's `Simulator` owned the solver loop itself; it is now a
//! facade over [`Engine`] — one constructor call instead of a builder
//! chain — kept because "give me a simulation of this spec under that
//! policy" is the single most common engine use.

use crate::engine::{Engine, SimulationReport};
use crate::policy::Policy;
use moccml_kernel::{Specification, Step};

/// A simulation driver over a [`Specification`]: `Engine::builder`
/// with the defaults filled in.
///
/// # Example
///
/// ```
/// use moccml_ccsl::Alternation;
/// use moccml_engine::{Lexicographic, Simulator};
/// use moccml_kernel::{Specification, Universe};
///
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let mut spec = Specification::new("alt", u);
/// spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
///
/// let mut sim = Simulator::new(spec, Lexicographic);
/// let report = sim.run(6);
/// assert_eq!(report.steps_taken, 6);
/// assert!(!report.deadlocked);
/// // strict alternation: a, b, a, b, …
/// assert_eq!(report.schedule.occurrences(a), 3);
/// assert_eq!(report.schedule.occurrences(b), 3);
///
/// // or drive it as an iterator:
/// sim.reset();
/// let first_two: Vec<_> = sim.by_ref().take(2).collect();
/// assert!(first_two[0].contains(a) && first_two[1].contains(b));
/// ```
#[derive(Debug)]
pub struct Simulator {
    engine: Engine,
}

impl Simulator {
    /// Creates a simulator over `spec` with the given policy.
    #[must_use]
    pub fn new(spec: Specification, policy: impl Policy + 'static) -> Self {
        Simulator {
            engine: Engine::builder(spec).policy(policy).build(),
        }
    }

    /// Creates a simulator from an already boxed policy (useful when
    /// iterating over heterogeneous policy lists).
    #[must_use]
    pub fn with_boxed_policy(spec: Specification, policy: Box<dyn Policy>) -> Self {
        Simulator {
            engine: Engine::builder(spec).policy_boxed(policy).build(),
        }
    }

    /// Read access to the driven specification.
    #[must_use]
    pub fn specification(&self) -> &Specification {
        self.engine.specification()
    }

    /// Read access to the underlying engine session.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Recovers the underlying engine session (to add exploration or
    /// analysis on the same compiled state).
    #[must_use]
    pub fn into_engine(self) -> Engine {
        self.engine
    }

    /// Picks and fires one step. Returns the step, or `None` on
    /// deadlock (no acceptable non-empty step).
    pub fn step(&mut self) -> Option<Step> {
        self.engine.step()
    }

    /// Runs up to `max_steps` steps, stopping early on deadlock.
    pub fn run(&mut self, max_steps: usize) -> SimulationReport {
        self.engine.run(max_steps)
    }

    /// Resets the specification (and the policy's PRNG) to the initial
    /// state.
    pub fn reset(&mut self) {
        self.engine.reset();
    }
}

impl Iterator for Simulator {
    type Item = Step;

    fn next(&mut self) -> Option<Step> {
        self.engine.step()
    }
}

impl From<Engine> for Simulator {
    fn from(engine: Engine) -> Self {
        Simulator { engine }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Lexicographic, MaxParallel, MinSerial, Random, SafeMaxParallel};
    use moccml_ccsl::{Alternation, Precedence, SubClock};
    use moccml_kernel::Universe;

    fn alternating_spec() -> (
        Specification,
        moccml_kernel::EventId,
        moccml_kernel::EventId,
    ) {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        (spec, a, b)
    }

    #[test]
    fn lexicographic_alternation_is_strict() {
        let (spec, a, b) = alternating_spec();
        let mut sim = Simulator::new(spec, Lexicographic);
        let report = sim.run(10);
        assert!(!report.deadlocked);
        for (i, step) in report.schedule.iter().enumerate() {
            let expected = if i % 2 == 0 { a } else { b };
            assert!(step.contains(expected), "step {i}");
            assert_eq!(step.len(), 1);
        }
    }

    #[test]
    fn random_policy_is_reproducible() {
        let (spec, _, _) = alternating_spec();
        let r1 = Simulator::new(spec.clone(), Random::new(5)).run(20);
        let r2 = Simulator::new(spec, Random::new(5)).run(20);
        assert_eq!(r1.schedule, r2.schedule);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        let mut spec = Specification::new("dead", u);
        // a strictly precedes b and b strictly precedes a: no event can
        // ever occur.
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<a", b, a)));
        let report = Simulator::new(spec, Lexicographic).run(10);
        assert!(report.deadlocked);
        assert_eq!(report.steps_taken, 0);
    }

    #[test]
    fn max_parallel_prefers_bigger_steps() {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        let mut spec = Specification::new("sub", u);
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        let mut sim = Simulator::new(spec, MaxParallel);
        let step = sim.step().expect("some step");
        assert_eq!(step.len(), 2); // {a,b} beats {b}
    }

    #[test]
    fn min_serial_prefers_smaller_steps() {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        let mut spec = Specification::new("sub", u);
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        let mut sim = Simulator::new(spec, MinSerial);
        let step = sim.step().expect("some step");
        assert_eq!(step.len(), 1); // {b}
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let (spec, a, _) = alternating_spec();
        let mut sim = Simulator::new(spec, Lexicographic);
        let first = sim.run(4).schedule;
        sim.reset();
        let second = sim.run(4).schedule;
        assert_eq!(first, second);
        assert!(first.steps()[0].contains(a));
    }

    #[test]
    fn iterator_yields_steps_until_deadlock() {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        let mut spec = Specification::new("bounded", u);
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b).with_bound(1)));
        spec.add_constraint(Box::new(Precedence::strict("b<a", b, a).with_bound(1)));
        // a and b must alternate within bound 1 in both directions:
        // the iterator ends exactly when the engine deadlocks
        let sim = Simulator::new(spec.clone(), Lexicographic);
        let steps: Vec<Step> = sim.take(100).collect();
        let report = Simulator::new(spec, Lexicographic).run(100);
        assert_eq!(steps.len(), report.steps_taken);
        assert_eq!(steps, report.schedule.steps().to_vec());
    }

    #[test]
    fn boxed_policies_drive_heterogeneous_lists() {
        let (spec, _, _) = alternating_spec();
        let policies: Vec<Box<dyn crate::Policy>> = vec![
            Box::new(Lexicographic),
            Box::new(MaxParallel),
            Box::new(SafeMaxParallel),
        ];
        for policy in policies {
            let report = Simulator::with_boxed_policy(spec.clone(), policy).run(4);
            assert_eq!(report.steps_taken, 4);
        }
    }
}
