//! Simulation: repeatedly picking one acceptable step and firing it.

use crate::rng::SplitMix64;
use crate::solver::{acceptable_steps, SolverOptions};
use moccml_kernel::{Schedule, Specification, Step};
use std::fmt;

/// Strategy for picking one step among the acceptable ones.
///
/// The paper leaves the choice to the engine ("for each step, one or
/// several event(s) can occur"); these policies cover the interesting
/// corners for the experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Policy {
    /// Uniformly random among the acceptable non-empty steps,
    /// deterministic for a given seed.
    Random {
        /// PRNG seed.
        seed: u64,
    },
    /// The acceptable step with the most events (ASAP / maximal
    /// parallelism; ties broken by step order).
    MaxParallel,
    /// The acceptable non-empty step with the fewest events
    /// (interleaving semantics; ties broken by step order).
    MinSerial,
    /// The first acceptable step in the solver's deterministic order.
    Lexicographic,
    /// Like [`Policy::MaxParallel`], but with one-step deadlock
    /// avoidance: prefers the largest step whose successor configuration
    /// still admits a step. Falls back to plain max-parallel when every
    /// choice wedges.
    SafeMaxParallel,
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Random { seed } => write!(f, "random(seed={seed})"),
            Policy::MaxParallel => write!(f, "max-parallel"),
            Policy::MinSerial => write!(f, "min-serial"),
            Policy::Lexicographic => write!(f, "lexicographic"),
            Policy::SafeMaxParallel => write!(f, "safe-max-parallel"),
        }
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// The schedule prefix that was executed.
    pub schedule: Schedule,
    /// `true` if the run stopped because no non-empty step was
    /// acceptable.
    pub deadlocked: bool,
    /// Number of steps executed (equals `schedule.len()`).
    pub steps_taken: usize,
}

/// A simulation driver over a [`Specification`].
///
/// # Example
///
/// ```
/// use moccml_ccsl::Alternation;
/// use moccml_engine::{Policy, Simulator};
/// use moccml_kernel::{Specification, Universe};
///
/// let mut u = Universe::new();
/// let (a, b) = (u.event("a"), u.event("b"));
/// let mut spec = Specification::new("alt", u);
/// spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
///
/// let mut sim = Simulator::new(spec, Policy::Lexicographic);
/// let report = sim.run(6);
/// assert_eq!(report.steps_taken, 6);
/// assert!(!report.deadlocked);
/// // strict alternation: a, b, a, b, …
/// assert_eq!(report.schedule.occurrences(a), 3);
/// assert_eq!(report.schedule.occurrences(b), 3);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    spec: Specification,
    policy: Policy,
    rng: SplitMix64,
    options: SolverOptions,
}

impl Simulator {
    /// Creates a simulator over `spec` with the given policy.
    #[must_use]
    pub fn new(spec: Specification, policy: Policy) -> Self {
        let seed = match &policy {
            Policy::Random { seed } => *seed,
            _ => 0,
        };
        Simulator {
            spec,
            policy,
            rng: SplitMix64::new(seed),
            options: SolverOptions::default(),
        }
    }

    /// Read access to the driven specification.
    #[must_use]
    pub fn specification(&self) -> &Specification {
        &self.spec
    }

    /// Picks and fires one step. Returns the step, or `None` on
    /// deadlock (no acceptable non-empty step).
    pub fn step(&mut self) -> Option<Step> {
        let candidates = acceptable_steps(&self.spec, &self.options);
        if candidates.is_empty() {
            return None;
        }
        let chosen = match &self.policy {
            Policy::Random { .. } => candidates[self.rng.next_below(candidates.len())].clone(),
            Policy::MaxParallel => candidates
                .iter()
                .max_by_key(|s| s.len())
                .expect("non-empty candidate list")
                .clone(),
            Policy::MinSerial => candidates
                .iter()
                .min_by_key(|s| s.len())
                .expect("non-empty candidate list")
                .clone(),
            Policy::Lexicographic => candidates[0].clone(),
            Policy::SafeMaxParallel => {
                let mut by_size: Vec<&Step> = candidates.iter().collect();
                by_size.sort_by_key(|s| std::cmp::Reverse(s.len()));
                by_size
                    .iter()
                    .find(|step| {
                        let mut peek = self.spec.clone();
                        peek.fire(step).expect("candidate is acceptable");
                        !acceptable_steps(&peek, &self.options).is_empty()
                    })
                    .copied()
                    .unwrap_or(by_size[0])
                    .clone()
            }
        };
        self.spec
            .fire(&chosen)
            .expect("solver only returns acceptable steps");
        Some(chosen)
    }

    /// Runs up to `max_steps` steps, stopping early on deadlock.
    pub fn run(&mut self, max_steps: usize) -> SimulationReport {
        let mut schedule = Schedule::new();
        let mut deadlocked = false;
        for _ in 0..max_steps {
            match self.step() {
                Some(step) => schedule.push(step),
                None => {
                    deadlocked = true;
                    break;
                }
            }
        }
        let steps_taken = schedule.len();
        SimulationReport {
            schedule,
            deadlocked,
            steps_taken,
        }
    }

    /// Resets the specification (and the PRNG) to the initial state.
    pub fn reset(&mut self) {
        self.spec.reset();
        if let Policy::Random { seed } = &self.policy {
            self.rng = SplitMix64::new(*seed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_ccsl::{Alternation, Precedence, SubClock};
    use moccml_kernel::Universe;

    fn alternating_spec() -> (
        Specification,
        moccml_kernel::EventId,
        moccml_kernel::EventId,
    ) {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        (spec, a, b)
    }

    #[test]
    fn lexicographic_alternation_is_strict() {
        let (spec, a, b) = alternating_spec();
        let mut sim = Simulator::new(spec, Policy::Lexicographic);
        let report = sim.run(10);
        assert!(!report.deadlocked);
        for (i, step) in report.schedule.iter().enumerate() {
            let expected = if i % 2 == 0 { a } else { b };
            assert!(step.contains(expected), "step {i}");
            assert_eq!(step.len(), 1);
        }
    }

    #[test]
    fn random_policy_is_reproducible() {
        let (spec, _, _) = alternating_spec();
        let r1 = Simulator::new(spec.clone(), Policy::Random { seed: 5 }).run(20);
        let r2 = Simulator::new(spec, Policy::Random { seed: 5 }).run(20);
        assert_eq!(r1.schedule, r2.schedule);
    }

    #[test]
    fn deadlock_is_detected() {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        let mut spec = Specification::new("dead", u);
        // a strictly precedes b and b strictly precedes a: no event can
        // ever occur.
        spec.add_constraint(Box::new(Precedence::strict("a<b", a, b)));
        spec.add_constraint(Box::new(Precedence::strict("b<a", b, a)));
        let report = Simulator::new(spec, Policy::Lexicographic).run(10);
        assert!(report.deadlocked);
        assert_eq!(report.steps_taken, 0);
    }

    #[test]
    fn max_parallel_prefers_bigger_steps() {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        let mut spec = Specification::new("sub", u);
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        let mut sim = Simulator::new(spec, Policy::MaxParallel);
        let step = sim.step().expect("some step");
        assert_eq!(step.len(), 2); // {a,b} beats {b}
    }

    #[test]
    fn min_serial_prefers_smaller_steps() {
        let mut u = Universe::new();
        let a = u.event("a");
        let b = u.event("b");
        let mut spec = Specification::new("sub", u);
        spec.add_constraint(Box::new(SubClock::new("a⊆b", a, b)));
        let mut sim = Simulator::new(spec, Policy::MinSerial);
        let step = sim.step().expect("some step");
        assert_eq!(step.len(), 1); // {b}
    }

    #[test]
    fn reset_restores_initial_behaviour() {
        let (spec, a, _) = alternating_spec();
        let mut sim = Simulator::new(spec, Policy::Lexicographic);
        let first = sim.run(4).schedule;
        sim.reset();
        let second = sim.run(4).schedule;
        assert_eq!(first, second);
        assert!(first.steps()[0].contains(a));
    }

    #[test]
    fn policy_display() {
        assert_eq!(Policy::MaxParallel.to_string(), "max-parallel");
        assert_eq!(Policy::Random { seed: 9 }.to_string(), "random(seed=9)");
    }
}
