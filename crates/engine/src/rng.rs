//! A tiny deterministic PRNG for the random simulation policy.
//!
//! Simulation must be reproducible across platforms for EXPERIMENTS.md,
//! so the engine carries its own SplitMix64 instead of pulling a
//! randomness dependency into the library crates (the benches still use
//! `rand` for workload generation).

/// SplitMix64 pseudo-random generator (Steele, Lea & Flood 2014).
///
/// # Example
///
/// ```
/// use moccml_engine::SplitMix64;
/// let mut rng = SplitMix64::new(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// // same seed ⇒ same sequence
/// assert_eq!(SplitMix64::new(42).next_u64(), a);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // multiply-shift bounded sampling (Lemire); bias is negligible
        // for the small bounds used when picking among acceptable steps.
        let x = self.next_u64() as u128;
        ((x * bound as u128) >> 64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounded_sampling_stays_in_range() {
        let mut rng = SplitMix64::new(1);
        for bound in 1..20usize {
            for _ in 0..50 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn bounded_sampling_covers_all_values() {
        let mut rng = SplitMix64::new(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.next_below(5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
