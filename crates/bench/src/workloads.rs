//! Parameterised workload generators for benches and scaling
//! experiments.

use moccml_ccsl::{Exclusion, Precedence, SubClock};
use moccml_kernel::{Specification, Universe};
use moccml_sdf::SdfGraph;

/// A pipeline SDF graph of `stages` agents connected in a chain, all
/// rates 1, places of the given `capacity`.
///
/// # Panics
///
/// Panics if `stages == 0` or `capacity == 0`.
#[must_use]
pub fn sdf_chain(stages: usize, capacity: u32) -> SdfGraph {
    assert!(stages > 0 && capacity > 0);
    let mut g = SdfGraph::new(&format!("chain{stages}"));
    for i in 0..stages {
        g.add_agent(&format!("s{i}"), 0).expect("fresh names");
    }
    for i in 0..stages - 1 {
        g.connect(&format!("s{i}"), &format!("s{}", i + 1), 1, 1, capacity, 0)
            .expect("valid place");
    }
    g
}

/// A fork–join ("diamond") SDF graph with `width` parallel branches.
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn sdf_diamond(width: usize) -> SdfGraph {
    assert!(width > 0);
    let mut g = SdfGraph::new(&format!("diamond{width}"));
    g.add_agent("src", 0).expect("fresh names");
    g.add_agent("sink", 0).expect("fresh names");
    for i in 0..width {
        let mid = format!("mid{i}");
        g.add_agent(&mid, 0).expect("fresh names");
        g.connect("src", &mid, 1, 1, 1, 0).expect("valid place");
        g.connect(&mid, "sink", 1, 1, 1, 0).expect("valid place");
    }
    g
}

/// A declarative specification with `n` events chained by sub-clock
/// relations plus a global pairwise exclusion — a dense step-formula
/// workload for the solver benches.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn subclock_chain_spec(n: usize) -> Specification {
    assert!(n >= 2);
    let mut u = Universe::new();
    let events: Vec<_> = (0..n).map(|i| u.event(&format!("e{i}"))).collect();
    let mut spec = Specification::new(&format!("subchain{n}"), u);
    for w in events.windows(2) {
        spec.add_constraint(Box::new(SubClock::new("sub", w[0], w[1])));
    }
    spec
}

/// A specification of `pairs` independent bounded producer/consumer
/// precedences — a stateful workload whose state space is
/// `(bound+1)^pairs`.
///
/// # Panics
///
/// Panics if `pairs == 0` or `bound == 0`.
#[must_use]
pub fn precedence_grid_spec(pairs: usize, bound: u64) -> Specification {
    assert!(pairs > 0 && bound > 0);
    let mut u = Universe::new();
    let mut ids = Vec::new();
    for i in 0..pairs {
        let c = u.event(&format!("c{i}"));
        let e = u.event(&format!("x{i}"));
        ids.push((c, e));
    }
    let mut spec = Specification::new(&format!("grid{pairs}"), u);
    for (i, (c, e)) in ids.iter().enumerate() {
        spec.add_constraint(Box::new(
            Precedence::strict(&format!("p{i}"), *c, *e).with_bound(bound),
        ));
    }
    spec
}

/// An exclusion-heavy specification: `n` events, all mutually
/// exclusive — the solver must discover that only `n + 1` of the `2^n`
/// candidate steps are acceptable.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn exclusion_clique_spec(n: usize) -> Specification {
    assert!(n >= 2);
    let mut u = Universe::new();
    let events: Vec<_> = (0..n).map(|i| u.event(&format!("e{i}"))).collect();
    let mut spec = Specification::new(&format!("clique{n}"), u);
    spec.add_constraint(Box::new(Exclusion::new("clique", events)));
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_engine::{ExploreOptions, Program, SolverOptions};

    fn acceptable_steps(spec: &Specification, options: &SolverOptions) -> Vec<moccml_kernel::Step> {
        Program::compile(spec).cursor().acceptable_steps(options)
    }

    #[test]
    fn chain_and_diamond_are_consistent() {
        assert!(moccml_sdf::analysis::is_consistent(&sdf_chain(5, 2)));
        assert!(moccml_sdf::analysis::is_consistent(&sdf_diamond(3)));
        assert_eq!(sdf_diamond(3).agents().len(), 5);
    }

    #[test]
    fn exclusion_clique_has_n_plus_one_steps() {
        let spec = exclusion_clique_spec(5);
        let steps = acceptable_steps(&spec, &SolverOptions::default().with_empty(true));
        assert_eq!(steps.len(), 6);
    }

    #[test]
    fn precedence_grid_state_space_is_product() {
        let spec = precedence_grid_spec(2, 2);
        let space = Program::new(spec).explore(&ExploreOptions::default());
        assert_eq!(space.state_count(), 9); // (2+1)^2
    }

    #[test]
    fn subclock_chain_steps_are_upward_closed_prefixes() {
        // acceptable non-empty steps of a sub-clock chain are the
        // suffixes {e_k..e_n}: exactly n of them.
        let spec = subclock_chain_spec(4);
        let steps = acceptable_steps(&spec, &SolverOptions::default());
        assert_eq!(steps.len(), 4);
    }
}
