//! Workload builders and reporting helpers shared by the experiment
//! binaries (`exp_e1` … `exp_e6`), the bench targets and the smoke
//! tests.
//!
//! Each `e*` function builds exactly the artefact its binary studies,
//! parameterised so tests can exercise it at tiny sizes.

use moccml_automata::AutomatonInstance;
use moccml_engine::{ExploreOptions, Program, SafeMaxParallel, Simulator, StateSpaceStats};
use moccml_kernel::{EventId, Schedule, Specification, StepPred, Universe};
use moccml_sdf::{pam, SdfGraph};
use moccml_verify::Prop;

pub use crate::report::{table_header, table_row};

/// E1 — the Fig. 3 `PlaceConstraint` automaton instantiated over a
/// fresh `write`/`read` pair, with unit rates.
///
/// # Panics
///
/// Panics if the embedded SDF library fails to parse or bind — both
/// would be seed-data bugs.
#[must_use]
pub fn e1_place(capacity: i64, delay: i64) -> (AutomatonInstance, EventId, EventId) {
    let lib = moccml_automata::parse_library(moccml_sdf::mocc::SDF_LIBRARY_SOURCE)
        .expect("embedded library parses");
    let mut u = Universe::new();
    let (w, r) = (u.event("write"), u.event("read"));
    let place = lib
        .instantiate("PlaceConstraint", "fig3")
        .expect("declared")
        .bind_event("write", w)
        .bind_event("read", r)
        .bind_int("pushRate", 1)
        .bind_int("popRate", 1)
        .bind_int("itsDelay", delay)
        .bind_int("itsCapacity", capacity)
        .finish()
        .expect("bindings complete");
    (place, w, r)
}

/// E2 — an unconstrained universe of `n` events (constraints are added
/// incrementally by the binary to show monotone shrinking).
#[must_use]
pub fn e2_spec(n: usize) -> (Specification, Vec<EventId>) {
    let mut u = Universe::new();
    let events: Vec<EventId> = (0..n).map(|i| u.event(&format!("e{i}"))).collect();
    (Specification::new("e2", u), events)
}

/// E3 — the multirate chain `a --2:3--> b --1:1--> c` with bounded
/// places (repetition vector `[3, 2, 2]`: the binary prints the
/// activation ratios it induces).
///
/// # Panics
///
/// Panics if the fixed graph is rejected — a seed-data bug.
#[must_use]
pub fn e3_graph() -> SdfGraph {
    let mut g = SdfGraph::new("e3");
    g.add_agent("a", 0).expect("fresh graph");
    g.add_agent("b", 0).expect("fresh graph");
    g.add_agent("c", 0).expect("fresh graph");
    g.connect("a", "b", 2, 3, 6, 0).expect("valid place");
    g.connect("b", "c", 1, 1, 2, 0).expect("valid place");
    g
}

/// E4 — the producer/consumer pair with one delayed place, compared
/// under the standard and multiport MoCC variants.
///
/// # Panics
///
/// Panics if the fixed graph is rejected — a seed-data bug.
#[must_use]
pub fn e4_graph() -> SdfGraph {
    let mut g = SdfGraph::new("e4");
    g.add_agent("prod", 0).expect("fresh graph");
    g.add_agent("cons", 0).expect("fresh graph");
    g.connect("prod", "cons", 1, 1, 2, 1).expect("valid place");
    g
}

/// E5 — a producer/consumer pair whose agents take `n` execution
/// cycles per activation (`stop` at the n-th `isExecuting`).
///
/// # Panics
///
/// Panics if the fixed graph is rejected — a seed-data bug.
#[must_use]
pub fn e5_graph(n: u32) -> SdfGraph {
    let mut g = SdfGraph::new("e5");
    g.add_agent("prod", n).expect("fresh graph");
    g.add_agent("cons", n).expect("fresh graph");
    g.connect("prod", "cons", 1, 1, 2, 0).expect("valid place");
    g
}

/// E6 — the PAM study's four configurations: infinite resources plus
/// the single/dual/quad-core deployments.
///
/// # Panics
///
/// Panics if the embedded PAM models fail to build — a seed-data bug.
#[must_use]
pub fn e6_configs() -> Vec<(String, Specification)> {
    let mut v = Vec::new();
    v.push((
        "infinite resources".to_owned(),
        pam::infinite_resources().expect("builds"),
    ));
    for (platform, deployment) in [
        pam::deployment_single_core(),
        pam::deployment_dual_core(),
        pam::deployment_quad_core(),
    ] {
        v.push((
            platform.name().to_owned(),
            pam::deployed(&platform, &deployment).expect("deploys"),
        ));
    }
    v
}

/// E7 — the seeded violating verification workload: the quad-core PAM
/// deployment plus a safety property it violates ("the detector never
/// starts"). The shortest counterexample needs the whole pipeline to
/// flow (hydro → filter → fusion → detect), so the violation sits deep
/// enough that on-the-fly early stop visits strictly fewer states than
/// a full exploration — the `BENCH_verify.json` claim.
///
/// # Panics
///
/// Panics if the embedded PAM models fail to build — a seed-data bug.
#[must_use]
pub fn e7_violating_pam() -> (Specification, Prop) {
    let (platform, deployment) = pam::deployment_quad_core();
    let spec = pam::deployed(&platform, &deployment).expect("deploys");
    let detect_start = spec
        .universe()
        .lookup("detect.start")
        .expect("PAM detector event");
    (spec, Prop::Never(StepPred::fired(detect_start)))
}

/// E8 — the seeded slicing workload: the quad-core PAM deployment plus
/// an independent telemetry alternation over two fresh events, with the
/// same local safety property as [`e7_violating_pam`] ("the detector
/// never starts"). The property's cone of influence closes over every
/// PAM constraint but never reaches the telemetry pair, so a sliced
/// `verify::check_with` run drops exactly one constraint — and explores
/// strictly fewer states, because the alternation's two phases double
/// the interleaved space (the `BENCH_analyze.json` claim).
///
/// # Panics
///
/// Panics if the embedded PAM models fail to build — a seed-data bug.
#[must_use]
pub fn e8_seeded_local_pam() -> (Specification, Prop) {
    let (platform, deployment) = pam::deployment_quad_core();
    let mut spec = pam::deployed(&platform, &deployment).expect("deploys");
    let tick = spec.universe_mut().event("telemetry.tick");
    let tock = spec.universe_mut().event("telemetry.tock");
    spec.add_constraint(Box::new(moccml_ccsl::Alternation::new(
        "telemetry",
        tick,
        tock,
    )));
    let detect_start = spec
        .universe()
        .lookup("detect.start")
        .expect("PAM detector event");
    (spec, Prop::Never(StepPred::fired(detect_start)))
}

/// E9 — the explorer-scaling workload: three independent bounded
/// strict precedences (`c_i < e_i`, drift ≤ `bound`) under one n-ary
/// exclusion over all six events. The exclusion limits every step to a
/// single event, so the reachable space is exactly the drift cube
/// `(bound + 1)³` — `bound = 46` gives the 103,823-state workload of
/// `BENCH_explore_scale.json` — with wide middle BFS levels (the state
/// at drifts `(d₁, d₂, d₃)` sits at depth `d₁ + d₂ + d₃`), which is
/// precisely the shape that exercises the work-stealing frontier.
///
/// Returns the specification and the expected reachable state count.
#[must_use]
pub fn e9_scale_spec(bound: u64) -> (Specification, usize) {
    let mut u = Universe::new();
    let mut all = Vec::with_capacity(6);
    let mut pairs = Vec::with_capacity(3);
    for i in 0..3 {
        let c = u.event(&format!("c{i}"));
        let e = u.event(&format!("e{i}"));
        all.extend([c, e]);
        pairs.push((c, e));
    }
    let mut spec = Specification::new("e9-scale", u);
    for (i, (c, e)) in pairs.into_iter().enumerate() {
        spec.add_constraint(Box::new(
            moccml_ccsl::Precedence::strict(&format!("c{i}<e{i}"), c, e).with_bound(bound),
        ));
    }
    spec.add_constraint(Box::new(moccml_ccsl::Exclusion::new("one-at-a-time", all)));
    let side = usize::try_from(bound).expect("bound fits usize") + 1;
    (spec, side * side * side)
}

/// E7 — a conforming reference trace for the conformance-checking
/// bench: `steps` steps of the quad-core PAM deployment under the
/// deadlock-avoiding policy.
///
/// # Panics
///
/// Panics if the embedded PAM models fail to build or the simulation
/// wedges — both seed-data bugs.
#[must_use]
pub fn e7_conformance_trace(steps: usize) -> (Specification, Schedule) {
    let (platform, deployment) = pam::deployment_quad_core();
    let spec = pam::deployed(&platform, &deployment).expect("deploys");
    let report = Simulator::new(spec.clone(), SafeMaxParallel).run(steps);
    assert!(!report.deadlocked, "safe policy completes on PAM");
    (spec, report.schedule)
}

/// Parses a `--flag N` pair from an argument list — the shared CLI
/// convention of the `exp_*` binaries.
///
/// # Panics
///
/// Panics with a usage message if the flag's value is present but not
/// a positive integer.
#[must_use]
pub fn parse_flag(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{flag} expects a positive integer, got '{v}'"))
        })
}

/// Explores `spec` (bounded, on the compiled path, default worker
/// count) and returns the aggregate statistics.
#[must_use]
pub fn explore_stats(spec: &Specification, max_states: usize) -> StateSpaceStats {
    explore_stats_with(spec, &ExploreOptions::default().with_max_states(max_states))
}

/// Explores `spec` under explicit [`ExploreOptions`] — the experiment
/// binaries use this to thread `--workers` / `--max-states` flags
/// through to the parallel explorer.
#[must_use]
pub fn explore_stats_with(spec: &Specification, options: &ExploreOptions) -> StateSpaceStats {
    Program::compile(spec).explore(options).stats()
}

/// Formats statistics as experiment table cells:
/// states, transitions, deadlocks, max parallelism, mean branching.
#[must_use]
pub fn stats_cells(stats: &StateSpaceStats) -> Vec<String> {
    vec![
        stats.states.to_string(),
        stats.transitions.to_string(),
        stats.deadlocks.to_string(),
        stats.max_step_parallelism.to_string(),
        format!("{:.2}", stats.mean_branching),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_ccsl::Alternation;

    #[test]
    fn e9_scale_spec_reaches_exactly_the_drift_cube() {
        let (spec, expected) = e9_scale_spec(2);
        assert_eq!(expected, 27);
        let stats = explore_stats(&spec, 1_000);
        assert_eq!(stats.states, expected);
        assert_eq!(stats.deadlocks, 0);
        // the exclusion caps every step at a single event
        assert_eq!(stats.max_step_parallelism, 1);
    }

    #[test]
    fn stats_cells_have_five_columns() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let stats = explore_stats(&spec, 100);
        let cells = stats_cells(&stats);
        assert_eq!(cells.len(), 5);
        assert_eq!(cells[0], "2");
    }
}
