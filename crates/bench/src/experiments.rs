//! Reporting helpers shared by the experiment binaries.

use moccml_engine::{explore, ExploreOptions, StateSpaceStats};
use moccml_kernel::Specification;

/// Prints a Markdown-style table header.
pub fn table_header(columns: &[&str]) {
    println!("| {} |", columns.join(" | "));
    println!("|{}|", columns.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

/// Prints one Markdown-style table row.
pub fn table_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Explores `spec` (bounded) and returns the aggregate statistics.
#[must_use]
pub fn explore_stats(spec: &Specification, max_states: usize) -> StateSpaceStats {
    explore(spec, &ExploreOptions::default().with_max_states(max_states)).stats()
}

/// Formats statistics as experiment table cells:
/// states, transitions, deadlocks, max parallelism, mean branching.
#[must_use]
pub fn stats_cells(stats: &StateSpaceStats) -> Vec<String> {
    vec![
        stats.states.to_string(),
        stats.transitions.to_string(),
        stats.deadlocks.to_string(),
        stats.max_step_parallelism.to_string(),
        format!("{:.2}", stats.mean_branching),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use moccml_ccsl::Alternation;
    use moccml_kernel::Universe;

    #[test]
    fn stats_cells_have_five_columns() {
        let mut u = Universe::new();
        let (a, b) = (u.event("a"), u.event("b"));
        let mut spec = Specification::new("alt", u);
        spec.add_constraint(Box::new(Alternation::new("a~b", a, b)));
        let stats = explore_stats(&spec, 100);
        let cells = stats_cells(&stats);
        assert_eq!(cells.len(), 5);
        assert_eq!(cells[0], "2");
    }
}
