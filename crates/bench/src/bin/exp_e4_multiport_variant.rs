//! E4 — Sec. III variant remark: the multiport-memory place strictly
//! enlarges the set of acceptable schedules.
//!
//! Compares state-space statistics of the same producer/consumer graph
//! under the Fig. 3 place and the multiport variant.

use moccml_bench::experiments::{e4_graph, table_header, table_row};
use moccml_engine::{ExploreOptions, Program};
use moccml_sdf::mocc::{build_specification_with, MoccVariant};

fn main() {
    let g = e4_graph();

    println!("# E4 — MoCC variation: Fig. 3 place vs multiport memory");
    println!();
    table_header(&[
        "variant",
        "states",
        "transitions",
        "deadlocks",
        "max ∥",
        "schedules(len 6)",
    ]);
    for (label, variant) in [
        ("standard (Fig. 3)", MoccVariant::Standard),
        ("multiport", MoccVariant::Multiport),
    ] {
        let spec = build_specification_with(&g, variant).expect("builds");
        let space = Program::new(spec).explore(&ExploreOptions::default());
        let stats = space.stats();
        table_row(&[
            label.to_owned(),
            stats.states.to_string(),
            stats.transitions.to_string(),
            stats.deadlocks.to_string(),
            stats.max_step_parallelism.to_string(),
            space.count_schedules(6).to_string(),
        ]);
    }
    println!();
    println!("Expected shape: same states, strictly more transitions and");
    println!("schedules for the multiport variant (it adds read∧write steps).");
}
