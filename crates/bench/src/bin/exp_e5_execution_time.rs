//! E5 — Sec. III-A item 3: execution time.
//!
//! `stop` occurs at the N-th `isExecuting` after `start`; sweeping `N`
//! stretches activations over more steps without changing the dataflow
//! order. Reports throughput (consumer activations per step) for a
//! producer/consumer pair as N grows.

use moccml_bench::experiments::{e5_graph, table_header, table_row};
use moccml_engine::{ExploreOptions, Program, SafeMaxParallel, Simulator};
use moccml_sdf::mocc::build_specification;

fn main() {
    println!("# E5 — execution time N stretches schedules");
    println!();
    table_header(&["N", "states", "cons activations / 30 steps", "throughput"]);
    for n in [0u32, 1, 2, 4] {
        let g = e5_graph(n);
        let spec = build_specification(&g).expect("builds");
        let states = Program::compile(&spec)
            .explore(&ExploreOptions::default())
            .state_count();
        let mut sim = Simulator::new(spec, SafeMaxParallel);
        let report = sim.run(30);
        assert!(!report.deadlocked, "N={n} must not deadlock");
        let u = sim.specification().universe();
        let fired = report
            .schedule
            .occurrences(u.lookup("cons.start").expect("event"));
        table_row(&[
            n.to_string(),
            states.to_string(),
            fired.to_string(),
            format!("{:.3}", fired as f64 / 30.0),
        ]);
    }
    println!();
    println!("Expected shape: throughput decreases roughly as 1/(N+1);");
    println!("state count grows with N (the Busy counter).");
}
