//! E10 — observability non-perturbation smoke: one run of the seeded
//! PAM quad-core check ([`e8_seeded_local_pam`]) per worker count,
//! each executed three times — bare, disabled recorder, enabled
//! recorder — with the verdict, the visited-state effort and the full
//! `StateSpace` asserted identical across all three. The enabled run's
//! recorded totals are printed alongside so the observation itself is
//! visible in the same table that proves it changed nothing.
//!
//! CI-smokeable single-shot version of the `BENCH_obs.json` bench:
//!
//! ```text
//! exp_e10_obs_overhead --workers 4
//! ```
//!
//! Flags:
//!
//! * `--workers N` — highest worker count to run (default 4; every
//!   power of two up to `N` is run, always including the serial
//!   baseline).

use moccml_bench::experiments::{e8_seeded_local_pam, parse_flag, table_header, table_row};
use moccml_engine::{ExploreOptions, Program};
use moccml_obs::Recorder;
use moccml_verify::check_props;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let max_workers = parse_flag(&args, "--workers").unwrap_or(4).max(1);
    let mut worker_counts = vec![1];
    while *worker_counts.last().expect("non-empty") * 2 <= max_workers {
        worker_counts.push(worker_counts.last().expect("non-empty") * 2);
    }
    if *worker_counts.last().expect("non-empty") != max_workers {
        worker_counts.push(max_workers);
    }

    let (spec, prop) = e8_seeded_local_pam();
    let program = Program::compile(&spec);
    let props = std::slice::from_ref(&prop);

    println!("# E10 — observability non-perturbation on the seeded PAM check");
    println!();
    table_header(&[
        "workers",
        "violated",
        "states visited",
        "recorded expansions",
        "recorded spans",
        "identical off/on",
    ]);

    for &workers in &worker_counts {
        let base = ExploreOptions::default().with_workers(workers);

        let bare = check_props(&program, props, &base);
        let off = check_props(
            &program,
            props,
            &base.clone().with_recorder(&Recorder::disabled()),
        );
        let recorder = Recorder::new();
        let on = {
            let _span = recorder.span("check");
            check_props(&program, props, &base.clone().with_recorder(&recorder))
        };
        let identical = bare == off && bare == on;

        // the StateSpace itself must also be byte-identical on/on:
        // verdict equality alone would miss a recorder that reorders
        // absorption
        let space_off = program.explore(&base);
        let on_recorder = Recorder::new();
        let space_on = program.explore(&base.clone().with_recorder(&on_recorder));
        let spaces_identical = space_off == space_on;

        let snapshot = recorder.snapshot();
        table_row(&[
            workers.to_string(),
            bare.any_violated().to_string(),
            bare.states_visited.to_string(),
            snapshot.counter_sum("explore_expansions_w").to_string(),
            snapshot.spans.len().to_string(),
            (identical && spaces_identical).to_string(),
        ]);
        assert!(
            identical,
            "workers={workers}: the recorder perturbed the check verdict — \
             the non-perturbation contract is broken"
        );
        assert!(
            spaces_identical,
            "workers={workers}: the recorder perturbed the StateSpace — \
             the non-perturbation contract is broken"
        );
        assert!(
            snapshot.counter_sum("explore_expansions_w") > 0,
            "workers={workers}: the enabled recorder saw no expansions"
        );
    }

    println!();
    println!("Every row must be identical with the recorder off and on: the");
    println!("recorder only counts what the explorer does, it never changes");
    println!("what the explorer does.");
}
