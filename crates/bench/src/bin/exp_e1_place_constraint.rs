//! E1 — Fig. 3: behaviour of the `PlaceConstraint` automaton.
//!
//! Regenerates the acceptable-step table of the place automaton across
//! its occupancy range: `read` blocked without tokens, `write` blocked
//! without room, `size` initialised to `itsDelay`.

use moccml_automata::parse_library;
use moccml_kernel::{Constraint, Step, Universe};
use moccml_sdf::mocc::SDF_LIBRARY_SOURCE;

fn main() {
    let lib = parse_library(SDF_LIBRARY_SOURCE).expect("embedded library parses");
    let mut u = Universe::new();
    let (w, r) = (u.event("write"), u.event("read"));
    let capacity = 3i64;
    let delay = 1i64;
    let mut place = lib
        .instantiate("PlaceConstraint", "fig3")
        .expect("declared")
        .bind_event("write", w)
        .bind_event("read", r)
        .bind_int("pushRate", 1)
        .bind_int("popRate", 1)
        .bind_int("itsDelay", delay)
        .bind_int("itsCapacity", capacity)
        .finish()
        .expect("bindings complete");

    println!("# E1 — Fig. 3 PlaceConstraint (capacity={capacity}, delay={delay}, rates=1)");
    println!();
    moccml_bench::experiments::table_header(&["size", "write ok", "read ok", "write∧read ok"]);
    // sweep the occupancy by writing up to capacity (size starts at delay)
    for size in delay..=capacity {
        let f = place.current_formula();
        moccml_bench::experiments::table_row(&[
            size.to_string(),
            f.eval(&Step::from_events([w])).to_string(),
            f.eval(&Step::from_events([r])).to_string(),
            f.eval(&Step::from_events([w, r])).to_string(),
        ]);
        if size < capacity {
            place.fire(&Step::from_events([w])).expect("room available");
        }
    }
    println!();
    println!("Expected shape: write ok until size=capacity, read ok from size≥1,");
    println!("write∧read never (Fig. 3 has no joint transition).");
}
