//! E1 — Fig. 3: behaviour of the `PlaceConstraint` automaton.
//!
//! Regenerates the acceptable-step table of the place automaton across
//! its occupancy range: `read` blocked without tokens, `write` blocked
//! without room, `size` initialised to `itsDelay`.

use moccml_bench::experiments::{e1_place, table_header, table_row};
use moccml_kernel::{Constraint, Step};

fn main() {
    let capacity = 3i64;
    let delay = 1i64;
    let (mut place, w, r) = e1_place(capacity, delay);

    println!("# E1 — Fig. 3 PlaceConstraint (capacity={capacity}, delay={delay}, rates=1)");
    println!();
    table_header(&["size", "write ok", "read ok", "write∧read ok"]);
    // sweep the occupancy by writing up to capacity (size starts at delay)
    for size in delay..=capacity {
        let f = place.current_formula();
        table_row(&[
            size.to_string(),
            f.eval(&Step::from_events([w])).to_string(),
            f.eval(&Step::from_events([r])).to_string(),
            f.eval(&Step::from_events([w, r])).to_string(),
        ]);
        if size < capacity {
            place.fire(&Step::from_events([w])).expect("room available");
        }
    }
    println!();
    println!("Expected shape: write ok until size=capacity, read ok from size≥1,");
    println!("write∧read never (Fig. 3 has no joint transition).");
}
