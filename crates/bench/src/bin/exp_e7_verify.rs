//! E7 — the verification layer over the PAM study: on-the-fly property
//! checking with counterexample witnesses, schedule conformance, and
//! the standard-vs-multiport equivalence check.
//!
//! Prints one table of property verdicts on the quad-core PAM
//! deployment (with the early-stop state counts against the full
//! exploration), a conformance run on a recorded trace plus a
//! deliberately corrupted one, and the distinguishing schedule between
//! the two MoCC variants of the E4 producer/consumer graph.
//!
//! Flags:
//!
//! * `--workers N` — worker threads for the on-the-fly explorer
//!   (default: available parallelism; every verdict and counterexample
//!   is identical for every value);
//! * `--max-states N` — exploration bound (default 200 000).

use moccml_bench::experiments::{
    e4_graph, e7_conformance_trace, e7_violating_pam, parse_flag, table_header, table_row,
};
use moccml_engine::{ExploreOptions, Program};
use moccml_kernel::{Schedule, Step, StepPred};
use moccml_sdf::mocc::{build_specification_with, MoccVariant};
use moccml_verify::{
    check_equivalence, check_props, conformance, EquivOptions, EquivalenceVerdict, Prop,
    PropStatus, Verdict,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = ExploreOptions::default()
        .with_max_states(parse_flag(&args, "--max-states").unwrap_or(200_000));
    if let Some(workers) = parse_flag(&args, "--workers") {
        options = options.with_workers(workers);
    }

    println!("# E7 — verification: properties, conformance, equivalence");
    println!();
    println!(
        "(checking with {} worker(s), max {} states)",
        options.workers, options.max_states
    );
    println!();

    // ---- on-the-fly property checking on the quad-core deployment
    let (spec, seeded_prop) = e7_violating_pam();
    let universe = spec.universe().clone();
    let program = Program::compile(&spec);
    let lookup = |name: &str| universe.lookup(name).expect("PAM event");
    let props = [
        seeded_prop,
        Prop::DeadlockFree,
        Prop::Never(StepPred::and(
            StepPred::fired(lookup("hydroA.start")),
            StepPred::fired(lookup("hydroB.start")),
        )),
        Prop::Always(StepPred::implies(
            lookup("detect.start"),
            lookup("fusion.stop"),
        )),
        Prop::EventuallyWithin(StepPred::fired(lookup("detect.start")), 6),
    ];
    let full_states = program.explore(&options).state_count();
    println!("## quad-core PAM, full exploration: {full_states} states");
    println!();
    table_header(&["property", "status", "|counterexample|", "states visited"]);
    let mut seeded_witness = None;
    for (i, prop) in props.iter().enumerate() {
        // one exploration per property so each row shows its own
        // early-stop cost
        let report = check_props(&program, std::slice::from_ref(prop), &options);
        let (status, ce_len) = match &report.statuses[0] {
            PropStatus::Holds => ("holds".to_owned(), "—".to_owned()),
            PropStatus::Violated(ce) => {
                if i == 0 {
                    seeded_witness = Some(ce.schedule.clone());
                }
                ("violated".to_owned(), ce.schedule.len().to_string())
            }
            PropStatus::Undetermined => ("undetermined".to_owned(), "—".to_owned()),
        };
        table_row(&[
            prop.display(&universe),
            status,
            ce_len,
            report.states_visited.to_string(),
        ]);
    }
    println!();

    // the seeded violating property's witness (props[0], captured
    // above), as replayable text
    let witness = seeded_witness.expect("seeded violation");
    println!("## seeded counterexample (replayable, `Schedule::parse_lines` format)");
    println!();
    println!(
        "{}",
        witness.to_lines(&universe).expect("plain event names")
    );

    // ---- conformance: a recorded trace, then a corrupted one
    let (conf_spec, trace) = e7_conformance_trace(20);
    let conf_program = Program::compile(&conf_spec);
    println!("## conformance");
    println!();
    println!(
        "recorded 20-step trace: {:?}",
        conformance(&conf_program, &trace)
    );
    let mut corrupted = Schedule::new();
    // stopping the detector before it ever started violates its agent
    // constraint at step 0
    corrupted.push(Step::from_events([lookup("detect.stop")]));
    match conformance(&conf_program, &corrupted) {
        Verdict::Violation { step, violated } => {
            println!("corrupted trace: violation at step {step}, constraints {violated:?}");
        }
        Verdict::Conforms => println!("corrupted trace: unexpectedly conforms"),
    }
    println!();

    // ---- equivalence: standard vs multiport MoCC on E4
    let standard =
        Program::new(build_specification_with(&e4_graph(), MoccVariant::Standard).expect("builds"));
    let multiport = Program::new(
        build_specification_with(&e4_graph(), MoccVariant::Multiport).expect("builds"),
    );
    println!("## equivalence: E4 standard vs multiport place semantics");
    println!();
    match check_equivalence(
        &standard,
        &multiport,
        &EquivOptions::default().with_max_states(options.max_states),
    )
    .expect("same universe")
    {
        EquivalenceVerdict::Distinguished(d) => {
            println!(
                "distinguished after {} common step(s): step {} accepted by {:?} only",
                d.schedule.len(),
                d.step.display(standard.specification().universe()),
                d.only_accepted_by,
            );
        }
        other => println!("{other:?}"),
    }
}
