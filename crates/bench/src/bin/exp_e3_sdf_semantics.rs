//! E3 — Sec. III-A / Listing 1: the woven SDF MoCC reproduces SDF
//! firing semantics.
//!
//! Simulates a multirate graph under the woven execution model and
//! checks token conservation against the repetition vector; prints the
//! simulation trace as a timing diagram (the paper's "simulation
//! traces" artefact).

use moccml_bench::experiments::{e3_graph, table_header, table_row};
use moccml_engine::{SafeMaxParallel, Simulator};
use moccml_sdf::analysis::repetition_vector;
use moccml_sdf::mocc::MoccVariant;
use moccml_sdf::model_bridge::weave_specification;

fn main() {
    // a --2:3--> b --1:1--> c, bounded places
    let g = e3_graph();

    let r = repetition_vector(&g).expect("consistent graph");
    println!("# E3 — SDF semantics through the metamodel pipeline");
    println!();
    println!("repetition vector: {r:?} (a fires 3×, b 2×, c 2× per iteration)");
    println!();

    let spec = weave_specification(&g, MoccVariant::Standard).expect("weaves");
    let mut sim = Simulator::new(spec, SafeMaxParallel);
    let report = sim.run(24);
    let u = sim.specification().universe();

    println!(
        "simulation trace ({} steps, policy safe-max-parallel):",
        report.steps_taken
    );
    println!();
    println!("{}", report.schedule.render_timing_diagram(u));
    println!();

    table_header(&["agent", "activations", "per-iteration ratio"]);
    let names = ["a", "b", "c"];
    let counts: Vec<usize> = names
        .iter()
        .map(|n| {
            report
                .schedule
                .occurrences(u.lookup(&format!("{n}.start")).expect("event"))
        })
        .collect();
    for (i, name) in names.iter().enumerate() {
        table_row(&[
            (*name).to_owned(),
            counts[i].to_string(),
            format!("{:.2}", counts[i] as f64 / counts[0] as f64 * r[0] as f64),
        ]);
    }
    println!();
    println!(
        "deadlocked: {} — expected false; activation ratios must track {r:?}",
        report.deadlocked
    );
}
