//! E9 — explorer scaling on the drift-cube workload: one exploration
//! of the three-bounded-precedences-under-exclusion specification
//! ([`e9_scale_spec`]) per requested worker count, with states/sec
//! throughput and a determinism check (every worker count must build
//! the identical `StateSpace` as the serial run).
//!
//! The full workload (bound 46 → 103,823 states) is what
//! `BENCH_explore_scale.json` measures; this binary is the
//! CI-smokeable single-shot version — bounded runs stay fast:
//!
//! ```text
//! exp_e9_explore_scale --workers 2 --max-states 20000
//! ```
//!
//! Flags:
//!
//! * `--workers N` — highest worker count to run (default 4; every
//!   power of two up to `N` is run, always including the serial
//!   baseline);
//! * `--max-states N` — exploration bound (default 150 000: the full
//!   cube, untruncated);
//! * `--bound N` — drift bound per precedence pair (default 46; the
//!   reachable space is `(N + 1)³`).

use moccml_bench::experiments::{e9_scale_spec, parse_flag, table_header, table_row};
use moccml_engine::{ExploreMonitor, ExploreOptions, Program, StateSpace};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bound = parse_flag(&args, "--bound").unwrap_or(46) as u64;
    let max_states = parse_flag(&args, "--max-states").unwrap_or(150_000);
    let max_workers = parse_flag(&args, "--workers").unwrap_or(4).max(1);
    let mut worker_counts = vec![1];
    while *worker_counts.last().expect("non-empty") * 2 <= max_workers {
        worker_counts.push(worker_counts.last().expect("non-empty") * 2);
    }
    if *worker_counts.last().expect("non-empty") != max_workers {
        worker_counts.push(max_workers);
    }

    let (spec, expected) = e9_scale_spec(bound);
    let program = Program::compile(&spec);
    let base = ExploreOptions::default().with_max_states(max_states);

    println!("# E9 — explorer scaling on the drift cube");
    println!();
    println!(
        "(bound {bound} → {expected} reachable states; exploring up to \
         {max_states} states)"
    );
    println!();
    table_header(&[
        "workers",
        "states",
        "transitions",
        "truncated",
        "wall-clock",
        "states/sec",
        "identical to serial",
    ]);

    let mut serial: Option<StateSpace> = None;
    for &workers in &worker_counts {
        // throughput comes from the monitor, whose clock freezes at the
        // exploration's terminal record — the outer wall-clock (printed
        // alongside) also pays for pool teardown and arena moves, which
        // used to deflate the states/sec figure at high worker counts
        let monitor = ExploreMonitor::new();
        let start = Instant::now();
        let space = program.explore(&base.clone().with_workers(workers).with_monitor(&monitor));
        let elapsed = start.elapsed();
        let identical = serial.as_ref().is_none_or(|s| *s == space);
        let rate = monitor.snapshot().states_per_sec();
        table_row(&[
            workers.to_string(),
            space.state_count().to_string(),
            space.transition_count().to_string(),
            space.truncated().to_string(),
            format!("{:.3} s", elapsed.as_secs_f64()),
            format!("{rate:.0}"),
            identical.to_string(),
        ]);
        assert!(
            identical,
            "workers={workers} diverged from the serial StateSpace — \
             the canonical-replay determinism contract is broken"
        );
        serial.get_or_insert(space);
    }

    println!();
    println!("Every row must be identical to the serial baseline: worker");
    println!("threads only change who expands a frontier state, never the");
    println!("order in which discoveries are absorbed.");
}
