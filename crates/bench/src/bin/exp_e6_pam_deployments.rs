//! E6 — the PAM study (paper conclusion): infinite resources vs three
//! deployments, evaluated by exhaustive exploration and simulation.
//!
//! Regenerates the quantitative scheduling-state-space table and one
//! simulation trace per configuration.
//!
//! Flags:
//!
//! * `--workers N` — worker threads for the parallel explorer
//!   (default: available parallelism; the table is identical for every
//!   value, only the wall-clock changes);
//! * `--max-states N` — exploration bound (default 200 000).

use moccml_bench::experiments::{
    e6_configs, explore_stats_with, parse_flag, stats_cells, table_header, table_row,
};
use moccml_engine::{ExploreOptions, MaxParallel, SafeMaxParallel, Simulator};
use moccml_sdf::pam;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = ExploreOptions::default()
        .with_max_states(parse_flag(&args, "--max-states").unwrap_or(200_000));
    if let Some(workers) = parse_flag(&args, "--workers") {
        options = options.with_workers(workers);
    }

    println!("# E6 — PAM: impact of allocation on the valid scheduling");
    println!();
    println!(
        "(exploring with {} worker(s), max {} states)",
        options.workers, options.max_states
    );
    println!();
    table_header(&[
        "configuration",
        "states",
        "transitions",
        "deadlock states",
        "max ∥",
        "mean branching",
        "greedy sim deadlocks?",
        "safe sim 30 steps?",
    ]);

    for (name, spec) in &e6_configs() {
        let stats = explore_stats_with(spec, &options);
        let greedy = Simulator::new(spec.clone(), MaxParallel).run(30);
        let safe = Simulator::new(spec.clone(), SafeMaxParallel).run(30);
        let mut cells = vec![name.clone()];
        cells.extend(stats_cells(&stats));
        cells.push(greedy.deadlocked.to_string());
        cells.push((!safe.deadlocked && safe.steps_taken == 30).to_string());
        table_row(&cells);
    }

    println!();
    println!("Expected shape: allocation shrinks attainable parallelism");
    println!("(mono < dual < quad ≤ infinite), introduces reachable deadlock");
    println!("states (mono > dual > quad > infinite = 0), and greedy");
    println!("scheduling wedges on the tighter platforms while one-step");
    println!("lookahead always completes.");
    println!();

    // one simulation trace, the paper's other artefact
    let spec = pam::infinite_resources().expect("builds");
    let mut sim = Simulator::new(spec, SafeMaxParallel);
    let report = sim.run(12);
    println!("## infinite-resource simulation trace (12 steps)");
    println!();
    println!(
        "{}",
        report
            .schedule
            .render_timing_diagram(sim.specification().universe())
    );
}
