//! E2 — Sec. II-C: conjunction semantics.
//!
//! Regenerates the claim that an unconstrained universe of `n` events
//! admits `2^n` steps and that every added constraint monotonically
//! shrinks the acceptable-step set (sub-event = implication).

use moccml_bench::experiments::{e2_spec, table_header, table_row};
use moccml_ccsl::{Exclusion, Precedence, SubClock};
use moccml_engine::{Program, SolverOptions};

fn main() {
    let n = 4usize;
    let (mut spec, events) = e2_spec(n);
    let options = SolverOptions::default().with_empty(true);

    println!(
        "# E2 — conjunction semantics over {n} events (2^{n} = {} futures)",
        1 << n
    );
    println!();
    table_header(&["constraints", "acceptable steps"]);

    // the solver enumerates over constrained events; to observe the
    // full universe we first constrain every event vacuously via a
    // self-implication-free trick: an exclusion between fresh pairs
    // would restrict, so instead count analytically for step 0.
    table_row(&["(none)".to_owned(), (1u64 << n).to_string()]);

    spec.add_constraint(Box::new(SubClock::new("e0⊆e1", events[0], events[1])));
    let s1 = Program::compile(&spec).cursor().acceptable_steps(&options);
    // the two unconstrained events each double the count
    let free = spec.free_events().len() as u32;
    table_row(&[
        "e0 ⊆ e1".to_owned(),
        (s1.len() as u64 * (1u64 << free)).to_string(),
    ]);

    spec.add_constraint(Box::new(Exclusion::new("e1#e2", [events[1], events[2]])));
    let s2 = Program::compile(&spec).cursor().acceptable_steps(&options);
    let free = spec.free_events().len() as u32;
    table_row(&[
        "+ e1 # e2".to_owned(),
        (s2.len() as u64 * (1u64 << free)).to_string(),
    ]);

    spec.add_constraint(Box::new(Precedence::strict("e2<e3", events[2], events[3])));
    let s3 = Program::compile(&spec).cursor().acceptable_steps(&options);
    table_row(&["+ e2 < e3 (initial state)".to_owned(), s3.len().to_string()]);

    println!();
    println!("Expected shape: strictly decreasing — each conjunct removes steps.");
}
