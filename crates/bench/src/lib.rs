//! # moccml-bench
//!
//! Experiment harness for the MoCCML reproduction: shared workload
//! builders, the offline std-only bench [`harness`], and the single
//! reporting path ([`report`]) used by the `exp_e*` binaries (one per
//! experiment of DESIGN.md §4), the `[[bench]]` targets and the
//! examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod report;
pub mod workloads;
