//! # moccml-bench
//!
//! Experiment harness for the MoCCML reproduction: shared workload
//! builders and reporting helpers used by the `exp_e*` binaries (one per
//! experiment of DESIGN.md §4), the Criterion benches and the examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod workloads;
