//! A std-only micro-benchmark harness: `Instant`-based timing with
//! warmup, a fixed iteration count, and median/p95 reporting.
//!
//! Replaces criterion (unfetchable in this offline workspace) for the
//! `[[bench]]` targets; results go through [`crate::report`] — the
//! same path the `exp_e*` binaries use — as a Markdown table plus a
//! `BENCH_<group>.json` baseline.
//!
//! ## Example
//!
//! ```no_run
//! use moccml_bench::harness::BenchGroup;
//!
//! let mut group = BenchGroup::new("demo");
//! group.bench("sum_1k", || (0..1000u64).sum::<u64>());
//! group.finish();
//! ```

use crate::report::{table_header, table_row, write_bench_json, BenchRecord};
use std::hint::black_box;
use std::time::Instant;

/// Default measured iterations per benchmark.
pub const DEFAULT_ITERS: u32 = 30;
/// Default warmup iterations (timed but discarded).
pub const DEFAULT_WARMUP: u32 = 3;

/// Times one closure: `warmup` discarded runs, then `iters` measured
/// runs, returning the per-iteration statistics.
///
/// The closure's return value is routed through
/// [`std::hint::black_box`] so the optimizer cannot delete the work.
///
/// # Panics
///
/// Panics if `iters` is zero.
pub fn measure<T>(name: &str, warmup: u32, iters: u32, mut f: impl FnMut() -> T) -> BenchRecord {
    assert!(iters > 0, "iters must be positive");
    for _ in 0..warmup {
        black_box(f());
    }
    let mut samples: Vec<u128> = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let start = Instant::now();
        black_box(f());
        samples.push(start.elapsed().as_nanos());
    }
    samples.sort_unstable();
    let sum: u128 = samples.iter().sum();
    BenchRecord {
        name: name.to_owned(),
        iters,
        min_ns: samples[0],
        mean_ns: sum / u128::from(iters),
        median_ns: percentile(&samples, 50),
        p95_ns: percentile(&samples, 95),
        max_ns: samples[samples.len() - 1],
        states: 0,
    }
}

/// The `p`-th percentile of sorted nanosecond samples
/// (nearest-rank method).
fn percentile(sorted: &[u128], p: u32) -> u128 {
    debug_assert!(!sorted.is_empty());
    let rank = (u128::from(p) * sorted.len() as u128).div_ceil(100);
    sorted[(rank.max(1) as usize) - 1]
}

/// A named collection of benchmarks sharing iteration settings; on
/// [`finish`](BenchGroup::finish) it prints one table and writes
/// `BENCH_<group>.json`.
#[derive(Debug)]
pub struct BenchGroup {
    group: String,
    warmup: u32,
    iters: u32,
    records: Vec<BenchRecord>,
}

impl BenchGroup {
    /// Creates a group with the default warmup/iteration counts.
    #[must_use]
    pub fn new(group: &str) -> Self {
        BenchGroup {
            group: group.to_owned(),
            warmup: DEFAULT_WARMUP,
            iters: DEFAULT_ITERS,
            records: Vec::new(),
        }
    }

    /// Overrides the measured iteration count for subsequent
    /// [`bench`](BenchGroup::bench) calls (heavy workloads use fewer).
    #[must_use]
    pub fn with_iters(mut self, iters: u32) -> Self {
        self.iters = iters;
        self
    }

    /// Overrides the warmup count for subsequent benches.
    #[must_use]
    pub fn with_warmup(mut self, warmup: u32) -> Self {
        self.warmup = warmup;
        self
    }

    /// Runs and records one benchmark.
    pub fn bench<T>(&mut self, name: &str, f: impl FnMut() -> T) {
        let record = measure(name, self.warmup, self.iters, f);
        eprintln!(
            "  {}/{}: median {} (p95 {}, {} iters)",
            self.group,
            record.name,
            crate::report::format_ns(record.median_ns),
            crate::report::format_ns(record.p95_ns),
            record.iters,
        );
        self.records.push(record);
    }

    /// Runs and records one *throughput* benchmark: `states` is the
    /// number of work items (e.g. explored states) each iteration
    /// processes, and the record's derived
    /// [`states_per_sec`](BenchRecord::states_per_sec) lands in the
    /// JSON baseline next to the timing statistics.
    pub fn bench_states<T>(&mut self, name: &str, states: u64, f: impl FnMut() -> T) {
        let mut record = measure(name, self.warmup, self.iters, f);
        record.states = states;
        let rate = record
            .states_per_sec()
            .map_or(String::new(), |sps| format!(", {sps:.0} states/s"));
        eprintln!(
            "  {}/{}: median {} (p95 {}, {} iters{rate})",
            self.group,
            record.name,
            crate::report::format_ns(record.median_ns),
            crate::report::format_ns(record.p95_ns),
            record.iters,
        );
        self.records.push(record);
    }

    /// Measured records so far (mostly for tests).
    #[must_use]
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// Prints the group's Markdown table and writes the JSON baseline,
    /// returning the records.
    ///
    /// # Panics
    ///
    /// Panics if the JSON baseline cannot be written.
    pub fn finish(self) -> Vec<BenchRecord> {
        println!();
        println!("## bench group `{}`", self.group);
        println!();
        table_header(&["benchmark", "iters", "median", "p95", "min"]);
        for r in &self.records {
            table_row(&r.cells());
        }
        println!();
        let path = write_bench_json(&self.group, &self.records)
            .expect("BENCH json baseline must be writable");
        println!("baseline written to {}", path.display());
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_produces_ordered_stats() {
        let r = measure("spin", 1, 25, || {
            let mut acc = 0u64;
            for i in 0..500u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert_eq!(r.iters, 25);
        assert!(r.min_ns <= r.median_ns);
        assert!(r.median_ns <= r.p95_ns);
        assert!(r.p95_ns <= r.max_ns);
        assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        let sorted: Vec<u128> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50), 50);
        assert_eq!(percentile(&sorted, 95), 95);
        assert_eq!(percentile(&[7], 95), 7);
        assert_eq!(percentile(&[3, 9], 50), 3);
    }

    #[test]
    fn group_collects_records() {
        let mut g = BenchGroup::new("unit").with_iters(3).with_warmup(0);
        g.bench("noop", || 1u8);
        g.bench("noop2", || 2u8);
        assert_eq!(g.records().len(), 2);
        assert_eq!(g.records()[0].name, "noop");
        assert_eq!(g.records()[1].iters, 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_iters_panics() {
        measure("bad", 0, 0, || ());
    }

    #[test]
    fn bench_states_tags_the_record_with_throughput() {
        let mut g = BenchGroup::new("unit").with_iters(3).with_warmup(0);
        g.bench_states("work", 1_000, || {
            let mut acc = 0u64;
            for i in 0..1_000u64 {
                acc = acc.wrapping_add(i);
            }
            acc
        });
        let r = &g.records()[0];
        assert_eq!(r.states, 1_000);
        assert!(r.states_per_sec().expect("throughput set") > 0.0);
    }
}
