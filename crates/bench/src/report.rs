//! The single reporting path shared by the `exp_e*` experiment
//! binaries and the bench targets: Markdown tables on stdout and
//! `BENCH_<group>.json` files at the workspace root.
//!
//! Hand-rolled JSON writing keeps the workspace buildable with no
//! network access (no serde).

use std::io::Write;
use std::path::{Path, PathBuf};

/// Prints a Markdown-style table header.
pub fn table_header(columns: &[&str]) {
    println!("| {} |", columns.join(" | "));
    println!(
        "|{}|",
        columns.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Prints one Markdown-style table row.
pub fn table_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// One measured benchmark: a label plus nanosecond statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchRecord {
    /// Benchmark label, e.g. `subclock_chain/8`.
    pub name: String,
    /// Measured iterations (after warmup).
    pub iters: u32,
    /// Fastest iteration, in nanoseconds.
    pub min_ns: u128,
    /// Mean over all iterations, in nanoseconds.
    pub mean_ns: u128,
    /// Median over all iterations, in nanoseconds.
    pub median_ns: u128,
    /// 95th-percentile iteration, in nanoseconds.
    pub p95_ns: u128,
    /// Slowest iteration, in nanoseconds.
    pub max_ns: u128,
    /// Work items (e.g. explored states) processed per iteration;
    /// `0` means "not a throughput benchmark" and suppresses the
    /// derived `states_per_sec` JSON member.
    pub states: u64,
}

impl BenchRecord {
    /// Median throughput in items per second, or `None` for
    /// non-throughput records ([`states`](BenchRecord::states) is 0).
    #[must_use]
    pub fn states_per_sec(&self) -> Option<f64> {
        if self.states == 0 || self.median_ns == 0 {
            return None;
        }
        Some(self.states as f64 * 1e9 / self.median_ns as f64)
    }
    /// The five standard table cells for [`table_row`]:
    /// name, iters, median, p95, min.
    #[must_use]
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.name.clone(),
            self.iters.to_string(),
            format_ns(self.median_ns),
            format_ns(self.p95_ns),
            format_ns(self.min_ns),
        ]
    }
}

/// Formats a nanosecond count with a human-readable unit.
#[must_use]
pub fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Where `BENCH_*.json` files land: `$MOCCML_BENCH_OUT` if set,
/// otherwise the workspace root (the nearest ancestor of the current
/// directory whose `Cargo.toml` declares `[workspace]`, matching
/// cargo's own resolution), otherwise the current directory.
#[must_use]
pub fn output_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("MOCCML_BENCH_OUT") {
        return PathBuf::from(dir);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    cwd.ancestors()
        .find(|dir| manifest_declares_workspace(&dir.join("Cargo.toml")))
        .map_or(cwd.clone(), Path::to_path_buf)
}

fn manifest_declares_workspace(manifest: &Path) -> bool {
    std::fs::read_to_string(manifest)
        .map(|text| text.lines().any(|l| l.trim() == "[workspace]"))
        .unwrap_or(false)
}

/// Writes `BENCH_<group>.json` into [`output_dir`] and returns its
/// path.
///
/// # Errors
///
/// Propagates any I/O failure creating or writing the file.
pub fn write_bench_json(group: &str, records: &[BenchRecord]) -> std::io::Result<PathBuf> {
    let path = output_dir().join(format!("BENCH_{group}.json"));
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"group\": {},\n", json_string(group)));
    out.push_str("  \"unit\": \"ns\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let throughput = r.states_per_sec().map_or(String::new(), |sps| {
            format!(", \"states\": {}, \"states_per_sec\": {sps:.1}", r.states)
        });
        out.push_str(&format!(
            "    {{\"name\": {}, \"iters\": {}, \"min_ns\": {}, \"mean_ns\": {}, \
             \"median_ns\": {}, \"p95_ns\": {}, \"max_ns\": {}{}}}{}\n",
            json_string(&r.name),
            r.iters,
            r.min_ns,
            r.mean_ns,
            r.median_ns,
            r.p95_ns,
            r.max_ns,
            throughput,
            if i + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let mut file = std::fs::File::create(&path)?;
    file.write_all(out.as_bytes())?;
    Ok(path)
}

/// Escapes a string as a JSON string literal (quotes included).
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // the two env-mutating tests must not interleave
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn format_ns_picks_units() {
        assert_eq!(format_ns(999), "999 ns");
        assert_eq!(format_ns(1_500), "1.500 µs");
        assert_eq!(format_ns(2_000_000), "2.000 ms");
        assert_eq!(format_ns(3_000_000_000), "3.000 s");
    }

    #[test]
    fn bench_json_round_trips_to_disk() {
        let _guard = ENV_LOCK.lock().expect("env lock");
        let dir = std::env::temp_dir().join("moccml_bench_report_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        std::env::set_var("MOCCML_BENCH_OUT", &dir);
        let records = [BenchRecord {
            name: "unit/1".to_owned(),
            iters: 5,
            min_ns: 10,
            mean_ns: 12,
            median_ns: 11,
            p95_ns: 15,
            max_ns: 16,
            states: 0,
        }];
        let path = write_bench_json("selftest", &records).expect("writes");
        std::env::remove_var("MOCCML_BENCH_OUT");
        let text = std::fs::read_to_string(&path).expect("readable");
        assert!(path.ends_with("BENCH_selftest.json"));
        assert!(text.contains("\"group\": \"selftest\""));
        assert!(text.contains("\"median_ns\": 11"));
        assert!(
            !text.contains("states_per_sec"),
            "non-throughput records carry no derived rate"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn throughput_records_derive_states_per_sec() {
        let record = BenchRecord {
            name: "scale/workers=1".to_owned(),
            iters: 5,
            min_ns: 900,
            mean_ns: 1_000,
            median_ns: 1_000,
            p95_ns: 1_100,
            max_ns: 1_200,
            states: 2_000,
        };
        // 2000 items in 1000 ns median → 2e9 items/sec
        let sps = record.states_per_sec().expect("throughput record");
        assert!((sps - 2e9).abs() < 1e-3, "{sps}");
        let none = BenchRecord {
            states: 0,
            ..record
        };
        assert_eq!(none.states_per_sec(), None);

        let _guard = ENV_LOCK.lock().expect("env lock");
        let dir = std::env::temp_dir().join("moccml_bench_report_test_tp");
        std::fs::create_dir_all(&dir).expect("temp dir");
        std::env::set_var("MOCCML_BENCH_OUT", &dir);
        let records = [BenchRecord {
            states: 2_000,
            name: "scale/workers=1".to_owned(),
            iters: 5,
            min_ns: 900,
            mean_ns: 1_000,
            median_ns: 1_000,
            p95_ns: 1_100,
            max_ns: 1_200,
        }];
        let path = write_bench_json("tp_selftest", &records).expect("writes");
        std::env::remove_var("MOCCML_BENCH_OUT");
        let text = std::fs::read_to_string(&path).expect("readable");
        assert!(text.contains("\"states\": 2000"), "{text}");
        assert!(text.contains("\"states_per_sec\": 2000000000.0"), "{text}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn output_dir_honours_env_override() {
        let _guard = ENV_LOCK.lock().expect("env lock");
        std::env::set_var("MOCCML_BENCH_OUT", "/tmp/somewhere");
        let dir = output_dir();
        std::env::remove_var("MOCCML_BENCH_OUT");
        assert_eq!(dir, PathBuf::from("/tmp/somewhere"));
    }
}
