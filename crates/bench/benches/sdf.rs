//! E1/E3/E4/B2 bench targets — the SDF MoCC under the generic engine.
//!
//! * `place_constraint` (E1): formula construction + firing throughput
//!   of the Fig. 3 automaton.
//! * `sdf_simulation` (E3): simulation steps/second on pipeline graphs.
//! * `mocc_variants` (E4): exploration cost, standard vs multiport.
//! * `exploration_scaling` (B2): state-space construction vs chain
//!   length and place capacity.
//!
//! Runs on the in-repo `Instant`-based harness (criterion is not
//! fetchable offline); emits `BENCH_sdf.json` at the workspace root.

use moccml_bench::experiments::e1_place;
use moccml_bench::harness::BenchGroup;
use moccml_bench::workloads::{sdf_chain, sdf_diamond};
use moccml_engine::{ExploreOptions, MaxParallel, Program, Simulator};
use moccml_kernel::{Constraint, Step};
use moccml_sdf::mocc::{build_specification, build_specification_with, MoccVariant};
use std::hint::black_box;

fn main() {
    let mut group = BenchGroup::new("sdf").with_iters(15);

    let (place, w, r) = e1_place(4, 0);
    group.bench("place_constraint/formula", || {
        black_box(&place).current_formula()
    });
    let write = Step::from_events([w]);
    let read = Step::from_events([r]);
    group.bench("place_constraint/fire_cycle", || {
        let mut p = place.clone();
        p.fire(black_box(&write)).expect("room");
        p.fire(black_box(&read)).expect("token");
    });

    for stages in [4usize, 8] {
        let spec = build_specification(&sdf_chain(stages, 2)).expect("builds");
        group.bench(&format!("simulation_chain_50_steps/{stages}"), || {
            let mut sim = Simulator::new(spec.clone(), MaxParallel);
            sim.run(50)
        });
    }

    let graph = sdf_chain(4, 2);
    for (label, variant) in [
        ("standard", MoccVariant::Standard),
        ("multiport", MoccVariant::Multiport),
    ] {
        let spec = build_specification_with(&graph, variant).expect("builds");
        group.bench(&format!("mocc_variants/{label}"), || {
            Program::compile(black_box(&spec)).explore(&ExploreOptions::default())
        });
    }

    let mut group = group.with_iters(10);
    for stages in [3usize, 5, 7] {
        let spec = build_specification(&sdf_chain(stages, 2)).expect("builds");
        group.bench(&format!("exploration_chain/{stages}"), || {
            Program::compile(black_box(&spec)).explore(&ExploreOptions::default())
        });
    }
    for capacity in [1u32, 2, 4] {
        let spec = build_specification(&sdf_chain(4, capacity)).expect("builds");
        group.bench(&format!("exploration_capacity/{capacity}"), || {
            Program::compile(black_box(&spec)).explore(&ExploreOptions::default())
        });
    }
    let diamond = build_specification(&sdf_diamond(3)).expect("builds");
    group.bench("exploration_diamond/3", || {
        Program::compile(black_box(&diamond)).explore(&ExploreOptions::default())
    });

    group.finish();
}
