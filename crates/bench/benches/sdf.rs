//! E1/E3/E4/B2 bench targets — the SDF MoCC under the generic engine.
//!
//! * `place_constraint` (E1): formula construction + firing throughput
//!   of the Fig. 3 automaton.
//! * `sdf_simulation` (E3): simulation steps/second on pipeline graphs.
//! * `mocc_variants` (E4): exploration cost, standard vs multiport.
//! * `exploration_scaling` (B2): state-space construction vs chain
//!   length and place capacity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moccml_bench::workloads::{sdf_chain, sdf_diamond};
use moccml_engine::{explore, ExploreOptions, Policy, Simulator};
use moccml_kernel::{Constraint, Step, Universe};
use moccml_sdf::mocc::{build_specification, build_specification_with, MoccVariant};
use std::hint::black_box;

fn bench_place_constraint(c: &mut Criterion) {
    let lib = moccml_sdf::mocc::sdf_library();
    let mut u = Universe::new();
    let (w, r) = (u.event("w"), u.event("r"));
    let place = lib
        .instantiate("PlaceConstraint", "p")
        .expect("declared")
        .bind_event("write", w)
        .bind_event("read", r)
        .bind_int("pushRate", 1)
        .bind_int("popRate", 1)
        .bind_int("itsDelay", 0)
        .bind_int("itsCapacity", 4)
        .finish()
        .expect("bindings complete");
    c.bench_function("place_constraint_formula", |b| {
        b.iter(|| black_box(&place).current_formula());
    });
    c.bench_function("place_constraint_fire_cycle", |b| {
        let write = Step::from_events([w]);
        let read = Step::from_events([r]);
        b.iter(|| {
            let mut p = place.clone();
            p.fire(black_box(&write)).expect("room");
            p.fire(black_box(&read)).expect("token");
        });
    });
}

fn bench_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sdf_simulation");
    group.sample_size(15);
    for stages in [4usize, 8] {
        let spec = build_specification(&sdf_chain(stages, 2)).expect("builds");
        group.bench_with_input(BenchmarkId::new("chain_50_steps", stages), &spec, |b, spec| {
            b.iter(|| {
                let mut sim = Simulator::new(spec.clone(), Policy::MaxParallel);
                black_box(sim.run(50))
            });
        });
    }
    group.finish();
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("mocc_variants");
    group.sample_size(15);
    let graph = sdf_chain(4, 2);
    for (label, variant) in [
        ("standard", MoccVariant::Standard),
        ("multiport", MoccVariant::Multiport),
    ] {
        let spec = build_specification_with(&graph, variant).expect("builds");
        group.bench_function(label, |b| {
            b.iter(|| explore(black_box(&spec), &ExploreOptions::default()));
        });
    }
    group.finish();
}

fn bench_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("exploration_scaling");
    group.sample_size(10);
    for stages in [3usize, 5, 7] {
        let spec = build_specification(&sdf_chain(stages, 2)).expect("builds");
        group.bench_with_input(BenchmarkId::new("chain", stages), &spec, |b, spec| {
            b.iter(|| explore(black_box(spec), &ExploreOptions::default()));
        });
    }
    for capacity in [1u32, 2, 4] {
        let spec = build_specification(&sdf_chain(4, capacity)).expect("builds");
        group.bench_with_input(
            BenchmarkId::new("capacity", capacity),
            &spec,
            |b, spec| {
                b.iter(|| explore(black_box(spec), &ExploreOptions::default()));
            },
        );
    }
    let diamond = build_specification(&sdf_diamond(3)).expect("builds");
    group.bench_function("diamond_3", |b| {
        b.iter(|| explore(black_box(&diamond), &ExploreOptions::default()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_place_constraint,
    bench_simulation,
    bench_variants,
    bench_exploration
);
criterion_main!(benches);
