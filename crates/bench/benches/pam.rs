//! E6 bench target — the PAM study: exploration and simulation cost of
//! the infinite-resource model and the three deployments, plus the
//! serial-vs-parallel exploration pair on the largest deployment
//! state-space.
//!
//! Runs on the in-repo `Instant`-based harness (criterion is not
//! fetchable offline); emits `BENCH_pam.json` at the workspace root.

use moccml_bench::experiments::e6_configs;
use moccml_bench::harness::BenchGroup;
use moccml_engine::{ExploreOptions, Program, SafeMaxParallel, Simulator};
use std::hint::black_box;

fn main() {
    let configs = e6_configs();
    let mut group = BenchGroup::new("pam").with_iters(10);
    for (name, spec) in &configs {
        group.bench(&format!("exploration/{name}"), || {
            Program::compile(black_box(spec)).explore(&ExploreOptions::default())
        });
    }
    for (name, spec) in &configs {
        group.bench(&format!("simulation_30_steps/{name}"), || {
            let mut sim = Simulator::new(spec.clone(), SafeMaxParallel);
            black_box(sim.run(30))
        });
    }
    // The serial/parallel explorer pair on the large PAM workload: one
    // shared program (same warmed formula memo for both sides), only
    // the worker count differs, and the resulting StateSpaces are
    // byte-identical. The quad-core deployment has the largest
    // reachable space of the four configurations.
    for (name, spec) in &configs {
        let program = Program::compile(spec);
        group.bench(&format!("explore_serial/{name}"), || {
            black_box(&program).explore(&ExploreOptions::default().with_workers(1))
        });
        group.bench(&format!("explore_parallel/{name}"), || {
            black_box(&program).explore(&ExploreOptions::default().with_workers(4))
        });
    }
    group.finish();
}
