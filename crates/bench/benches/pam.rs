//! E6 bench target — the PAM study: exploration and simulation cost of
//! the infinite-resource model and the three deployments, plus the
//! serial-vs-parallel exploration pair on the largest deployment
//! state-space.
//!
//! The serial/parallel comparability is *asserted* in-bench (see
//! [`assert_comparable`]), not claimed in prose: on a ≥4-core host the
//! parallel median must not exceed the serial median for any
//! configuration, or the run fails.
//!
//! Runs on the in-repo `Instant`-based harness (criterion is not
//! fetchable offline); emits `BENCH_pam.json` at the workspace root.

use moccml_bench::experiments::e6_configs;
use moccml_bench::harness::BenchGroup;
use moccml_bench::report::BenchRecord;
use moccml_engine::{ExploreOptions, Program, SafeMaxParallel, Simulator};
use std::hint::black_box;

fn main() {
    let configs = e6_configs();
    let mut group = BenchGroup::new("pam").with_iters(10);
    for (name, spec) in &configs {
        group.bench(&format!("exploration/{name}"), || {
            Program::compile(black_box(spec)).explore(&ExploreOptions::default())
        });
    }
    for (name, spec) in &configs {
        group.bench(&format!("simulation_30_steps/{name}"), || {
            let mut sim = Simulator::new(spec.clone(), SafeMaxParallel);
            black_box(sim.run(30))
        });
    }
    // The serial/parallel explorer pair: one shared program per
    // configuration (same warmed formula memo for both sides), only
    // the worker count differs, and the resulting StateSpaces are
    // byte-identical. The quad-core deployment has the largest
    // reachable space of the four configurations.
    for (name, spec) in &configs {
        let program = Program::compile(spec);
        let serial = program.explore(&ExploreOptions::default().with_workers(1));
        let parallel = program.explore(&ExploreOptions::default().with_workers(4));
        assert!(
            serial == parallel,
            "{name}: parallel exploration diverged from the serial StateSpace"
        );
        group.bench(&format!("explore_serial/{name}"), || {
            black_box(&program).explore(&ExploreOptions::default().with_workers(1))
        });
        group.bench(&format!("explore_parallel/{name}"), || {
            black_box(&program).explore(&ExploreOptions::default().with_workers(4))
        });
    }
    let records = group.finish();
    for (name, _) in &configs {
        assert_comparable(&records, name);
    }
}

/// The in-bench comparability assertion (replaces the old prose
/// footnote): on a ≥4-core host the 4-worker median must not exceed
/// the serial median; on smaller hosts — where oversubscribed worker
/// threads cannot pay for themselves — the assertion degrades to a
/// bounded-overhead check (parallel ≤ 2 × serial) with a printed note.
fn assert_comparable(records: &[BenchRecord], config: &str) {
    let median = |prefix: &str| {
        records
            .iter()
            .find(|r| r.name == format!("{prefix}/{config}"))
            .unwrap_or_else(|| panic!("record {prefix}/{config} measured"))
            .median_ns
    };
    let serial = median("explore_serial");
    let parallel = median("explore_parallel");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores >= 4 {
        assert!(
            parallel <= serial,
            "{config}: on a {cores}-core host the parallel median \
             ({parallel} ns) must not exceed the serial median ({serial} ns)"
        );
    } else {
        assert!(
            parallel <= serial.saturating_mul(2),
            "{config}: even on a {cores}-core host, parallel overhead must \
             stay bounded: {parallel} ns vs serial {serial} ns"
        );
        println!(
            "note: host has {cores} core(s) — asserted bounded overhead \
             (≤ 2× serial) for `{config}` instead of the ≥4-core strict \
             comparison"
        );
    }
}
