//! E6 bench target — the PAM study: exploration and simulation cost of
//! the infinite-resource model and the three deployments.
//!
//! Runs on the in-repo `Instant`-based harness (criterion is not
//! fetchable offline); emits `BENCH_pam.json` at the workspace root.

use moccml_bench::experiments::e6_configs;
use moccml_bench::harness::BenchGroup;
use moccml_engine::{CompiledSpec, ExploreOptions, SafeMaxParallel, Simulator};
use std::hint::black_box;

fn main() {
    let configs = e6_configs();
    let mut group = BenchGroup::new("pam").with_iters(10);
    for (name, spec) in &configs {
        group.bench(&format!("exploration/{name}"), || {
            CompiledSpec::compile(black_box(spec)).explore(&ExploreOptions::default())
        });
    }
    for (name, spec) in &configs {
        group.bench(&format!("simulation_30_steps/{name}"), || {
            let mut sim = Simulator::new(spec.clone(), SafeMaxParallel);
            black_box(sim.run(30))
        });
    }
    group.finish();
}
