//! E6 bench target — the PAM study: exploration and simulation cost of
//! the infinite-resource model and the three deployments.

use criterion::{criterion_group, criterion_main, Criterion};
use moccml_engine::{explore, ExploreOptions, Policy, Simulator};
use moccml_sdf::pam;
use std::hint::black_box;

fn bench_pam_exploration(c: &mut Criterion) {
    let mut group = c.benchmark_group("pam_exploration");
    group.sample_size(10);
    let configs: Vec<(&str, moccml_kernel::Specification)> = vec![
        ("infinite", pam::infinite_resources().expect("builds")),
        ("mono", {
            let (p, d) = pam::deployment_single_core();
            pam::deployed(&p, &d).expect("deploys")
        }),
        ("dual", {
            let (p, d) = pam::deployment_dual_core();
            pam::deployed(&p, &d).expect("deploys")
        }),
        ("quad", {
            let (p, d) = pam::deployment_quad_core();
            pam::deployed(&p, &d).expect("deploys")
        }),
    ];
    for (name, spec) in &configs {
        group.bench_function(*name, |b| {
            b.iter(|| explore(black_box(spec), &ExploreOptions::default()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("pam_simulation");
    group.sample_size(10);
    for (name, spec) in &configs {
        group.bench_function(*name, |b| {
            b.iter(|| {
                let mut sim = Simulator::new(spec.clone(), Policy::SafeMaxParallel);
                black_box(sim.run(30))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pam_exploration);
criterion_main!(benches);
