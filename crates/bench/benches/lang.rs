//! Lang bench target — the textual frontend end to end: lexing +
//! parsing a generated `.mcc` place-chain spec, compiling it through
//! the ccsl/automata/engine layers, on-the-fly checking of its
//! asserted properties, the parse→print→parse round trip, and the
//! in-process CLI `check` path (the `moccml` binary minus the process
//! spawn).
//!
//! Runs on the in-repo `Instant`-based harness; emits `BENCH_lang.json`
//! at the workspace root. Before timing, the bench asserts the
//! frontend's golden contract outright: the compiled chain spec's
//! `never(last)` property is violated with the full-pipeline witness,
//! and the pretty-printed form reparses to an equal AST.

use moccml_bench::harness::BenchGroup;
use moccml_engine::ExploreOptions;
use moccml_lang::{cli, compile, compile_str, parse_spec};
use moccml_verify::{check_props, PropStatus};
use std::fmt::Write as _;
use std::hint::black_box;

/// A chain of `n` capacity-1 places (`e0 → e1 → … → en`) woven from an
/// embedded Fig. 3 library, with a deadlock-freedom assert (holds) and
/// a `never(en)` assert (violated by the pipeline flowing end to end).
fn chain_source(n: usize) -> String {
    let mut out = String::from("spec chain {\n  events ");
    for i in 0..=n {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "e{i}");
    }
    out.push_str(";\n\n");
    out.push_str(
        "  library SDF {\n\
           constraint Place(write: event, read: event,\n\
                            pushRate: int, popRate: int,\n\
                            itsDelay: int, itsCapacity: int)\n\
           automaton PlaceDef implements Place {\n\
             var size: int = itsDelay;\n\
             initial state S0;\n\
             final state S0;\n\
             from S0 to S0 when {write} forbid {read}\n\
               guard [size <= itsCapacity - pushRate] do size += pushRate;\n\
             from S0 to S0 when {read} forbid {write}\n\
               guard [size >= popRate] do size -= popRate;\n\
           }\n\
         }\n\n",
    );
    for i in 0..n {
        let _ = writeln!(
            out,
            "  constraint p{i} = Place(e{i}, e{}, 1, 1, 0, 1);",
            i + 1
        );
    }
    let _ = writeln!(out, "\n  assert deadlock-free;");
    let _ = writeln!(out, "  assert never(e{n});");
    out.push_str("}\n");
    out
}

fn main() {
    let wide = chain_source(32);
    let deep = chain_source(8);

    // the golden claims, asserted once before timing: the textual
    // chain compiles, its liveness witness is the whole pipeline, and
    // printing round-trips
    let compiled = compile_str(&deep).expect("chain spec compiles");
    let options = ExploreOptions::default();
    // decide each property on its own exploration (the violated
    // `never` stops a combined pass before deadlock-freedom resolves)
    let deadlock_free =
        check_props(&compiled.program, &compiled.props[..1], &options).statuses[0].clone();
    assert_eq!(deadlock_free, PropStatus::Holds, "deadlock-free");
    let report = check_props(&compiled.program, &compiled.props[1..], &options);
    let PropStatus::Violated(ce) = &report.statuses[0] else {
        panic!("never(e8) must be violated");
    };
    assert_eq!(
        ce.schedule.len(),
        9,
        "the shortest witness flows the whole 8-place chain"
    );
    let ast = parse_spec(&deep).expect("parses");
    assert_eq!(
        parse_spec(&ast.to_text()).expect("printed form parses"),
        ast,
        "parse→print→parse round-trips"
    );

    let mut group = BenchGroup::new("lang");
    group.bench("parse/chain_32", || {
        parse_spec(black_box(&wide)).expect("parses")
    });
    group.bench("compile/chain_32", || {
        compile(black_box(&ast32())).expect("compiles")
    });
    group.bench("parse_compile/chain_32", || {
        compile_str(black_box(&wide)).expect("compiles")
    });
    group.bench("roundtrip/chain_32_print_parse", || {
        let printed = black_box(&ast32_cached()).to_text();
        parse_spec(&printed).expect("parses")
    });
    group.bench("check/chain_8_props_2", || {
        check_props(black_box(&compiled.program), &compiled.props, &options)
    });
    // the CLI end to end, in-process: read file, parse, compile,
    // per-prop check, render the report
    let spec_path = std::env::temp_dir().join("moccml-bench-chain8.mcc");
    std::fs::write(&spec_path, &deep).expect("temp spec writes");
    let args: Vec<String> = ["check", spec_path.to_str().expect("utf8")]
        .iter()
        .map(ToString::to_string)
        .collect();
    group.bench("cli_check/chain_8", || {
        let mut out = String::new();
        let code = cli::run(black_box(&args), &mut out);
        assert_eq!(code, cli::EXIT_VIOLATED);
        out
    });
    group.finish();
}

/// Memoised 32-chain AST for the compile-only bench.
fn ast32() -> moccml_lang::SpecAst {
    ast32_cached().clone()
}

fn ast32_cached() -> &'static moccml_lang::SpecAst {
    use std::sync::OnceLock;
    static AST: OnceLock<moccml_lang::SpecAst> = OnceLock::new();
    AST.get_or_init(|| parse_spec(&chain_source(32)).expect("chain spec parses"))
}
