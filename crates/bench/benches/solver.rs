//! B1/B3 — step-solver scaling, the unit-propagation ablation, and the
//! compiled-path speedup.
//!
//! B1: acceptable-step enumeration time vs number of events for the
//! sub-clock chain and exclusion clique workloads (compiled path).
//! B3 (ablation): pruned three-valued search vs naive 2^n enumeration.
//! B4 (compilation): `CompiledSpec` queries vs the deprecated
//! recompile-per-step shim on the same specification — the hot-path win
//! of hoisting formula lowering out of the query loop.
//!
//! Runs on the in-repo `Instant`-based harness (criterion is not
//! fetchable offline); emits `BENCH_solver.json` at the workspace root.

use moccml_bench::harness::BenchGroup;
use moccml_bench::workloads::{exclusion_clique_spec, sdf_chain, subclock_chain_spec};
use moccml_engine::{CompiledSpec, SolverOptions};
use moccml_sdf::mocc::build_specification;
use std::hint::black_box;

fn main() {
    let mut group = BenchGroup::new("solver").with_iters(20);
    for n in [4usize, 8, 12] {
        let chain = CompiledSpec::new(subclock_chain_spec(n));
        group.bench(&format!("subclock_chain/{n}"), || {
            black_box(&chain).acceptable_steps(&SolverOptions::default())
        });
        let clique = CompiledSpec::new(exclusion_clique_spec(n));
        group.bench(&format!("exclusion_clique/{n}"), || {
            black_box(&clique).acceptable_steps(&SolverOptions::default())
        });
    }
    for n in [8usize, 12] {
        let spec = CompiledSpec::new(exclusion_clique_spec(n));
        group.bench(&format!("ablation_pruned/{n}"), || {
            black_box(&spec).acceptable_steps(&SolverOptions::default())
        });
        group.bench(&format!("ablation_naive_2n/{n}"), || {
            black_box(&spec).acceptable_steps(&SolverOptions::naive())
        });
    }
    // B4: the tentpole's hot-path claim — querying a compiled spec vs
    // re-lowering every constraint formula on each call (the deprecated
    // 0.1 entry point, kept as the measured baseline). The SDF chain is
    // the representative workload: automaton constraints lower their
    // formulas by walking transitions and guard expressions, exactly
    // the work `CompiledSpec` hoists out of the query loop.
    for n in [8usize, 12] {
        let spec = subclock_chain_spec(n);
        let compiled = CompiledSpec::compile(&spec);
        group.bench(&format!("compiled/subclock_chain/{n}"), || {
            black_box(&compiled).acceptable_steps(&SolverOptions::default())
        });
        group.bench(&format!("recompile_per_step/subclock_chain/{n}"), || {
            #[allow(deprecated)]
            moccml_engine::acceptable_steps(black_box(&spec), &SolverOptions::default())
        });
    }
    for stages in [4usize, 6] {
        let spec = build_specification(&sdf_chain(stages, 2)).expect("builds");
        let compiled = CompiledSpec::compile(&spec);
        group.bench(&format!("compiled/sdf_chain/{stages}"), || {
            black_box(&compiled).acceptable_steps(&SolverOptions::default())
        });
        group.bench(&format!("recompile_per_step/sdf_chain/{stages}"), || {
            #[allow(deprecated)]
            moccml_engine::acceptable_steps(black_box(&spec), &SolverOptions::default())
        });
    }
    group.finish();
}
