//! B1/B3 — step-solver scaling, the unit-propagation ablation, the
//! compiled-path speedup and the serial/parallel exploration pair.
//!
//! B1: acceptable-step enumeration time vs number of events for the
//! sub-clock chain and exclusion clique workloads (compiled path).
//! B3 (ablation): pruned three-valued search vs naive 2^n enumeration.
//! B4 (compilation): queries on a compiled `Program` cursor vs
//! recompiling the program on every query — the hot-path win of
//! hoisting formula lowering out of the query loop.
//! B5 (parallel explorer): `explore_serial/` (1 worker) vs
//! `explore_parallel/` (4 workers) on an SDF-chain state space; both
//! sides produce byte-identical `StateSpace`s.
//!
//! Runs on the in-repo `Instant`-based harness (criterion is not
//! fetchable offline); emits `BENCH_solver.json` at the workspace root.

use moccml_bench::harness::BenchGroup;
use moccml_bench::workloads::{exclusion_clique_spec, sdf_chain, subclock_chain_spec};
use moccml_engine::{ExploreOptions, Program, SolverOptions};
use moccml_sdf::mocc::build_specification;
use std::hint::black_box;

fn main() {
    let mut group = BenchGroup::new("solver").with_iters(20);
    for n in [4usize, 8, 12] {
        let chain = Program::new(subclock_chain_spec(n)).cursor();
        group.bench(&format!("subclock_chain/{n}"), || {
            black_box(&chain).acceptable_steps(&SolverOptions::default())
        });
        let clique = Program::new(exclusion_clique_spec(n)).cursor();
        group.bench(&format!("exclusion_clique/{n}"), || {
            black_box(&clique).acceptable_steps(&SolverOptions::default())
        });
    }
    for n in [8usize, 12] {
        let spec = Program::new(exclusion_clique_spec(n)).cursor();
        group.bench(&format!("ablation_pruned/{n}"), || {
            black_box(&spec).acceptable_steps(&SolverOptions::default())
        });
        group.bench(&format!("ablation_naive_2n/{n}"), || {
            black_box(&spec).acceptable_steps(&SolverOptions::naive())
        });
    }
    // B4: the compilation split's hot-path claim — querying a compiled
    // program's cursor vs recompiling the program (re-lowering every
    // constraint formula) on each call, the measured stand-in for the
    // removed 0.1 free functions. The SDF chain is the representative
    // workload: automaton constraints lower their formulas by walking
    // transitions and guard expressions, exactly the work the `Program`
    // memo hoists out of the query loop.
    for n in [8usize, 12] {
        let spec = subclock_chain_spec(n);
        let compiled = Program::compile(&spec).cursor();
        group.bench(&format!("compiled/subclock_chain/{n}"), || {
            black_box(&compiled).acceptable_steps(&SolverOptions::default())
        });
        group.bench(&format!("recompile_per_step/subclock_chain/{n}"), || {
            Program::compile(black_box(&spec))
                .cursor()
                .acceptable_steps(&SolverOptions::default())
        });
    }
    for stages in [4usize, 6] {
        let spec = build_specification(&sdf_chain(stages, 2)).expect("builds");
        let compiled = Program::compile(&spec).cursor();
        group.bench(&format!("compiled/sdf_chain/{stages}"), || {
            black_box(&compiled).acceptable_steps(&SolverOptions::default())
        });
        group.bench(&format!("recompile_per_step/sdf_chain/{stages}"), || {
            Program::compile(black_box(&spec))
                .cursor()
                .acceptable_steps(&SolverOptions::default())
        });
    }
    // B5: the parallel explorer pair. One shared program (so both
    // sides hit the same warmed formula memo); only the worker count
    // differs. The StateSpaces are byte-identical by construction.
    let mut group = group.with_iters(10);
    let program = Program::new(build_specification(&sdf_chain(6, 2)).expect("builds"));
    group.bench("explore_serial/sdf_chain/6", || {
        black_box(&program).explore(&ExploreOptions::default().with_workers(1))
    });
    group.bench("explore_parallel/sdf_chain/6", || {
        black_box(&program).explore(&ExploreOptions::default().with_workers(4))
    });
    group.finish();
}
