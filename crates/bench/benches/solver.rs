//! B1/B3 — step-solver scaling and the unit-propagation ablation.
//!
//! B1: acceptable-step enumeration time vs number of events for the
//! sub-clock chain and exclusion clique workloads.
//! B3 (ablation): pruned three-valued search vs naive 2^n enumeration.
//!
//! Runs on the in-repo `Instant`-based harness (criterion is not
//! fetchable offline); emits `BENCH_solver.json` at the workspace root.

use moccml_bench::harness::BenchGroup;
use moccml_bench::workloads::{exclusion_clique_spec, subclock_chain_spec};
use moccml_engine::{acceptable_steps, SolverOptions};
use std::hint::black_box;

fn main() {
    let mut group = BenchGroup::new("solver").with_iters(20);
    for n in [4usize, 8, 12] {
        let chain = subclock_chain_spec(n);
        group.bench(&format!("subclock_chain/{n}"), || {
            acceptable_steps(black_box(&chain), &SolverOptions::default())
        });
        let clique = exclusion_clique_spec(n);
        group.bench(&format!("exclusion_clique/{n}"), || {
            acceptable_steps(black_box(&clique), &SolverOptions::default())
        });
    }
    for n in [8usize, 12] {
        let spec = exclusion_clique_spec(n);
        group.bench(&format!("ablation_pruned/{n}"), || {
            acceptable_steps(black_box(&spec), &SolverOptions::default())
        });
        group.bench(&format!("ablation_naive_2n/{n}"), || {
            acceptable_steps(black_box(&spec), &SolverOptions::naive())
        });
    }
    group.finish();
}
