//! B1/B3 — step-solver scaling and the unit-propagation ablation.
//!
//! B1: acceptable-step enumeration time vs number of events for the
//! sub-clock chain and exclusion clique workloads.
//! B3 (ablation): pruned three-valued search vs naive 2^n enumeration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use moccml_bench::workloads::{exclusion_clique_spec, subclock_chain_spec};
use moccml_engine::{acceptable_steps, SolverOptions};
use std::hint::black_box;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_solver_scaling");
    group.sample_size(20);
    for n in [4usize, 8, 12] {
        let chain = subclock_chain_spec(n);
        group.bench_with_input(BenchmarkId::new("subclock_chain", n), &chain, |b, spec| {
            b.iter(|| acceptable_steps(black_box(spec), &SolverOptions::default()));
        });
        let clique = exclusion_clique_spec(n);
        group.bench_with_input(BenchmarkId::new("exclusion_clique", n), &clique, |b, spec| {
            b.iter(|| acceptable_steps(black_box(spec), &SolverOptions::default()));
        });
    }
    group.finish();
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_ablation");
    group.sample_size(20);
    for n in [8usize, 12] {
        let spec = exclusion_clique_spec(n);
        group.bench_with_input(BenchmarkId::new("pruned", n), &spec, |b, spec| {
            b.iter(|| acceptable_steps(black_box(spec), &SolverOptions::default()));
        });
        group.bench_with_input(BenchmarkId::new("naive_2n", n), &spec, |b, spec| {
            b.iter(|| acceptable_steps(black_box(spec), &SolverOptions::naive()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_ablation);
criterion_main!(benches);
