//! Statistical model checking bench — Monte-Carlo trace sampling over
//! the drift workload (three `precedes(w, r, 1000)` channels, ~10^9
//! reachable states), where exhaustive exploration is infeasible.
//!
//! Runs on the in-repo `Instant`-based harness; emits `BENCH_smc.json`
//! at the workspace root. The records carry the acceptance numbers of
//! the statistical checker: sampled-trace throughput via the
//! `states`/`states_per_sec` fields (one state = one trace) and the
//! SPRT convergence point encoded in the benchmark name — the claim,
//! asserted outright before timing, is that the sequential test
//! decides with strictly fewer traces than the Okamoto fixed-sample
//! bound it is capped by.

use moccml_bench::harness::BenchGroup;
use moccml_lang::compile_str;
use moccml_smc::{check_statistical, okamoto_sample_size, SmcOptions, SmcVerdict};
use moccml_verify::Prop;
use std::hint::black_box;

/// The drift spec of `examples/specs/drift.mcc`, inlined so the bench
/// has no working-directory dependence.
const DRIFT: &str = "spec drift {\n\
     events produce, consume, tick, tock, send, recv;\n\
     constraint buffer  = precedes(produce, consume, 1000);\n\
     constraint clock   = precedes(tick, tock, 1000);\n\
     constraint channel = precedes(send, recv, 1000);\n\
     assert deadlock-free;\n\
     assert until<=6((!consume), produce);\n\
     assert release<=8((produce && consume), (!consume));\n\
   }\n";

fn main() {
    let compiled = compile_str(DRIFT).expect("drift spec compiles");
    let program = &compiled.program;
    let until = compiled.props[1].clone();
    let release = compiled.props[2].clone();

    // the claims under test, measured once before timing: the SPRT
    // decides the release property (p ~ 0.96 vs theta = 0.5) well
    // before the Okamoto cap, and the fixed-sample estimate of the
    // until property lands a nonzero violation rate with a witness
    let epsilon = 0.05;
    let delta = 0.05;
    let cap = okamoto_sample_size(epsilon, delta);
    let sprt_options = SmcOptions::default()
        .with_epsilon(epsilon)
        .with_delta(delta)
        .with_prob_threshold(0.5)
        .with_seed(7)
        .with_workers(2);
    let sprt = check_statistical(program, &release, &sprt_options);
    assert_eq!(sprt.verdict, SmcVerdict::AboveThreshold);
    assert!(
        sprt.traces < cap,
        "SPRT must converge ({} traces) before the Okamoto cap ({cap})",
        sprt.traces
    );

    let est_options = SmcOptions::default()
        .with_epsilon(epsilon)
        .with_delta(delta)
        .with_seed(7)
        .with_workers(2);
    let est = check_statistical(program, &until, &est_options);
    assert_eq!(est.traces, cap, "fixed-sample mode draws the full bound");
    assert!(est.violations > 0, "the seeded violation must be sampled");
    assert!(est.witness.is_some(), "a minimized witness must survive");

    let mut group = BenchGroup::new("smc").with_iters(5);

    // throughput: traces per second at the fixed Okamoto sample size,
    // one and two workers (the until property decides within 6 steps)
    for workers in [1usize, 2] {
        let options = est_options.clone().with_workers(workers);
        group.bench_states(
            &format!("fixed_sample/drift_until_w{workers}_traces_{cap}"),
            cap as u64,
            || check_statistical(black_box(program), &until, &options),
        );
    }

    // convergence: the sequential test against theta = 0.5, its
    // decision point in the name next to the cap it undercuts
    group.bench_states(
        &format!("sprt/drift_release_decided_{}_of_cap_{cap}", sprt.traces),
        sprt.traces as u64,
        || check_statistical(black_box(program), &release, &sprt_options),
    );

    // the rare-event side: deadlock-freedom holds on every sampled
    // trace, so the estimate is a CI upper bound at zero violations
    let deadlock = SmcOptions::default()
        .with_epsilon(0.1)
        .with_delta(delta)
        .with_max_trace_len(64)
        .with_seed(7)
        .with_workers(2);
    let dl_cap = okamoto_sample_size(0.1, delta);
    group.bench_states(
        &format!("fixed_sample/drift_deadlock_free_traces_{dl_cap}"),
        dl_cap as u64,
        || check_statistical(black_box(program), &Prop::DeadlockFree, &deadlock),
    );

    group.finish();
}
