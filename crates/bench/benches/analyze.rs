//! Analyze bench target — the static-analysis workloads: linting the
//! PAM case-study spec and the golden defect spec end to end
//! (parse + compile + every lint pass), and cone-of-influence slicing:
//! `verify::check_with` on the seeded local-property PAM workload,
//! sliced vs. unsliced.
//!
//! Runs on the in-repo `Instant`-based harness; emits
//! `BENCH_analyze.json` at the workspace root. Before timing, the
//! bench asserts the acceptance claims outright: `pam.mcc` lints with
//! zero errors and zero warnings, the golden defect spec lints dirty,
//! and the sliced check returns the same verdict as the unsliced one
//! while visiting *strictly fewer* states.

use moccml_analyze::{analyze_str, Severity};
use moccml_bench::experiments::e8_seeded_local_pam;
use moccml_bench::harness::BenchGroup;
use moccml_engine::Program;
use moccml_verify::{check_with, CheckOptions};
use std::hint::black_box;
use std::path::PathBuf;

fn workspace_file(relative: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(relative);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn main() {
    let pam_source = workspace_file("examples/specs/pam.mcc");
    let defects_source = workspace_file("crates/analyze/tests/specs/defects.mcc");

    // claim 1: the PAM case study lints clean, the defect spec dirty
    let pam_diags = analyze_str(&pam_source).expect("pam.mcc compiles");
    assert!(
        pam_diags.iter().all(|d| d.severity == Severity::Info),
        "pam.mcc must lint with zero errors and zero warnings: {pam_diags:?}"
    );
    let defect_diags = analyze_str(&defects_source).expect("defects.mcc compiles");
    assert!(
        defect_diags.iter().any(|d| d.severity == Severity::Error),
        "the golden defect spec must carry at least one error"
    );

    // claim 2: slicing preserves the verdict and explores strictly
    // fewer states on the seeded local-property PAM workload
    let (spec, prop) = e8_seeded_local_pam();
    let program = Program::compile(&spec);
    let unsliced = check_with(&program, &prop, &CheckOptions::new());
    let sliced = check_with(&program, &prop, &CheckOptions::new().with_slice(true));
    assert_eq!(
        std::mem::discriminant(&unsliced.statuses[0]),
        std::mem::discriminant(&sliced.statuses[0]),
        "slicing must preserve the verdict"
    );
    assert!(
        sliced.states_visited < unsliced.states_visited,
        "sliced check ({}) must visit strictly fewer states than the \
         unsliced one ({})",
        sliced.states_visited,
        unsliced.states_visited
    );

    let mut group = BenchGroup::new("analyze").with_iters(10);
    group.bench("lint/pam", || {
        analyze_str(black_box(&pam_source)).expect("compiles")
    });
    group.bench("lint/defects", || {
        analyze_str(black_box(&defects_source)).expect("compiles")
    });
    group.bench(
        &format!(
            "check_unsliced/pam_local_states_{}",
            unsliced.states_visited
        ),
        || check_with(black_box(&program), &prop, &CheckOptions::new()),
    );
    group.bench(
        &format!("check_sliced/pam_local_states_{}", sliced.states_visited),
        || {
            check_with(
                black_box(&program),
                &prop,
                &CheckOptions::new().with_slice(true),
            )
        },
    );
    group.finish();
}
