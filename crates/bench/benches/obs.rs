//! E10 bench target — observability overhead on the seeded PAM
//! quad-core check ([`e8_seeded_local_pam`] at 4 workers): the same
//! `check_props` run measured three ways — no recorder field touched
//! (the default), an explicitly-constructed disabled [`Recorder`], and
//! a fully enabled recorder draining into a snapshot.
//!
//! The acceptance claim is *asserted*, not footnoted: the disabled
//! recorder is the same `None`-pointer fast path as the default, so
//! its best-case time must stay within 5% of the baseline's (plus a
//! small absolute floor so sub-millisecond jitter on loaded CI hosts
//! cannot fail an honest run). The enabled row is reported for the
//! record but unconstrained — paying for observation is allowed, just
//! never by default.
//!
//! Runs on the in-repo `Instant`-based harness (criterion is not
//! fetchable offline); emits `BENCH_obs.json` at the workspace root.

use moccml_bench::experiments::e8_seeded_local_pam;
use moccml_bench::harness::BenchGroup;
use moccml_bench::report::BenchRecord;
use moccml_engine::{ExploreOptions, Program};
use moccml_obs::Recorder;
use moccml_verify::check_props;
use std::hint::black_box;

const WORKERS: usize = 4;

fn main() {
    let (spec, prop) = e8_seeded_local_pam();
    let program = Program::compile(&spec);
    let props = std::slice::from_ref(&prop);
    let base = ExploreOptions::default().with_workers(WORKERS);

    // Non-perturbation gate before any timing: all three variants must
    // produce the identical report.
    let plain = check_props(&program, props, &base);
    let off = check_props(
        &program,
        props,
        &base.clone().with_recorder(&Recorder::disabled()),
    );
    let recorder = Recorder::new();
    let on = check_props(&program, props, &base.clone().with_recorder(&recorder));
    assert!(plain.any_violated(), "the seeded property is violated");
    assert_eq!(plain, off, "a disabled recorder perturbed the verdict");
    assert_eq!(plain, on, "an enabled recorder perturbed the verdict");
    assert!(
        recorder.snapshot().counter_sum("explore_expansions_w") > 0,
        "the enabled run must actually record expansions"
    );

    let mut group = BenchGroup::new("obs").with_iters(20).with_warmup(2);
    group.bench("check/pam_quad/no_recorder", || {
        check_props(black_box(&program), props, &base)
    });
    group.bench("check/pam_quad/recorder_disabled", || {
        let options = base.clone().with_recorder(&Recorder::disabled());
        check_props(black_box(&program), props, &options)
    });
    group.bench("check/pam_quad/recorder_enabled", || {
        let recorder = Recorder::new();
        let options = base.clone().with_recorder(&recorder);
        let report = check_props(black_box(&program), props, &options);
        (report, recorder.snapshot().counters.len())
    });
    assert_overhead(&group.finish());
}

/// The in-bench acceptance assertion: the disabled-recorder path must
/// cost the same as never mentioning a recorder at all. Compared on
/// `min_ns` (the least scheduler-noise-sensitive statistic) with a 5%
/// relative budget and a 200µs absolute floor for sub-millisecond
/// workloads on loaded hosts.
fn assert_overhead(records: &[BenchRecord]) {
    let min = |suffix: &str| {
        records
            .iter()
            .find(|r| r.name.ends_with(suffix))
            .unwrap_or_else(|| panic!("record {suffix} measured"))
            .min_ns
    };
    let baseline = min("no_recorder");
    let disabled = min("recorder_disabled");
    let budget = (baseline + baseline / 20).max(baseline + 200_000);
    assert!(
        disabled <= budget,
        "disabled-recorder check ({disabled} ns) exceeded the 5% \
         overhead budget over the bare baseline ({baseline} ns)"
    );
    println!();
    println!(
        "overhead gate: disabled {disabled} ns <= budget {budget} ns \
         (baseline {baseline} ns + max(5%, 200us))"
    );
}
