//! Serve bench target — the verification service on the PAM workload:
//! a cold `check` (capacity-0 cache, every request parses and
//! compiles) against a cached `check` (warm LRU entry, the compiled
//! program is shared), plus a sequential-throughput batch on the warm
//! service.
//!
//! Runs on the in-repo `Instant`-based harness; emits
//! `BENCH_serve.json` at the workspace root and prints the derived
//! requests/second next to the latency medians. Before timing, the
//! bench asserts the acceptance claims outright: the cached verdict is
//! byte-identical to the cold one, the warm service reports the cache
//! hits, and after measurement the cached median is *strictly* below
//! the cold median.

use moccml_bench::harness::BenchGroup;
use moccml_serve::json::Json;
use moccml_serve::{Service, ServiceConfig};
use std::hint::black_box;
use std::path::PathBuf;

/// Requests folded into one throughput sample.
const BATCH: usize = 16;

fn pam_source() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs/pam.mcc");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn check_request(spec: &str) -> String {
    Json::obj([
        ("id", Json::str("bench")),
        ("method", Json::str("check")),
        ("spec", Json::str(spec)),
    ])
    .to_line()
}

/// Issues one `check` through the service and returns the result
/// payload, panicking on any non-`result` terminal.
fn check(service: &Service, line: &str) -> Json {
    let events = service.call(line);
    events
        .iter()
        .find(|e| e.get("event").and_then(Json::as_str) == Some("result"))
        .and_then(|e| e.get("result"))
        .cloned()
        .unwrap_or_else(|| panic!("check must succeed: {events:?}"))
}

fn requests_per_second(median_ns: u128, requests: u128) -> u128 {
    requests * 1_000_000_000 / median_ns.max(1)
}

fn main() {
    let pam = pam_source();
    let line = check_request(&pam);

    // capacity 0: every request parses + compiles (a permanent miss)
    let cold = Service::new(ServiceConfig {
        cache_capacity: 0,
        ..ServiceConfig::default()
    });
    // warm service: the first request compiles, the rest share the Arc
    let cached = Service::new(ServiceConfig::default());

    // claim 1: cached and cold verdicts are byte-identical
    let cold_payload = check(&cold, &line).to_line();
    let warm_payload = check(&cached, &line).to_line();
    assert_eq!(
        check(&cached, &line).to_line(),
        cold_payload,
        "the cached verdict must byte-match the cold one"
    );
    assert_eq!(warm_payload, cold_payload);

    // claim 2: the warm service's hits are observable via `status`
    let status = check(&cached, r#"{"id":"status","method":"status"}"#);
    let hits = status
        .get("cache")
        .and_then(|c| c.get("hits"))
        .and_then(Json::as_i64)
        .expect("cache hit counter");
    assert!(hits >= 1, "the warm-up hit must be visible: {status:?}");

    let mut group = BenchGroup::new("serve").with_iters(30);
    group.bench("check_cold/pam", || check(black_box(&cold), &line));
    group.bench("check_cached/pam", || check(black_box(&cached), &line));
    group.bench(&format!("check_cached/pam_batch_{BATCH}"), || {
        for _ in 0..BATCH {
            check(black_box(&cached), &line);
        }
    });
    let records = group.finish();

    // claim 3: a cache hit is strictly faster than a cold compile
    let median = |name: &str| {
        records
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("record {name}"))
            .median_ns
    };
    let (cold_ns, cached_ns) = (median("check_cold/pam"), median("check_cached/pam"));
    assert!(
        cached_ns < cold_ns,
        "a cached check ({cached_ns} ns) must be strictly faster than \
         a cold one ({cold_ns} ns)"
    );
    let batch_ns = median(&format!("check_cached/pam_batch_{BATCH}"));
    println!("requests/second (sequential, median):");
    println!("  check_cold/pam:   {}", requests_per_second(cold_ns, 1));
    println!("  check_cached/pam: {}", requests_per_second(cached_ns, 1));
    println!(
        "  check_cached/pam_batch_{BATCH}: {}",
        requests_per_second(batch_ns, BATCH as u128)
    );
}
