//! E7 bench target — the verification workloads: on-the-fly property
//! checking with early stop vs. full exploration plus a post-hoc scan,
//! schedule conformance replay, and the bounded equivalence check, all
//! over the PAM/SDF specs.
//!
//! Runs on the in-repo `Instant`-based harness; emits
//! `BENCH_verify.json` at the workspace root. The early-stop/full pair
//! encodes its visited-state counts in the benchmark names — the
//! acceptance claim is that on-the-fly checking of the seeded
//! violating PAM workload visits *strictly fewer* states than full
//! exploration, which this bench also asserts outright.

use moccml_bench::experiments::{e4_graph, e7_conformance_trace, e7_violating_pam};
use moccml_bench::harness::BenchGroup;
use moccml_engine::{shortest_path_to, ExploreOptions, Program};
use moccml_verify::{check_equivalence, check_props, conformance, EquivOptions, Prop};
use std::hint::black_box;

fn main() {
    let (spec, prop) = e7_violating_pam();
    let program = Program::compile(&spec);
    let options = ExploreOptions::default();
    let detect_start = spec
        .universe()
        .lookup("detect.start")
        .expect("PAM detector event");

    // the claim under test, measured once before timing: early stop
    // must visit strictly fewer states than the full space
    let report = check_props(&program, std::slice::from_ref(&prop), &options);
    let full = program.explore(&options);
    assert!(report.any_violated(), "the seeded property is violated");
    assert!(
        report.states_visited < full.state_count(),
        "early stop ({}) must visit strictly fewer states than full \
         exploration ({})",
        report.states_visited,
        full.state_count()
    );

    let mut group = BenchGroup::new("verify").with_iters(10);
    group.bench(
        &format!("check_early_stop/pam_quad_states_{}", report.states_visited),
        || check_props(black_box(&program), std::slice::from_ref(&prop), &options),
    );
    group.bench(
        &format!("full_explore_scan/pam_quad_states_{}", full.state_count()),
        || {
            // the post-hoc baseline: materialise the whole space, scan
            // for a violating transition, reconstruct the witness
            let space = black_box(&program).explore(&options);
            let (src, step, _) = space
                .transitions()
                .iter()
                .find(|(_, step, _)| step.contains(detect_start))
                .expect("detector starts somewhere")
                .clone();
            let witness = shortest_path_to(&space, |s| s == src).expect("reachable");
            let mut schedule = witness.schedule;
            schedule.push(step);
            schedule
        },
    );

    // deadlock-freedom on the fly (violated on the quad-core platform)
    group.bench("check_deadlock_free/pam_quad", || {
        check_props(black_box(&program), &[Prop::DeadlockFree], &options)
    });

    // conformance: replay a 60-step recorded trace
    let (conf_spec, trace) = e7_conformance_trace(60);
    let conf_program = Program::compile(&conf_spec);
    assert!(conformance(&conf_program, &trace).conforms());
    group.bench("conformance/pam_quad_60_steps", || {
        conformance(black_box(&conf_program), &trace)
    });

    // bounded equivalence: the standard vs multiport MoCC variants of
    // the E4 producer/consumer graph (they differ: multiport allows
    // simultaneous read+write on one place)
    use moccml_sdf::mocc::{build_specification_with, MoccVariant};
    let standard =
        Program::new(build_specification_with(&e4_graph(), MoccVariant::Standard).expect("builds"));
    let multiport = Program::new(
        build_specification_with(&e4_graph(), MoccVariant::Multiport).expect("builds"),
    );
    let equiv_options = EquivOptions::default().with_max_states(20_000);
    group.bench("equivalence/e4_standard_vs_multiport", || {
        check_equivalence(black_box(&standard), black_box(&multiport), &equiv_options)
            .expect("same universe")
    });

    group.finish();
}
