//! E9 bench target — explorer scaling on the ≥100k-state drift-cube
//! workload ([`e9_scale_spec`] at bound 46 → 103,823 states, ~587k
//! transitions): states/sec throughput at 1, 2 and 4 workers, plus the
//! determinism gate (every worker count must build the identical
//! `StateSpace` before any timing is trusted).
//!
//! The comparability claim is *asserted*, not footnoted: on a host with
//! at least four cores the 4-worker median must not exceed the serial
//! median, or the run fails. On smaller hosts parallel exploration
//! cannot pay for itself — the assertion degrades to a bounded
//! oversubscription-overhead check (parallel ≤ 2 × serial) and the run
//! prints a note saying so.
//!
//! Runs on the in-repo `Instant`-based harness (criterion is not
//! fetchable offline); emits `BENCH_explore_scale.json` at the
//! workspace root.

use moccml_bench::experiments::e9_scale_spec;
use moccml_bench::harness::BenchGroup;
use moccml_bench::report::BenchRecord;
use moccml_engine::{ExploreOptions, Program};
use std::hint::black_box;

/// Drift bound: `(46 + 1)³ = 103,823` reachable states.
const BOUND: u64 = 46;
const WORKERS: [usize; 3] = [1, 2, 4];

fn main() {
    let (spec, expected) = e9_scale_spec(BOUND);
    let program = Program::compile(&spec);
    // above the default cap so the cube completes untruncated
    let base = ExploreOptions::default().with_max_states(150_000);

    // Determinism gate: the timing below is only meaningful if every
    // worker count builds the same space.
    let reference = program.explore(&base.clone().with_workers(WORKERS[0]));
    assert_eq!(reference.state_count(), expected, "untruncated workload");
    assert!(!reference.truncated(), "cap must exceed the cube");
    for &workers in &WORKERS[1..] {
        let space = program.explore(&base.clone().with_workers(workers));
        assert!(
            space == reference,
            "workers={workers} diverged from the serial StateSpace"
        );
    }

    let states = expected as u64;
    let mut group = BenchGroup::new("explore_scale")
        .with_iters(5)
        .with_warmup(1);
    for &workers in &WORKERS {
        group.bench_states(
            &format!("drift_cube_103823/workers={workers}"),
            states,
            || black_box(&program).explore(&base.clone().with_workers(workers)),
        );
    }
    assert_comparable(&group.finish());
}

/// The in-bench comparability assertion (replaces the old prose
/// footnote): strict on ≥4-core hosts, bounded-overhead elsewhere.
fn assert_comparable(records: &[BenchRecord]) {
    let median = |suffix: &str| {
        records
            .iter()
            .find(|r| r.name.ends_with(suffix))
            .unwrap_or_else(|| panic!("record {suffix} measured"))
            .median_ns
    };
    let serial = median("workers=1");
    let quad = median("workers=4");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores >= 4 {
        assert!(
            quad <= serial,
            "on a {cores}-core host the 4-worker median ({quad} ns) must not \
             exceed the serial median ({serial} ns)"
        );
    } else {
        assert!(
            quad <= serial.saturating_mul(2),
            "even on a {cores}-core host, 4-worker oversubscription overhead \
             must stay bounded: {quad} ns vs serial {serial} ns"
        );
        println!(
            "note: host has {cores} core(s) — parallel exploration cannot beat \
             serial here; asserted bounded overhead (≤ 2× serial) instead of \
             the ≥4-core strict comparison"
        );
    }
}
